#include "models/model_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GP_CHECK(out.good()) << path;
  out << content;
}

std::vector<std::string> Lines(const std::string& content) {
  std::vector<std::string> lines = Split(content, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string Unlines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

/** Replaces comma-field `index` of line `line_no` (0 = header). */
void SetField(std::vector<std::string>* lines, std::size_t line_no,
              std::size_t index, const std::string& value) {
  std::vector<std::string> fields = Split((*lines)[line_no], ',');
  GP_CHECK_LT(index, fields.size());
  fields[index] = value;
  (*lines)[line_no] = Join(fields, ",");
}

/**
 * Rewrites manifest.csv to match the current on-disk bundle files, so a
 * corruption test can reach the *field validation* layer instead of
 * stopping at the checksum gate.
 */
void Remanifest(const std::string& dir) {
  std::ofstream out(dir + "/manifest.csv", std::ios::trunc);
  out << "bundle_version,file,checksum,rows\n";
  for (const char* file :
       {"kernel_models.csv", "mapping_table.csv", "calibration.csv",
        "layer_fallback.csv"}) {
    const std::string content = ReadAll(dir + "/" + file);
    out << Format("%d,%s,%016llx,%zu\n", kKwBundleVersion, file,
                  static_cast<unsigned long long>(StableHash(content)),
                  Lines(content).size() - 1);
  }
}

/** A pristine saved bundle, trained once per process. */
const std::string& GoldenBundle() {
  static const std::string* const kDir = [] {
    // Pid-suffixed: ctest runs each case as its own process, and two
    // processes sharing one golden dir would race remove_all/reads.
    auto* dir = new std::string(
        (std::filesystem::temp_directory_path() /
         Format("gpuperf_model_io_golden_%d", static_cast<int>(getpid())))
            .string());
    std::filesystem::remove_all(*dir);
    std::filesystem::create_directories(*dir);
    KwModel model;
    model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
    ModelIo::SaveKw(model, *dir);
    return dir;
  }();
  return *kDir;
}

/** Copies the golden bundle into a scratch directory. */
std::string ScratchBundle(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       Format("gpuperf_corrupt_%s_%d", tag.c_str(),
              static_cast<int>(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const auto& entry :
       std::filesystem::directory_iterator(GoldenBundle())) {
    std::filesystem::copy(entry.path(), dir + "/" +
                                            entry.path().filename().string());
  }
  return dir;
}

/** Edits one bundle file in place and re-manifests. */
void EditFile(const std::string& dir, const std::string& file,
              const std::function<void(std::vector<std::string>*)>& edit) {
  std::vector<std::string> lines = Lines(ReadAll(dir + "/" + file));
  edit(&lines);
  WriteAll(dir + "/" + file, Unlines(lines));
  Remanifest(dir);
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesPredictions) {
  KwModel original;
  original.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_model_io").string();
  std::filesystem::create_directories(dir);
  ModelIo::SaveKw(original, dir);
  KwModel loaded = ModelIo::LoadKw(dir).value();

  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (const char* name : {"resnet50", "vgg16_bn", "mobilenet_v2",
                           "densenet121", "googlenet"}) {
    dnn::Network net = zoo::BuildByName(name);
    EXPECT_NEAR(loaded.PredictUs(net, a100, 256),
                original.PredictUs(net, a100, 256),
                1e-6 * original.PredictUs(net, a100, 256))
        << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, RoundTripPreservesKernelModels) {
  KwModel original;
  original.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_model_io2")
          .string();
  std::filesystem::create_directories(dir);
  ModelIo::SaveKw(original, dir);
  KwModel loaded = ModelIo::LoadKw(dir).value();

  const auto& original_kernels = original.KernelModels("A40");
  const auto& loaded_kernels = loaded.KernelModels("A40");
  ASSERT_EQ(loaded_kernels.size(), original_kernels.size());
  for (const auto& [name, km] : original_kernels) {
    auto it = loaded_kernels.find(name);
    ASSERT_NE(it, loaded_kernels.end()) << name;
    EXPECT_EQ(it->second.driver, km.driver) << name;
    EXPECT_NEAR(it->second.fit.slope, km.fit.slope,
                1e-9 * std::abs(km.fit.slope) + 1e-18);
    EXPECT_NEAR(it->second.fit.intercept, km.fit.intercept, 1e-6);
    EXPECT_EQ(it->second.cluster_id, km.cluster_id);
  }
  EXPECT_EQ(loaded.MappingTable().size(), original.MappingTable().size());
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, LoadFromMissingDirectoryIsRecoverable) {
  StatusOr<KwModel> loaded = ModelIo::LoadKw("/nonexistent/model/dir");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("not a model bundle"),
            std::string::npos)
      << loaded.status().message();
}

TEST(ModelIoTest, ManifestIsWrittenLast) {
  // An interrupted save (no manifest yet) must never validate.
  const std::string dir = ScratchBundle("no_manifest");
  std::filesystem::remove(dir + "/manifest.csv");
  EXPECT_FALSE(ModelIo::LoadKw(dir).ok());
  std::filesystem::remove_all(dir);
}

/** One corruption mode of the matrix. */
struct Corruption {
  const char* tag;                          // scratch-dir suffix
  std::function<void(const std::string&)> apply;  // mutates the bundle
  const char* expected_substring;           // must appear in the message
};

TEST(ModelIoCorruptionMatrixTest, EveryCorruptionIsANonOkStatus) {
  const std::vector<Corruption> corruptions = {
      {"deleted_file",
       [](const std::string& dir) {
         std::filesystem::remove(dir + "/kernel_models.csv");
       },
       "kernel_models.csv"},
      {"truncated_file",
       [](const std::string& dir) {
         // Drop the last line without fixing the manifest: checksum gate.
         std::vector<std::string> lines =
             Lines(ReadAll(dir + "/kernel_models.csv"));
         lines.pop_back();
         WriteAll(dir + "/kernel_models.csv", Unlines(lines));
       },
       "checksum mismatch"},
      {"row_count_drift",
       [](const std::string& dir) {
         // Manifest row count lies while the checksum entry is patched to
         // match the file: the row-count gate must catch it.
         std::vector<std::string> lines = Lines(ReadAll(dir + "/manifest.csv"));
         SetField(&lines, 1, 3, "99999");
         WriteAll(dir + "/manifest.csv", Unlines(lines));
       },
       "manifest says"},
      {"unsupported_version",
       [](const std::string& dir) {
         std::vector<std::string> lines = Lines(ReadAll(dir + "/manifest.csv"));
         for (std::size_t i = 1; i < lines.size(); ++i) {
           SetField(&lines, i, 0, "99");
         }
         WriteAll(dir + "/manifest.csv", Unlines(lines));
       },
       "version 99 is not supported"},
      {"manifest_missing_entry",
       [](const std::string& dir) {
         std::vector<std::string> lines = Lines(ReadAll(dir + "/manifest.csv"));
         lines.erase(lines.begin() + 1);  // drop kernel_models.csv entry
         WriteAll(dir + "/manifest.csv", Unlines(lines));
       },
       "no entry"},
      {"non_finite_slope",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 3, "inf");
         });
       },
       "slope"},
      {"non_numeric_field",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 5, "banana");
         });
       },
       "cluster_id"},
      {"unknown_driver",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 2, "vibes");
         });
       },
       "not a cost driver"},
      {"duplicate_kernel_row",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           l->push_back((*l)[1]);
         });
       },
       "duplicate kernel model"},
      {"missing_column",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 0, 3, "slopeX");
         });
       },
       "missing column 'slope'"},
      {"ragged_row",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           (*l)[1] += ",extra";
         });
       },
       "fields"},
      {"duplicate_mapping_key",
       [](const std::string& dir) {
         EditFile(dir, "mapping_table.csv", [](std::vector<std::string>* l) {
           l->push_back((*l)[1]);
         });
       },
       "duplicate mapping-table key"},
      {"empty_kernel_list",
       [](const std::string& dir) {
         EditFile(dir, "mapping_table.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 1, "");
         });
       },
       "empty kernel list"},
      {"non_positive_calibration",
       [](const std::string& dir) {
         EditFile(dir, "calibration.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 1, "-0.5");
         });
       },
       "must be positive"},
      {"duplicate_calibration_gpu",
       [](const std::string& dir) {
         EditFile(dir, "calibration.csv", [](std::vector<std::string>* l) {
           l->push_back((*l)[1]);
         });
       },
       "duplicate calibration row"},
      {"unknown_layer_kind",
       [](const std::string& dir) {
         EditFile(dir, "layer_fallback.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 1, "Blursed");
         });
       },
       "not a layer kind"},
      {"missing_fallback_rows",
       [](const std::string& dir) {
         EditFile(dir, "layer_fallback.csv", [](std::vector<std::string>* l) {
           // Keep only the header: no GPU can degrade to the LW tier.
           l->resize(1);
         });
       },
       "no fallback rows"},
  };

  ASSERT_GE(corruptions.size(), 10u);
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.tag);
    const std::string dir = ScratchBundle(corruption.tag);
    corruption.apply(dir);
    // The load must fail with a Status — never abort the process.
    StatusOr<KwModel> loaded = ModelIo::LoadKw(dir);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find(corruption.expected_substring),
              std::string::npos)
        << corruption.tag << ": " << loaded.status().message();
    std::filesystem::remove_all(dir);
  }
}

// --- Seeded randomized-corruption sweep ("mini-fuzz"). The handcrafted
// matrix above checks one known failure per validation layer; the sweep
// below checks the *unknown* ones: any byte- or field-level mutation of
// a saved bundle, without patching the manifest, must surface as a
// Status — never a crash, never an accepted load (the checksum gate
// guarantees a mutated file can't validate). Seeded Rng keeps every run
// identical, so a failure is a repro, not a flake.

constexpr const char* kBundleFiles[] = {
    "kernel_models.csv", "mapping_table.csv", "calibration.csv",
    "layer_fallback.csv"};

TEST(ModelIoFuzzTest, RandomByteMutationsAlwaysYieldAStatus) {
  Rng rng(0xB0B5'0001);
  for (int trial = 0; trial < 64; ++trial) {
    SCOPED_TRACE(Format("byte trial %d", trial));
    const std::string dir = ScratchBundle("fuzz_byte");
    const char* file = kBundleFiles[rng.NextBelow(4)];
    std::string content = ReadAll(dir + "/" + file);
    ASSERT_FALSE(content.empty());
    // 1-4 independent byte mutations: flip, overwrite, or truncate.
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits && !content.empty(); ++e) {
      const std::size_t pos = rng.NextBelow(content.size());
      switch (rng.NextBelow(3)) {
        case 0:
          content[pos] = static_cast<char>(content[pos] ^
                                           (1 << rng.NextBelow(8)));
          break;
        case 1:
          content[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        default:
          content.resize(pos);
          break;
      }
    }
    WriteAll(dir + "/" + file, content);
    if (content != ReadAll(GoldenBundle() + "/" + file)) {
      StatusOr<KwModel> loaded = ModelIo::LoadKw(dir);
      EXPECT_FALSE(loaded.ok()) << file << " mutated but load succeeded";
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(ModelIoFuzzTest, RandomFieldMutationsAlwaysYieldAStatus) {
  Rng rng(0xB0B5'0002);
  const std::vector<std::string> junk = {"",      "nan",  "-inf", "1e999",
                                         "banana", "-1",   "  ",   "0x12",
                                         "1,2",    "\"q\""};
  for (int trial = 0; trial < 64; ++trial) {
    SCOPED_TRACE(Format("field trial %d", trial));
    const std::string dir = ScratchBundle("fuzz_field");
    const char* file = kBundleFiles[rng.NextBelow(4)];
    std::vector<std::string> lines = Lines(ReadAll(dir + "/" + file));
    ASSERT_GE(lines.size(), 2u);
    const std::size_t line = rng.NextBelow(lines.size());
    const std::vector<std::string> fields = Split(lines[line], ',');
    const std::size_t index = rng.NextBelow(fields.size());
    const std::string& value = junk[rng.NextBelow(junk.size())];
    if (fields[index] == value) {
      std::filesystem::remove_all(dir);
      continue;
    }
    SetField(&lines, line, index, value);
    // No Remanifest(): an on-disk mutation the manifest doesn't bless is
    // exactly what a partial write or bit rot produces.
    WriteAll(dir + "/" + file, Unlines(lines));
    StatusOr<KwModel> loaded = ModelIo::LoadKw(dir);
    EXPECT_FALSE(loaded.ok())
        << file << " line " << line << " field " << index << " <- '"
        << value << "' was accepted";
    std::filesystem::remove_all(dir);
  }
}

TEST(ModelIoTest, RemanifestedUntouchedBundleStillLoads) {
  // Sanity-check the corruption harness itself: re-manifesting without
  // edits must keep the bundle loadable (checksums recompute correctly).
  const std::string dir = ScratchBundle("sanity");
  Remanifest(dir);
  EXPECT_TRUE(ModelIo::LoadKw(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gpuperf::models
