#include "common/ascii_plot.h"

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

TEST(AsciiPlotTest, EmptySeriesProducesPlaceholder) {
  EXPECT_EQ(AsciiPlot({}, PlotOptions{}), "(empty plot)\n");
}

TEST(AsciiPlotTest, RendersTitleAxesAndLegend) {
  PlotSeries series{"mine", {1, 2, 3}, {1, 4, 9}};
  // Aggregate-init (not member-by-member assignment) sidesteps a GCC 12
  // -Wmaybe-uninitialized false positive on inlined std::string::operator=.
  PlotOptions options{};
  options.title = std::string("The Title");
  options.x_label = std::string("xs");
  options.y_label = std::string("ys");
  const std::string out = AsciiPlot({series}, options);
  EXPECT_NE(out.find("The Title"), std::string::npos);
  EXPECT_NE(out.find("xs"), std::string::npos);
  EXPECT_NE(out.find("mine"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, MultipleSeriesGetDistinctGlyphs) {
  PlotSeries a{"a", {1, 2}, {1, 2}};
  PlotSeries b{"b", {1, 2}, {2, 1}};
  const std::string out = AsciiPlot({a, b}, PlotOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, SinglePointDoesNotDivideByZero) {
  PlotSeries series{"p", {5}, {7}};
  EXPECT_NO_FATAL_FAILURE(AsciiPlot({series}, PlotOptions{}));
}

TEST(AsciiPlotTest, LogAxesAcceptPositiveData) {
  PlotSeries series{"log", {0.001, 1, 1000}, {0.01, 10, 10000}};
  PlotOptions options;
  options.log_x = true;
  options.log_y = true;
  EXPECT_NO_FATAL_FAILURE(AsciiPlot({series}, options));
}

TEST(AsciiPlotDeathTest, LogAxisRejectsNonPositive) {
  PlotSeries series{"bad", {0.0, 1.0}, {1.0, 2.0}};
  PlotOptions options;
  options.log_x = true;
  EXPECT_DEATH(AsciiPlot({series}, options), "positive");
}

TEST(AsciiPlotDeathTest, MismatchedXyIsError) {
  PlotSeries series{"bad", {1.0, 2.0}, {1.0}};
  EXPECT_DEATH(AsciiPlot({series}, PlotOptions{}), "check failed");
}

TEST(AsciiPlotTest, RespectsRequestedDimensions) {
  PlotSeries series{"dim", {0, 1}, {0, 1}};
  PlotOptions options;
  options.width = 30;
  options.height = 5;
  const std::string out = AsciiPlot({series}, options);
  int plot_rows = 0;
  for (std::size_t pos = out.find('|'); pos != std::string::npos;
       pos = out.find('|', pos + 1)) {
    ++plot_rows;
  }
  EXPECT_EQ(plot_rows, 5);
}

}  // namespace
}  // namespace gpuperf
