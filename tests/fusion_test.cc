#include "dnn/fusion.h"

#include <gtest/gtest.h>

#include "dnn/builder.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "zoo/zoo.h"

namespace gpuperf::dnn {
namespace {

TEST(FusionTest, FusesConvBnReluTriple) {
  NetworkBuilder b("t", "Test", Chw(3, 32, 32));
  b.ConvBnRelu(16, 3, 1, 1);
  FusionReport report;
  Network fused = FuseConvBnAct(b.Build(), &report);
  ASSERT_EQ(fused.layers().size(), 1u);
  const ConvParams& params = fused.layers()[0].conv();
  EXPECT_TRUE(params.has_bias);
  EXPECT_EQ(params.epilogue, ConvEpilogue::kRelu);
  EXPECT_EQ(report.folded_batchnorms, 1);
  EXPECT_EQ(report.fused_activations, 1);
}

TEST(FusionTest, FusesConvBnPairWithoutActivation) {
  NetworkBuilder b("t", "Test", Chw(3, 32, 32));
  b.Conv(16, 3, 1, 1).BatchNorm().Sigmoid();  // sigmoid is not fusable
  Network fused = FuseConvBnAct(b.Build());
  ASSERT_EQ(fused.layers().size(), 2u);
  EXPECT_EQ(fused.layers()[0].conv().epilogue, ConvEpilogue::kBias);
  EXPECT_EQ(fused.layers()[1].kind, LayerKind::kSigmoid);
}

TEST(FusionTest, LeavesBareConvAndLoneReluAlone) {
  NetworkBuilder b("t", "Test", Chw(3, 32, 32));
  b.Conv(16, 3, 1, 1).MaxPool(2, 2, 0).Relu();
  Network fused = FuseConvBnAct(b.Build());
  EXPECT_EQ(fused.layers().size(), 3u);
  EXPECT_EQ(fused.layers()[0].conv().epilogue, ConvEpilogue::kNone);
}

TEST(FusionTest, PreservesShapesAndEndpoints) {
  Network original = zoo::BuildByName("resnet18");
  Network fused = FuseConvBnAct(original);
  EXPECT_LT(fused.layers().size(), original.layers().size());
  EXPECT_EQ(fused.input(), original.input());
  EXPECT_EQ(fused.layers().back().output, original.layers().back().output);
  EXPECT_EQ(fused.name(), original.name());
}

TEST(FusionTest, ResNetLosesAboutATthirdOfItsLayers) {
  Network original = zoo::BuildByName("resnet50");
  FusionReport report;
  Network fused = FuseConvBnAct(original, &report);
  // Every conv in ResNet-50 is followed by a BN.
  EXPECT_EQ(report.folded_batchnorms, 53);
  EXPECT_LE(fused.layers().size(), original.layers().size() - 53);
}

TEST(FusionTest, FusedConvLowersWithoutSeparatePasses) {
  NetworkBuilder b("t", "Test", Chw(64, 56, 56));
  b.ConvBnRelu(64, 1, 1, 0);
  Network fused = FuseConvBnAct(b.Build());
  auto launches = gpuexec::LowerLayer(fused.layers()[0], 32);
  ASSERT_EQ(launches.size(), 1u);  // one kernel, epilogue fused
  EXPECT_NE(launches[0].name.find("_epi_relu"), std::string::npos);
}

TEST(FusionTest, SignatureDistinguishesFusedConvs) {
  NetworkBuilder b("t", "Test", Chw(64, 56, 56));
  b.Conv(64, 1, 1, 0);
  Network plain_net = b.Build();
  NetworkBuilder b2("t", "Test", Chw(64, 56, 56));
  b2.ConvBnRelu(64, 1, 1, 0);
  Network fused = FuseConvBnAct(b2.Build());
  EXPECT_NE(LayerSignature(plain_net.layers()[0]),
            LayerSignature(fused.layers()[0]));
}

TEST(FusionTest, FusedNetworkIsFasterOnTheOracle) {
  gpuexec::HardwareOracle oracle;
  gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  Network original = zoo::BuildByName("resnet18");
  Network fused = FuseConvBnAct(original);
  const double before = profiler.MeasureE2eUs(original, a100, 128);
  const double after = profiler.MeasureE2eUs(fused, a100, 128);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.5 * before);  // fusion helps, but not magically
}

TEST(FusionTest, IdempotentOnAlreadyFusedNetwork) {
  Network once = FuseConvBnAct(zoo::BuildByName("resnet18"));
  FusionReport report;
  Network twice = FuseConvBnAct(once, &report);
  EXPECT_EQ(report.folded_batchnorms, 0);
  EXPECT_EQ(twice.layers().size(), once.layers().size());
}

}  // namespace
}  // namespace gpuperf::dnn
