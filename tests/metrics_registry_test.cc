#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace gpuperf::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(3);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0
  histogram.Observe(1.0);    // bucket 0 (le semantics: v <= bound)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(100.0);  // bucket 2
  histogram.Observe(250.0);  // overflow
  EXPECT_EQ(histogram.BucketCounts(),
            (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_NEAR(histogram.Sum(), 356.5, 1e-5);
}

TEST(HistogramTest, SumIsExactInFixedPoint) {
  // 2^-20 fixed-point: a value on the grid round-trips exactly, so two
  // histograms fed the same observations in any order agree bit-for-bit.
  Histogram a({100.0}), b({100.0});
  const std::vector<double> values = {0.25, 1.5, 3.75, 90.0625};
  for (double v : values) a.Observe(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) b.Observe(*it);
  EXPECT_EQ(a.Sum(), b.Sum());
  EXPECT_EQ(a.Sum(), 95.5625);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.Sum(), 0.0);
  EXPECT_EQ(histogram.BucketCounts(), (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(HistogramDeathTest, RejectsNonFiniteObservations) {
  Histogram histogram({1.0});
  EXPECT_DEATH(histogram.Observe(std::nan("")), "must be finite");
  EXPECT_DEATH(histogram.Observe(1.0 / 0.0), "must be finite");
}

TEST(HistogramDeathTest, RejectsBadBounds) {
  EXPECT_DEATH(Histogram({}), "at least one bucket");
  EXPECT_DEATH(Histogram({1.0, 1.0}), "strictly ascending");
  EXPECT_DEATH(Histogram({2.0, 1.0}), "strictly ascending");
  EXPECT_DEATH(Histogram({1.0 / 0.0}), "not finite");
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("gpuperf_test_events");
  Counter& b = registry.counter("gpuperf_test_events");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
}

TEST(MetricsRegistryDeathTest, KindMismatchIsAProgrammerError) {
  MetricsRegistry registry;
  registry.counter("gpuperf_test_events");
  EXPECT_DEATH(registry.gauge("gpuperf_test_events"),
               "already registered as a counter");
  EXPECT_DEATH(registry.histogram("gpuperf_test_events", {1.0}),
               "already registered as a counter");
}

TEST(MetricsRegistryDeathTest, HistogramBoundsMismatchIsAProgrammerError) {
  MetricsRegistry registry;
  registry.histogram("gpuperf_test_latency", {1.0, 2.0});
  EXPECT_DEATH(registry.histogram("gpuperf_test_latency", {1.0, 3.0}),
               "different bucket bounds");
}

TEST(MetricsRegistryDeathTest, NamesMustFollowTheConvention) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.counter(""), "lowercase");
  EXPECT_DEATH(registry.counter("Gpuperf_Events"), "lowercase");
  EXPECT_DEATH(registry.counter("gpuperf-events"), "lowercase");
}

TEST(MetricsRegistryTest, CsvSnapshotIsGoldenAndSorted) {
  MetricsRegistry registry;
  // Register in non-sorted order; the snapshot must sort by name.
  registry.gauge("gpuperf_test_depth").Set(-2);
  registry.counter("gpuperf_test_events").Increment(3);
  Histogram& h = registry.histogram("gpuperf_test_latency_ms", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(20.0);
  EXPECT_EQ(registry.CsvSnapshot(),
            "metric,type,field,value\n"
            "gpuperf_test_depth,gauge,value,-2\n"
            "gpuperf_test_events,counter,value,3\n"
            "gpuperf_test_latency_ms,histogram,bucket_le_1,2\n"
            "gpuperf_test_latency_ms,histogram,bucket_le_10,1\n"
            "gpuperf_test_latency_ms,histogram,bucket_le_+Inf,1\n"
            "gpuperf_test_latency_ms,histogram,count,4\n"
            "gpuperf_test_latency_ms,histogram,sum,25\n"
            "gpuperf_test_latency_ms,histogram,p50,1\n"
            "gpuperf_test_latency_ms,histogram,p95,10\n"
            "gpuperf_test_latency_ms,histogram,p99,10\n");
}

TEST(MetricsRegistryTest, PrometheusSnapshotIsGoldenWithCumulativeBuckets) {
  MetricsRegistry registry;
  registry.counter("gpuperf_test_events", "Total events processed")
      .Increment(3);
  registry.gauge("gpuperf_test_depth").Set(7);
  Histogram& h = registry.histogram("gpuperf_test_latency_ms", {1.0, 10.0},
                                    "End-to-end latency in milliseconds");
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(20.0);
  // Every family leads with `# HELP` then `# TYPE`; a family with no
  // registered help text falls back to its own name so scrapers always
  // see both comment lines.
  EXPECT_EQ(registry.PrometheusSnapshot(),
            "# HELP gpuperf_test_depth gpuperf_test_depth\n"
            "# TYPE gpuperf_test_depth gauge\n"
            "gpuperf_test_depth 7\n"
            "# HELP gpuperf_test_events Total events processed\n"
            "# TYPE gpuperf_test_events counter\n"
            "gpuperf_test_events 3\n"
            "# HELP gpuperf_test_latency_ms End-to-end latency in "
            "milliseconds\n"
            "# TYPE gpuperf_test_latency_ms histogram\n"
            "gpuperf_test_latency_ms_bucket{le=\"1\"} 1\n"
            "gpuperf_test_latency_ms_bucket{le=\"10\"} 2\n"
            "gpuperf_test_latency_ms_bucket{le=\"+Inf\"} 3\n"
            "gpuperf_test_latency_ms_sum 24.5\n"
            "gpuperf_test_latency_ms_count 3\n");
}

TEST(MetricsRegistryTest, FirstNonEmptyHelpTextWins) {
  MetricsRegistry registry;
  registry.counter("gpuperf_test_events");  // no help yet
  registry.counter("gpuperf_test_events", "First real help");
  registry.counter("gpuperf_test_events", "Later help is ignored");
  const std::string snapshot = registry.PrometheusSnapshot();
  EXPECT_NE(snapshot.find("# HELP gpuperf_test_events First real help\n"),
            std::string::npos);
  EXPECT_EQ(snapshot.find("Later help"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("gpuperf_test_events").Increment(5);
  registry.gauge("gpuperf_test_depth").Set(5);
  registry.histogram("gpuperf_test_latency_ms", {1.0}).Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(registry.counter("gpuperf_test_events").Value(), 0u);
  EXPECT_EQ(registry.gauge("gpuperf_test_depth").Value(), 0);
  EXPECT_EQ(registry.histogram("gpuperf_test_latency_ms", {1.0}).Count(), 0u);
}

TEST(MetricsRegistryTest, WriteSnapshotPicksFormatByExtension) {
  MetricsRegistry registry;
  registry.counter("gpuperf_test_events").Increment(2);
  const std::string dir = ::testing::TempDir();
  const std::string csv_path = dir + "/metrics_test_snapshot.csv";
  const std::string prom_path = dir + "/metrics_test_snapshot.prom";
  ASSERT_TRUE(registry.WriteSnapshot(csv_path).ok());
  ASSERT_TRUE(registry.WriteSnapshot(prom_path).ok());
  EXPECT_EQ(ReadFile(csv_path), registry.CsvSnapshot());
  EXPECT_EQ(ReadFile(prom_path), registry.PrometheusSnapshot());
  std::filesystem::remove(csv_path);
  std::filesystem::remove(prom_path);
}

TEST(MetricsRegistryTest, WriteSnapshotToUnwritablePathIsAnError) {
  MetricsRegistry registry;
  const Status status =
      registry.WriteSnapshot("/nonexistent-gpuperf-dir/metrics.csv");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("cannot open metrics file"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("gpuperf_test_concurrent");
  Histogram& histogram =
      registry.histogram("gpuperf_test_concurrent_ms", {10.0, 100.0});
  constexpr std::size_t kIters = 10000;
  ThreadPool pool(4);
  pool.ParallelFor(kIters, [&](std::size_t i) {
    counter.Increment();
    histogram.Observe(static_cast<double>(i % 128));
  });
  EXPECT_EQ(counter.Value(), kIters);
  EXPECT_EQ(histogram.Count(), kIters);
  std::uint64_t total = 0;
  for (std::uint64_t c : histogram.BucketCounts()) total += c;
  EXPECT_EQ(total, kIters);
}

TEST(MetricsRegistryTest, SnapshotUnderConcurrentWritersIsWellFormed) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("gpuperf_test_live");
  ThreadPool pool(4);
  pool.ParallelFor(64, [&](std::size_t i) {
    counter.Increment();
    if (i % 8 == 0) {
      const std::string snapshot = registry.CsvSnapshot();
      EXPECT_EQ(snapshot.rfind("metric,type,field,value\n", 0), 0u);
    }
  });
  EXPECT_EQ(counter.Value(), 64u);
}

TEST(MetricsRegistryTest, ConcurrentFirstRegistrationIsSafe) {
  // Every thread races to first-register the same names while others
  // snapshot: the instrument must be fully built before the registry
  // lock drops, so all threads get the same address and no snapshot
  // sees a half-built entry (TSan-checked in the verify tier).
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  std::vector<Counter*> counters(kThreads, nullptr);
  std::vector<Histogram*> histograms(kThreads, nullptr);
  ThreadPool pool(static_cast<int>(kThreads));
  pool.ParallelFor(kThreads, [&](std::size_t i) {
    counters[i] = &registry.counter("gpuperf_test_race");
    histograms[i] = &registry.histogram("gpuperf_test_race_ms", {1.0, 10.0});
    registry.gauge(Format("gpuperf_test_race_gauge_%zu", i)).Set(1);
    counters[i]->Increment();
    histograms[i]->Observe(0.5);
    const std::string snapshot = registry.CsvSnapshot();
    EXPECT_EQ(snapshot.rfind("metric,type,field,value\n", 0), 0u);
  });
  for (std::size_t i = 1; i < kThreads; ++i) {
    EXPECT_EQ(counters[i], counters[0]);
    EXPECT_EQ(histograms[i], histograms[0]);
  }
  EXPECT_EQ(counters[0]->Value(), kThreads);
  EXPECT_EQ(histograms[0]->Count(), kThreads);
}

TEST(MetricsRegistryTest, InstallProcessMetricsTracksQueueDepth) {
  InstallProcessMetrics();
  Gauge& depth =
      MetricsRegistry::Global().gauge("gpuperf_threadpool_queue_depth");
  {
    ThreadPool pool(4);
    pool.ParallelFor(256, [](std::size_t) {});
  }
  // Every enqueued helper task was dequeued: the gauge is balanced.
  EXPECT_EQ(depth.Value(), 0);
}

}  // namespace
}  // namespace gpuperf::obs
