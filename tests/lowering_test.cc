#include "gpuexec/lowering.h"

#include <gtest/gtest.h>

#include "dnn/builder.h"
#include "dnn/flops.h"
#include "zoo/zoo.h"

namespace gpuperf::gpuexec {
namespace {

using dnn::Chw;
using dnn::LayerKind;
using dnn::NetworkBuilder;

dnn::Layer MakeConv(std::int64_t in_c, std::int64_t resolution,
                    std::int64_t out_c, std::int64_t kernel,
                    std::int64_t stride, std::int64_t pad,
                    std::int64_t groups = 1) {
  NetworkBuilder b("t", "Test", Chw(in_c, resolution, resolution));
  b.Conv(out_c, kernel, stride, pad, groups);
  return b.Build().layers()[0];
}

TEST(AlgorithmSelectionTest, DepthwiseWins) {
  dnn::Layer conv = MakeConv(32, 56, 32, 3, 1, 1, /*groups=*/32);
  EXPECT_EQ(SelectConvAlgorithm(conv.conv(), conv.inputs[0], conv.output),
            ConvAlgorithm::kDepthwise);
}

TEST(AlgorithmSelectionTest, OneByOneIsImplicitGemm) {
  dnn::Layer conv = MakeConv(64, 56, 256, 1, 1, 0);
  EXPECT_EQ(SelectConvAlgorithm(conv.conv(), conv.inputs[0], conv.output),
            ConvAlgorithm::kImplicitGemm);
}

TEST(AlgorithmSelectionTest, Stride1Deep3x3IsWinograd) {
  dnn::Layer conv = MakeConv(64, 56, 64, 3, 1, 1);
  EXPECT_EQ(SelectConvAlgorithm(conv.conv(), conv.inputs[0], conv.output),
            ConvAlgorithm::kWinograd);
}

TEST(AlgorithmSelectionTest, LargeKernelStride1IsFft) {
  dnn::Layer conv = MakeConv(64, 56, 64, 7, 1, 3);
  EXPECT_EQ(SelectConvAlgorithm(conv.conv(), conv.inputs[0], conv.output),
            ConvAlgorithm::kFft);
}

TEST(AlgorithmSelectionTest, StemConvIsIm2colGemm) {
  // 3-channel 7x7 stride-2 stem: too shallow for FFT, kernel >= 5.
  dnn::Layer conv = MakeConv(3, 224, 64, 7, 2, 3);
  EXPECT_EQ(SelectConvAlgorithm(conv.conv(), conv.inputs[0], conv.output),
            ConvAlgorithm::kIm2colGemm);
}

TEST(AlgorithmSelectionTest, ShallowChannelsGoDirect) {
  dnn::Layer conv = MakeConv(8, 56, 8, 3, 2, 1);
  EXPECT_EQ(SelectConvAlgorithm(conv.conv(), conv.inputs[0], conv.output),
            ConvAlgorithm::kDirect);
}

TEST(LoweringTest, WinogradEmitsThreeKernelPipeline) {
  dnn::Layer conv = MakeConv(64, 56, 64, 3, 1, 1);
  std::vector<KernelLaunch> launches = LowerLayer(conv, 16);
  ASSERT_EQ(launches.size(), 3u);
  EXPECT_EQ(launches[0].driver, CostDriver::kInput);
  EXPECT_EQ(launches[1].driver, CostDriver::kOperation);
  EXPECT_EQ(launches[2].driver, CostDriver::kOutput);
  EXPECT_EQ(launches[0].family, KernelFamily::kWinogradTransform);
  EXPECT_EQ(launches[1].family, KernelFamily::kWinogradGemm);
}

TEST(LoweringTest, Im2colGemmEmitsTwoKernels) {
  dnn::Layer conv = MakeConv(3, 224, 64, 7, 2, 3);
  std::vector<KernelLaunch> launches = LowerLayer(conv, 8);
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_EQ(launches[0].family, KernelFamily::kIm2col);
  EXPECT_EQ(launches[0].driver, CostDriver::kInput);
  EXPECT_EQ(launches[1].family, KernelFamily::kGemm);
}

TEST(LoweringTest, ConvBiasAddsElementwiseKernel) {
  NetworkBuilder b("t", "Test", Chw(64, 28, 28));
  b.Conv(64, 1, 1, 0, 1, /*bias=*/true);
  std::vector<KernelLaunch> launches =
      LowerLayer(b.Build().layers()[0], 4);
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_EQ(launches[1].family, KernelFamily::kElementwise);
  EXPECT_EQ(launches[1].driver, CostDriver::kOutput);
}

TEST(LoweringTest, FlattenAndDropoutLowerToNothing) {
  NetworkBuilder b("t", "Test", Chw(16, 4, 4));
  b.Flatten().Dropout();
  dnn::Network net = b.Build();
  EXPECT_TRUE(LowerLayer(net.layers()[0], 4).empty());
  EXPECT_TRUE(LowerLayer(net.layers()[1], 4).empty());
}

TEST(LoweringTest, GemmFlopsAreTwiceTheoreticalMacs) {
  // Executed FLOPs count multiply+add; thop counts multiplications only.
  dnn::Layer conv = MakeConv(64, 56, 256, 1, 1, 0);
  std::vector<KernelLaunch> launches = LowerLayer(conv, 32);
  ASSERT_EQ(launches.size(), 1u);
  EXPECT_EQ(launches[0].flops, 2 * dnn::LayerFlops(conv, 32));
}

TEST(LoweringTest, WinogradGemmSavesMultiplications) {
  dnn::Layer conv = MakeConv(64, 56, 64, 3, 1, 1);
  std::vector<KernelLaunch> launches = LowerLayer(conv, 32);
  const double theoretical = 2.0 * dnn::LayerFlops(conv, 32);
  EXPECT_LT(launches[1].flops, theoretical * 0.5);
  EXPECT_GT(launches[1].flops, theoretical * 0.35);  // ~1/2.25
}

TEST(LoweringTest, LayerFeaturesAttachedToEveryKernel) {
  dnn::Layer conv = MakeConv(64, 56, 64, 3, 1, 1);
  for (const KernelLaunch& launch : LowerLayer(conv, 32)) {
    EXPECT_EQ(launch.layer_kind, LayerKind::kConv2d);
    EXPECT_EQ(launch.batch, 32);
    EXPECT_EQ(launch.layer_flops, dnn::LayerFlops(conv, 32));
    EXPECT_EQ(launch.input_elems, 32 * conv.InputElements());
    EXPECT_EQ(launch.output_elems, 32 * conv.output.Elements());
  }
}

TEST(LoweringTest, KernelNamesEncodeTileAndDepth) {
  dnn::Layer conv = MakeConv(512, 14, 512, 1, 1, 0);
  std::vector<KernelLaunch> launches = LowerLayer(conv, 64);
  EXPECT_NE(launches[0].name.find("implicit_gemm_1x1_"),
            std::string::npos);
  EXPECT_NE(launches[0].name.find("_k512"), std::string::npos);
}

TEST(LoweringTest, ElementwiseVariantByProblemSize) {
  NetworkBuilder b("t", "Test", Chw(64, 112, 112));
  b.Relu();
  dnn::Network big = b.Build();
  EXPECT_NE(LowerLayer(big.layers()[0], 64)[0].name.find("vec4"),
            std::string::npos);
  NetworkBuilder b2("t", "Test", Chw(3, 5, 5));
  b2.Relu();
  dnn::Network small = b2.Build();
  EXPECT_NE(LowerLayer(small.layers()[0], 1)[0].name.find("plain"),
            std::string::npos);
}

TEST(LoweringTest, BytesAccountingIsConsistent) {
  // Every kernel moves at least its layer's output bytes and a positive
  // number of blocks.
  dnn::Network net = zoo::BuildByName("resnet18");
  for (const auto& launches : LowerNetwork(net, 16)) {
    for (const KernelLaunch& launch : launches) {
      EXPECT_GT(launch.bytes_out, 0) << launch.name;
      EXPECT_GT(launch.bytes_in, 0) << launch.name;
      EXPECT_GT(launch.blocks, 0) << launch.name;
    }
  }
}

TEST(LoweringTest, LowerNetworkAlignsWithLayers) {
  dnn::Network net = zoo::BuildByName("alexnet");
  auto lowered = LowerNetwork(net, 8);
  ASSERT_EQ(lowered.size(), net.layers().size());
  // AlexNet has no BN: every conv carries a bias kernel.
  ASSERT_EQ(lowered[0].size(), 3u);  // im2col + gemm + bias (11x11 stem)
}

TEST(LoweringTest, DepthwiseKernelNameEncodesStride) {
  dnn::Layer conv = MakeConv(32, 56, 32, 3, 2, 1, /*groups=*/32);
  std::vector<KernelLaunch> launches = LowerLayer(conv, 4);
  ASSERT_EQ(launches.size(), 1u);
  EXPECT_EQ(launches[0].name, "dw_conv_3x3_s2");
}

TEST(LoweringTest, MatMulLowersToBatchedGemm) {
  NetworkBuilder b("t", "Test", Chw(768, 128, 1));
  b.MatMul(12, 128, 128, 64, Chw(12, 128, 128));
  std::vector<KernelLaunch> launches =
      LowerLayer(b.Build().layers()[0], 8);
  ASSERT_EQ(launches.size(), 1u);
  EXPECT_NE(launches[0].name.find("batched_gemm"), std::string::npos);
  EXPECT_EQ(launches[0].flops, 2LL * 8 * 12 * 128 * 128 * 64);
}

}  // namespace
}  // namespace gpuperf::gpuexec
