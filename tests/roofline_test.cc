#include "gpuexec/roofline.h"

#include <gtest/gtest.h>

#include "dnn/builder.h"
#include "zoo/zoo.h"

namespace gpuperf::gpuexec {
namespace {

TEST(RooflineTest, RidgePointFromTable1) {
  RooflineReport report =
      AnalyzeRoofline(zoo::BuildByName("alexnet"), GpuByName("A100"), 64);
  EXPECT_NEAR(report.ridge_intensity, 19.5e12 / 1555e9, 1e-9);
}

TEST(RooflineTest, SkipsViewLayers) {
  dnn::Network net = zoo::BuildByName("alexnet");
  RooflineReport report = AnalyzeRoofline(net, GpuByName("V100"), 64);
  // Flatten/Dropout launch nothing and must not appear.
  for (const LayerRoofline& layer : report.layers) {
    EXPECT_NE(layer.kind, dnn::LayerKind::kFlatten);
    EXPECT_NE(layer.kind, dnn::LayerKind::kDropout);
  }
  EXPECT_LT(report.layers.size(), net.layers().size());
}

TEST(RooflineTest, ElementwiseLayersAreMemoryBound) {
  dnn::NetworkBuilder b("t", "Test", dnn::Chw(64, 56, 56));
  b.Relu().BatchNorm();
  RooflineReport report =
      AnalyzeRoofline(b.Build(), GpuByName("A100"), 64);
  ASSERT_EQ(report.layers.size(), 2u);
  for (const LayerRoofline& layer : report.layers) {
    EXPECT_TRUE(layer.memory_bound) << dnn::LayerKindName(layer.kind);
    EXPECT_LT(layer.operational_intensity, 2.0);
  }
}

TEST(RooflineTest, WideConvIsComputeBoundOnA100) {
  dnn::NetworkBuilder b("t", "Test", dnn::Chw(256, 28, 28));
  b.Conv(256, 3, 1, 1);
  RooflineReport report =
      AnalyzeRoofline(b.Build(), GpuByName("A100"), 256);
  ASSERT_FALSE(report.layers.empty());
  // The winograd gemm dominates; aggregate intensity exceeds the ridge.
  EXPECT_FALSE(report.layers[0].memory_bound);
}

TEST(RooflineTest, AttainablePerformanceIsCapped) {
  const GpuSpec& a100 = GpuByName("A100");
  RooflineReport report =
      AnalyzeRoofline(zoo::BuildByName("resnet50"), a100, 256);
  for (const LayerRoofline& layer : report.layers) {
    EXPECT_LE(layer.attainable_gflops, a100.PeakFlops() / 1e9 + 1e-6);
    EXPECT_GT(layer.attainable_gflops, 0.0);
    if (layer.memory_bound) {
      EXPECT_NEAR(layer.attainable_gflops,
                  layer.operational_intensity *
                      a100.BandwidthBytesPerSec() / 1e9,
                  1e-6 * layer.attainable_gflops);
    }
  }
}

TEST(RooflineTest, LowerBandwidthMakesMoreLayersComputeBound) {
  dnn::Network net = zoo::BuildByName("resnet50");
  const GpuSpec& titan = GpuByName("TITAN RTX");
  RooflineReport stock = AnalyzeRoofline(net, titan, 256);
  RooflineReport throttled =
      AnalyzeRoofline(net, titan.WithBandwidth(100), 256);
  // Lower bandwidth raises the ridge point: more layers memory-bound.
  EXPECT_GE(throttled.memory_bound_layers, stock.memory_bound_layers);
  EXPECT_GT(throttled.ridge_intensity, stock.ridge_intensity);
}

TEST(RooflineTest, MemoryBoundShareIsAFraction) {
  RooflineReport report = AnalyzeRoofline(
      zoo::BuildByName("mobilenet_v2"), GpuByName("A40"), 128);
  EXPECT_GE(report.memory_bound_time_share, 0.0);
  EXPECT_LE(report.memory_bound_time_share, 1.0);
  // MobileNet's depthwise/pointwise mix is memory-heavy (the paper's
  // "most of the evaluated workloads are actually memory intensive").
  EXPECT_GT(report.memory_bound_time_share, 0.3);
}

TEST(RooflineDeathTest, NonPositiveBatchAborts) {
  EXPECT_DEATH(
      AnalyzeRoofline(zoo::BuildByName("alexnet"), GpuByName("A100"), 0),
      "check failed");
}

}  // namespace
}  // namespace gpuperf::gpuexec
