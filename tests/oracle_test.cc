#include "gpuexec/oracle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "dnn/builder.h"
#include "gpuexec/lowering.h"

namespace gpuperf::gpuexec {
namespace {

using dnn::Chw;

KernelLaunch MakeLaunch(KernelFamily family, std::int64_t flops,
                        std::int64_t bytes, std::int64_t blocks) {
  KernelLaunch launch;
  launch.name = "test_kernel";
  launch.family = family;
  launch.flops = flops;
  launch.bytes_in = bytes / 2;
  launch.bytes_out = bytes - bytes / 2;
  launch.blocks = blocks;
  launch.batch = 1;
  launch.layer_flops = flops;
  launch.input_elems = bytes / 8;
  launch.output_elems = bytes / 8;
  return launch;
}

TEST(OracleTest, ExpectedTimeIsDeterministic) {
  HardwareOracle oracle;
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 1'000'000'000, 10'000'000, 5000);
  const GpuSpec& a100 = GpuByName("A100");
  EXPECT_DOUBLE_EQ(oracle.ExpectedKernelTimeUs(launch, a100),
                   oracle.ExpectedKernelTimeUs(launch, a100));
}

TEST(OracleTest, TimeIncludesFixedOverhead) {
  HardwareOracle oracle;
  KernelLaunch tiny = MakeLaunch(KernelFamily::kElementwise, 100, 800, 1);
  EXPECT_GE(oracle.ExpectedKernelTimeUs(tiny, GpuByName("A100")),
            oracle.config().kernel_overhead_us);
}

TEST(OracleTest, MoreWorkTakesLonger) {
  HardwareOracle oracle;
  const GpuSpec& gpu = GpuByName("V100");
  KernelLaunch small =
      MakeLaunch(KernelFamily::kGemm, 1e9, 1e7, 10000);
  KernelLaunch large = small;
  large.flops *= 8;
  large.bytes_in *= 8;
  large.bytes_out *= 8;
  large.blocks *= 8;
  EXPECT_GT(oracle.ExpectedKernelTimeUs(large, gpu),
            oracle.ExpectedKernelTimeUs(small, gpu));
}

TEST(OracleTest, MemoryBoundKernelScalesWithBandwidth) {
  HardwareOracle oracle;
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kElementwise, 1'000'000, 400'000'000, 100000);
  const GpuSpec& titan = GpuByName("TITAN RTX");
  const double at_stock = oracle.ExpectedKernelTimeUs(launch, titan);
  const double at_double =
      oracle.ExpectedKernelTimeUs(launch, titan.WithBandwidth(1344));
  // Doubling bandwidth should nearly halve a memory-bound kernel's time.
  EXPECT_NEAR(at_stock / at_double, 2.0, 0.15);
}

TEST(OracleTest, ComputeBoundKernelInsensitiveToSmallBwChange) {
  HardwareOracle oracle;
  // Very high arithmetic intensity.
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 4e12, 1e7, 100000);
  const GpuSpec& titan = GpuByName("TITAN RTX");
  const double at_stock = oracle.ExpectedKernelTimeUs(launch, titan);
  const double at_higher =
      oracle.ExpectedKernelTimeUs(launch, titan.WithBandwidth(742));
  // +10% bandwidth moves a compute-bound kernel far less than 10%.
  EXPECT_LT(at_stock / at_higher, 1.08);
}

TEST(OracleTest, OccupancyPenalizesTinyGrids) {
  HardwareOracle oracle;
  const GpuSpec& a100 = GpuByName("A100");
  KernelLaunch wide =
      MakeLaunch(KernelFamily::kElementwise, 1e6, 8e6, 100000);
  KernelLaunch narrow = wide;
  narrow.blocks = 4;  // same work crammed into 4 blocks
  EXPECT_GT(oracle.ExpectedKernelTimeUs(narrow, a100),
            oracle.ExpectedKernelTimeUs(wide, a100));
}

TEST(OracleTest, MeasurementNoiseMatchesConfiguredSigma) {
  OracleConfig config;
  config.measurement_sigma = 0.05;
  HardwareOracle oracle(config);
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 1e10, 1e8, 10000);
  const GpuSpec& gpu = GpuByName("A40");
  const double expected = oracle.ExpectedKernelTimeUs(launch, gpu);
  Rng rng(123);
  std::vector<double> log_ratio;
  for (int i = 0; i < 20000; ++i) {
    log_ratio.push_back(
        std::log(oracle.MeasureKernelTimeUs(launch, gpu, &rng) / expected));
  }
  EXPECT_NEAR(Mean(log_ratio), 0.0, 0.003);
  EXPECT_NEAR(StdDev(log_ratio), 0.05, 0.005);
}

TEST(OracleTest, DifferentSeedsChangeQuirks) {
  OracleConfig a, b;
  b.seed = a.seed + 1;
  HardwareOracle oracle_a(a), oracle_b(b);
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kImplicitGemm, 1e10, 1e8, 10000);
  const GpuSpec& gpu = GpuByName("V100");
  EXPECT_NE(oracle_a.ExpectedKernelTimeUs(launch, gpu),
            oracle_b.ExpectedKernelTimeUs(launch, gpu));
}

// O3 foundation: doubling the batch doubles the expected time of a
// saturated kernel (same per-image quirk key).
class BatchScalingTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BatchScalingTest, TimeScalesWithBatchWhenSaturated) {
  const std::int64_t factor = GetParam();
  HardwareOracle oracle;
  const GpuSpec& gpu = GpuByName("A100");
  dnn::NetworkBuilder b("t", "Test", Chw(64, 56, 56));
  b.Conv(64, 3, 1, 1);
  dnn::Network net = b.Build();
  auto at_batch = [&](std::int64_t batch) {
    double total = 0;
    for (const KernelLaunch& launch :
         LowerLayer(net.layers()[0], batch)) {
      total += oracle.ExpectedKernelTimeUs(launch, gpu);
    }
    return total;
  };
  const double base = at_batch(64);
  const double scaled = at_batch(64 * factor);
  EXPECT_NEAR(scaled / base, static_cast<double>(factor),
              0.15 * static_cast<double>(factor));
}

INSTANTIATE_TEST_SUITE_P(Factors, BatchScalingTest,
                         ::testing::Values(2, 4, 8));

TEST(OracleTest, SustainedPeakCapsMarketingTflops) {
  // The A40's dual-issue 37.4 TFLOPS must not be reachable: a giant
  // compute-bound GEMM on A40 (696 GB/s) must run at a lower achieved
  // rate than on A100 despite the A40's higher theoretical peak.
  HardwareOracle oracle;
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 1e13, 1e8, 200000);
  const double on_a40 =
      oracle.ExpectedKernelTimeUs(launch, GpuByName("A40"));
  const double on_a100 =
      oracle.ExpectedKernelTimeUs(launch, GpuByName("A100"));
  EXPECT_GT(on_a40, on_a100);
}

TEST(OracleTest, ProfileTableCoversAllFamilies) {
  for (int f = 0; f <= static_cast<int>(KernelFamily::kGather); ++f) {
    const FamilyProfile& profile =
        ProfileFor(static_cast<KernelFamily>(f));
    EXPECT_GT(profile.compute_eff, 0.0);
    EXPECT_LE(profile.compute_eff, 1.0);
    EXPECT_GT(profile.memory_eff, 0.0);
    EXPECT_LE(profile.memory_eff, 1.0);
    EXPECT_GT(profile.blocks_per_sm, 0);
  }
}

TEST(OracleDeathTest, NullRngIsError) {
  HardwareOracle oracle;
  KernelLaunch launch = MakeLaunch(KernelFamily::kGemm, 1e9, 1e7, 100);
  EXPECT_DEATH(
      oracle.MeasureKernelTimeUs(launch, GpuByName("A100"), nullptr),
      "check failed");
}

TEST(DriftScheduleTest, EmptyScheduleIsIdentity) {
  DriftSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.resources(), 0u);
  DriftSchedule sized(3, std::vector<DriftEvent>{});
  EXPECT_TRUE(sized.empty());
  EXPECT_DOUBLE_EQ(sized.FactorAt(0, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(sized.FactorAt(2, 0), 1.0);
}

TEST(DriftScheduleTest, StepEventAppliesFromItsStart) {
  DriftSchedule schedule(
      2, {{/*resource=*/0, /*at_us=*/10.0, /*ramp_us=*/0, /*factor=*/1.2,
           DriftScope::kAll}});
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 9.999), 1.0);
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 10.0), 1.2);
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 1e9), 1.2);
  // The other resource is untouched.
  EXPECT_DOUBLE_EQ(schedule.FactorAt(1, 1e9), 1.0);
}

TEST(DriftScheduleTest, RampInterpolatesLinearly) {
  DriftSchedule schedule(
      1, {{0, /*at_us=*/100.0, /*ramp_us=*/100.0, /*factor=*/1.5,
           DriftScope::kAll}});
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 100.0), 1.0);   // ramp start
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 150.0), 1.25);  // halfway
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 200.0), 1.5);   // full effect
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 1e6), 1.5);
}

TEST(DriftScheduleTest, ScopedEventsDiluteByMemoryShare) {
  DriftSchedule memory(
      1, {{0, 0.0, 0.0, 1.4, DriftScope::kMemoryBound}});
  // A fully memory-bound workload feels the whole factor; a fully
  // compute-bound one feels none of it.
  EXPECT_DOUBLE_EQ(memory.FactorAt(0, 1.0, /*memory_share=*/1.0), 1.4);
  EXPECT_DOUBLE_EQ(memory.FactorAt(0, 1.0, /*memory_share=*/0.0), 1.0);
  EXPECT_DOUBLE_EQ(memory.FactorAt(0, 1.0, /*memory_share=*/0.5), 1.2);

  DriftSchedule compute(
      1, {{0, 0.0, 0.0, 1.4, DriftScope::kComputeBound}});
  EXPECT_DOUBLE_EQ(compute.FactorAt(0, 1.0, /*memory_share=*/1.0), 1.0);
  EXPECT_DOUBLE_EQ(compute.FactorAt(0, 1.0, /*memory_share=*/0.0), 1.4);
}

TEST(DriftScheduleTest, EventsComposeMultiplicatively) {
  DriftSchedule schedule(
      1, {{0, 0.0, 0.0, 1.2, DriftScope::kAll},
          {0, 10.0, 0.0, 1.5, DriftScope::kAll}});
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 5.0), 1.2);
  EXPECT_DOUBLE_EQ(schedule.FactorAt(0, 10.0), 1.2 * 1.5);
}

TEST(DriftScheduleTest, SeededGenerationIsBitIdentical) {
  DriftScheduleConfig config;
  config.rate_per_s = 2;
  config.seed = 42;
  const double horizon_us = 10e6;
  DriftSchedule a(3, horizon_us, config);
  DriftSchedule b(3, horizon_us, config);
  ASSERT_FALSE(a.empty());
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& ea = a.Events(r);
    const auto& eb = b.Events(r);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].at_us, eb[i].at_us);
      EXPECT_EQ(ea[i].factor, eb[i].factor);
      EXPECT_EQ(ea[i].scope, eb[i].scope);
    }
  }
}

TEST(DriftScheduleTest, GeneratedStreamsAreIndependentOfPoolSize) {
  DriftScheduleConfig config;
  config.rate_per_s = 2;
  config.seed = 7;
  DriftSchedule small(1, 10e6, config);
  DriftSchedule large(5, 10e6, config);
  const auto& a = small.Events(0);
  const auto& b = large.Events(0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_us, b[i].at_us);
    EXPECT_EQ(a[i].factor, b[i].factor);
  }
}

TEST(DriftScheduleDeathTest, ExplicitEventValidation) {
  // Out-of-range resource, non-positive factor, negative time: all
  // programmer errors.
  EXPECT_DEATH(DriftSchedule(1, {{/*resource=*/3, 0.0, 0.0, 1.1,
                                  DriftScope::kAll}}),
               "check failed");
  EXPECT_DEATH(DriftSchedule(1, {{0, 0.0, 0.0, 0.0, DriftScope::kAll}}),
               "check failed");
  EXPECT_DEATH(DriftSchedule(1, {{0, -1.0, 0.0, 1.1, DriftScope::kAll}}),
               "check failed");
}

}  // namespace
}  // namespace gpuperf::gpuexec
