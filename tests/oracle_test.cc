#include "gpuexec/oracle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "dnn/builder.h"
#include "gpuexec/lowering.h"

namespace gpuperf::gpuexec {
namespace {

using dnn::Chw;

KernelLaunch MakeLaunch(KernelFamily family, std::int64_t flops,
                        std::int64_t bytes, std::int64_t blocks) {
  KernelLaunch launch;
  launch.name = "test_kernel";
  launch.family = family;
  launch.flops = flops;
  launch.bytes_in = bytes / 2;
  launch.bytes_out = bytes - bytes / 2;
  launch.blocks = blocks;
  launch.batch = 1;
  launch.layer_flops = flops;
  launch.input_elems = bytes / 8;
  launch.output_elems = bytes / 8;
  return launch;
}

TEST(OracleTest, ExpectedTimeIsDeterministic) {
  HardwareOracle oracle;
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 1'000'000'000, 10'000'000, 5000);
  const GpuSpec& a100 = GpuByName("A100");
  EXPECT_DOUBLE_EQ(oracle.ExpectedKernelTimeUs(launch, a100),
                   oracle.ExpectedKernelTimeUs(launch, a100));
}

TEST(OracleTest, TimeIncludesFixedOverhead) {
  HardwareOracle oracle;
  KernelLaunch tiny = MakeLaunch(KernelFamily::kElementwise, 100, 800, 1);
  EXPECT_GE(oracle.ExpectedKernelTimeUs(tiny, GpuByName("A100")),
            oracle.config().kernel_overhead_us);
}

TEST(OracleTest, MoreWorkTakesLonger) {
  HardwareOracle oracle;
  const GpuSpec& gpu = GpuByName("V100");
  KernelLaunch small =
      MakeLaunch(KernelFamily::kGemm, 1e9, 1e7, 10000);
  KernelLaunch large = small;
  large.flops *= 8;
  large.bytes_in *= 8;
  large.bytes_out *= 8;
  large.blocks *= 8;
  EXPECT_GT(oracle.ExpectedKernelTimeUs(large, gpu),
            oracle.ExpectedKernelTimeUs(small, gpu));
}

TEST(OracleTest, MemoryBoundKernelScalesWithBandwidth) {
  HardwareOracle oracle;
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kElementwise, 1'000'000, 400'000'000, 100000);
  const GpuSpec& titan = GpuByName("TITAN RTX");
  const double at_stock = oracle.ExpectedKernelTimeUs(launch, titan);
  const double at_double =
      oracle.ExpectedKernelTimeUs(launch, titan.WithBandwidth(1344));
  // Doubling bandwidth should nearly halve a memory-bound kernel's time.
  EXPECT_NEAR(at_stock / at_double, 2.0, 0.15);
}

TEST(OracleTest, ComputeBoundKernelInsensitiveToSmallBwChange) {
  HardwareOracle oracle;
  // Very high arithmetic intensity.
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 4e12, 1e7, 100000);
  const GpuSpec& titan = GpuByName("TITAN RTX");
  const double at_stock = oracle.ExpectedKernelTimeUs(launch, titan);
  const double at_higher =
      oracle.ExpectedKernelTimeUs(launch, titan.WithBandwidth(742));
  // +10% bandwidth moves a compute-bound kernel far less than 10%.
  EXPECT_LT(at_stock / at_higher, 1.08);
}

TEST(OracleTest, OccupancyPenalizesTinyGrids) {
  HardwareOracle oracle;
  const GpuSpec& a100 = GpuByName("A100");
  KernelLaunch wide =
      MakeLaunch(KernelFamily::kElementwise, 1e6, 8e6, 100000);
  KernelLaunch narrow = wide;
  narrow.blocks = 4;  // same work crammed into 4 blocks
  EXPECT_GT(oracle.ExpectedKernelTimeUs(narrow, a100),
            oracle.ExpectedKernelTimeUs(wide, a100));
}

TEST(OracleTest, MeasurementNoiseMatchesConfiguredSigma) {
  OracleConfig config;
  config.measurement_sigma = 0.05;
  HardwareOracle oracle(config);
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 1e10, 1e8, 10000);
  const GpuSpec& gpu = GpuByName("A40");
  const double expected = oracle.ExpectedKernelTimeUs(launch, gpu);
  Rng rng(123);
  std::vector<double> log_ratio;
  for (int i = 0; i < 20000; ++i) {
    log_ratio.push_back(
        std::log(oracle.MeasureKernelTimeUs(launch, gpu, &rng) / expected));
  }
  EXPECT_NEAR(Mean(log_ratio), 0.0, 0.003);
  EXPECT_NEAR(StdDev(log_ratio), 0.05, 0.005);
}

TEST(OracleTest, DifferentSeedsChangeQuirks) {
  OracleConfig a, b;
  b.seed = a.seed + 1;
  HardwareOracle oracle_a(a), oracle_b(b);
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kImplicitGemm, 1e10, 1e8, 10000);
  const GpuSpec& gpu = GpuByName("V100");
  EXPECT_NE(oracle_a.ExpectedKernelTimeUs(launch, gpu),
            oracle_b.ExpectedKernelTimeUs(launch, gpu));
}

// O3 foundation: doubling the batch doubles the expected time of a
// saturated kernel (same per-image quirk key).
class BatchScalingTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BatchScalingTest, TimeScalesWithBatchWhenSaturated) {
  const std::int64_t factor = GetParam();
  HardwareOracle oracle;
  const GpuSpec& gpu = GpuByName("A100");
  dnn::NetworkBuilder b("t", "Test", Chw(64, 56, 56));
  b.Conv(64, 3, 1, 1);
  dnn::Network net = b.Build();
  auto at_batch = [&](std::int64_t batch) {
    double total = 0;
    for (const KernelLaunch& launch :
         LowerLayer(net.layers()[0], batch)) {
      total += oracle.ExpectedKernelTimeUs(launch, gpu);
    }
    return total;
  };
  const double base = at_batch(64);
  const double scaled = at_batch(64 * factor);
  EXPECT_NEAR(scaled / base, static_cast<double>(factor),
              0.15 * static_cast<double>(factor));
}

INSTANTIATE_TEST_SUITE_P(Factors, BatchScalingTest,
                         ::testing::Values(2, 4, 8));

TEST(OracleTest, SustainedPeakCapsMarketingTflops) {
  // The A40's dual-issue 37.4 TFLOPS must not be reachable: a giant
  // compute-bound GEMM on A40 (696 GB/s) must run at a lower achieved
  // rate than on A100 despite the A40's higher theoretical peak.
  HardwareOracle oracle;
  KernelLaunch launch =
      MakeLaunch(KernelFamily::kGemm, 1e13, 1e8, 200000);
  const double on_a40 =
      oracle.ExpectedKernelTimeUs(launch, GpuByName("A40"));
  const double on_a100 =
      oracle.ExpectedKernelTimeUs(launch, GpuByName("A100"));
  EXPECT_GT(on_a40, on_a100);
}

TEST(OracleTest, ProfileTableCoversAllFamilies) {
  for (int f = 0; f <= static_cast<int>(KernelFamily::kGather); ++f) {
    const FamilyProfile& profile =
        ProfileFor(static_cast<KernelFamily>(f));
    EXPECT_GT(profile.compute_eff, 0.0);
    EXPECT_LE(profile.compute_eff, 1.0);
    EXPECT_GT(profile.memory_eff, 0.0);
    EXPECT_LE(profile.memory_eff, 1.0);
    EXPECT_GT(profile.blocks_per_sm, 0);
  }
}

TEST(OracleDeathTest, NullRngIsError) {
  HardwareOracle oracle;
  KernelLaunch launch = MakeLaunch(KernelFamily::kGemm, 1e9, 1e7, 100);
  EXPECT_DEATH(
      oracle.MeasureKernelTimeUs(launch, GpuByName("A100"), nullptr),
      "check failed");
}

}  // namespace
}  // namespace gpuperf::gpuexec
