#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

TEST(ThreadPoolTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultJobs(), 1);
  ThreadPool pool;
  EXPECT_GE(pool.jobs(), 1);
}

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);  // gpuperf-lint: allow(raw-counter)
  pool.ParallelFor(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, JobsOneDegeneratesToSerial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  // With one job everything runs on the calling thread in index order.
  std::vector<std::size_t> order;
  pool.ParallelFor(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [](std::size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionMessageSurvives) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(8, [](std::size_t) {
      throw std::runtime_error("campaign failed");
    });
    FAIL() << "ParallelFor should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "campaign failed");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};  // gpuperf-lint: allow(raw-counter)
  pool.ParallelFor(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> counts(kOuter);  // gpuperf-lint: allow(raw-counter)
  pool.ParallelFor(kOuter, [&](std::size_t i) {
    // The nested loop shares the same pool; the outer worker itself
    // participates, so this completes even with every worker busy.
    pool.ParallelFor(kInner,
                     [&](std::size_t) { counts[i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(counts[i].load(), static_cast<int>(kInner));
  }
}

TEST(ThreadPoolTest, ManyMoreIterationsThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};  // gpuperf-lint: allow(raw-counter)
  constexpr long kN = 10000;
  pool.ParallelFor(kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace gpuperf
