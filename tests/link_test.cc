#include "simsys/link.h"

#include <gtest/gtest.h>

namespace gpuperf::simsys {
namespace {

TEST(LinkTest, SingleTransferTiming) {
  EventQueue queue;
  NetworkLink link(&queue, /*bandwidth_gbps=*/10, /*latency_us=*/5);
  double done_at = -1;
  // 1 MB at 10 GB/s = 100 us occupancy, plus 5 us latency.
  link.Transfer(1'000'000, [&] { done_at = queue.NowUs(); });
  queue.Run();
  EXPECT_NEAR(done_at, 105.0, 1e-9);
}

TEST(LinkTest, TransfersSerializeOnBandwidth) {
  EventQueue queue;
  NetworkLink link(&queue, 10, 0);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    link.Transfer(1'000'000, [&] { completions.push_back(queue.NowUs()); });
  }
  queue.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 100.0, 1e-9);
  EXPECT_NEAR(completions[1], 200.0, 1e-9);
  EXPECT_NEAR(completions[2], 300.0, 1e-9);
}

TEST(LinkTest, LatencyPipelinesAcrossTransfers) {
  EventQueue queue;
  NetworkLink link(&queue, 10, 50);
  std::vector<double> completions;
  link.Transfer(1'000'000, [&] { completions.push_back(queue.NowUs()); });
  link.Transfer(1'000'000, [&] { completions.push_back(queue.NowUs()); });
  queue.Run();
  // Occupancy serializes (100 us each) but latency overlaps.
  EXPECT_NEAR(completions[0], 150.0, 1e-9);
  EXPECT_NEAR(completions[1], 250.0, 1e-9);
}

TEST(LinkTest, StatisticsAccumulate) {
  EventQueue queue;
  NetworkLink link(&queue, 10, 0);
  link.Transfer(2'000'000, [] {});
  link.Transfer(3'000'000, [] {});
  queue.Run();
  EXPECT_EQ(link.transferred_bytes(), 5'000'000);
  EXPECT_NEAR(link.busy_us(), 500.0, 1e-9);
}

TEST(LinkTest, ZeroByteTransferCompletesAfterLatency) {
  EventQueue queue;
  NetworkLink link(&queue, 10, 7);
  double done_at = -1;
  link.Transfer(0, [&] { done_at = queue.NowUs(); });
  queue.Run();
  EXPECT_NEAR(done_at, 7.0, 1e-9);
}

TEST(LinkTest, FasterLinkFinishesSooner) {
  EventQueue q1, q2;
  NetworkLink slow(&q1, 16, 2), fast(&q2, 256, 2);
  double slow_done = 0, fast_done = 0;
  slow.Transfer(100'000'000, [&] { slow_done = q1.NowUs(); });
  fast.Transfer(100'000'000, [&] { fast_done = q2.NowUs(); });
  q1.Run();
  q2.Run();
  EXPECT_NEAR(slow_done / fast_done, 16.0, 0.5);
}

TEST(LinkDeathTest, InvalidConfigurationAborts) {
  EventQueue queue;
  EXPECT_DEATH(NetworkLink(&queue, 0, 1), "check failed");
  EXPECT_DEATH(NetworkLink(&queue, 10, -1), "check failed");
  EXPECT_DEATH(NetworkLink(nullptr, 10, 1), "check failed");
}

TEST(LinkDeathTest, NegativeBytesAborts) {
  EventQueue queue;
  NetworkLink link(&queue, 10, 1);
  EXPECT_DEATH(link.Transfer(-5, [] {}), "check failed");
}

}  // namespace
}  // namespace gpuperf::simsys
