// End-to-end regression tests for the gpuperf CLI's error-handling
// contract: every invalid flag or flag combination exits 1 with a
// one-line actionable message (never an abort/signal), --help exits 0
// and lists the flags, and the bundle-check / serve-sim happy paths
// work against a real saved bundle. Each case shells out to the actual
// binary (GPUPERF_CLI_PATH, injected by CMake), so argument parsing,
// exit codes, and stream routing are tested for real.

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_support.h"

namespace gpuperf {
namespace {

struct CliResult {
  int exit_code = -1;   // -1 when the process died on a signal
  std::string output;   // stdout + stderr, interleaved
};

/** Runs `gpuperf <args>` and captures exit code + combined output. */
CliResult RunCli(const std::string& args) {
  const std::string command =
      std::string("\"") + GPUPERF_CLI_PATH + "\" " + args + " 2>&1";
  CliResult result;
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int CountLines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

TEST(CliTest, UnknownCommandExitsOneWithUsage) {
  const CliResult r = RunCli("frobnicate");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"),
            std::string::npos)
      << r.output;
}

TEST(CliTest, ServeSimHelpListsTheOverloadFlags) {
  const CliResult r = RunCli("serve-sim --help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag :
       {"--queue-cap", "--slo-ms", "--breaker-failures",
        "--breaker-cooldown-ms", "--breaker-probes", "--model", "--rate"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "help is missing " << flag << ":\n" << r.output;
  }
}

TEST(CliTest, BundleCheckHelpListsItsFlags) {
  const CliResult r = RunCli("bundle-check --help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag : {"--candidate", "--baseline", "--networks",
                           "--gpus", "--batch", "--tolerance"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "help is missing " << flag << ":\n" << r.output;
  }
}

// Every row: an invalid invocation that must exit exactly 1 (a
// recoverable user error — never 0, never a signal/abort) and print a
// message containing the expected substring on its first line.
struct BadInvocation {
  const char* args;
  const char* expected;
};

TEST(CliTest, InvalidServeSimFlagsExitOneWithOneLineErrors) {
  const std::vector<BadInvocation> cases = {
      {"serve-sim --bogus 1", "unknown flag --bogus"},
      {"serve-sim --rate 0", "--rate must be a positive number"},
      {"serve-sim --rate banana", "--rate must be a positive number"},
      {"serve-sim --duration -3", "--duration must be a positive number"},
      {"serve-sim --seed -1", "--seed must be a non-negative integer"},
      {"serve-sim --mtbf nan", "--mtbf must be a non-negative number"},
      {"serve-sim --mttr 0", "--mttr must be a positive number"},
      {"serve-sim --retries -1", "--retries must be a non-negative integer"},
      {"serve-sim --queue-cap -2",
       "--queue-cap must be a non-negative integer"},
      {"serve-sim --queue-cap 1.5",
       "--queue-cap must be a non-negative integer"},
      {"serve-sim --slo-ms -1", "--slo-ms must be a non-negative number"},
      {"serve-sim --slo-ms inf", "--slo-ms must be a non-negative number"},
      {"serve-sim --breaker-failures -1",
       "--breaker-failures must be a non-negative integer"},
      {"serve-sim --breaker-cooldown-ms -5",
       "--breaker-cooldown-ms must be a non-negative number"},
      {"serve-sim --breaker-probes 0",
       "--breaker-probes must be a positive integer"},
      {"serve-sim --policy vibes", "--policy must be"},
      {"serve-sim --pool NoSuchGpu", "unknown GPU 'NoSuchGpu'"},
      {"serve-sim --networks nosuchnet", "nosuchnet"},
  };
  for (const BadInvocation& c : cases) {
    SCOPED_TRACE(c.args);
    const CliResult r = RunCli(c.args);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    ASSERT_FALSE(r.output.empty());
    const std::string first_line =
        r.output.substr(0, r.output.find('\n'));
    EXPECT_NE(first_line.find(c.expected), std::string::npos)
        << "first line: " << first_line;
  }
}

TEST(CliTest, InvalidDriftFlagsExitOneWithOneLineErrors) {
  // Drift values are validated even when no event was requested (no
  // --drift-gpu / --drift-rate): a malformed flag is a user mistake
  // whether or not it would have been used.
  const std::vector<BadInvocation> cases = {
      {"serve-sim --drift-factor abc",
       "--drift-factor must be a positive number"},
      {"serve-sim --drift-factor 0",
       "--drift-factor must be a positive number"},
      {"serve-sim --drift-at -1",
       "--drift-at must be a non-negative number of seconds"},
      {"serve-sim --drift-ramp nan",
       "--drift-ramp must be a non-negative number of seconds"},
      {"serve-sim --drift-rate -2",
       "--drift-rate must be a non-negative number"},
      {"serve-sim --drift-sigma abc",
       "--drift-sigma must be a positive number"},
      {"serve-sim --drift-seed -1",
       "--drift-seed must be a non-negative integer"},
      {"serve-sim --drift-scope bogus",
       "--drift-scope must be all, memory, or compute"},
      {"serve-sim --drift-gpu A40 --drift-rate 2",
       "--drift-gpu and --drift-rate are mutually exclusive"},
      {"serve-sim --drift-gpu H100X --pool A40,V100",
       "--drift-gpu 'H100X' is not in the pool"},
      {"drift-report", "--model DIR is required"},
      {"drift-report --model /nonexistent --drift-factor abc",
       "--drift-factor must be a positive number"},
      {"drift-report --model /nonexistent --drift-gpu H100X",
       "--drift-gpu 'H100X' is not in the pool"},
  };
  for (const BadInvocation& c : cases) {
    SCOPED_TRACE(c.args);
    const CliResult r = RunCli(c.args);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    ASSERT_FALSE(r.output.empty());
    const std::string first_line =
        r.output.substr(0, r.output.find('\n'));
    EXPECT_NE(first_line.find(c.expected), std::string::npos)
        << "first line: " << first_line;
  }
}

TEST(CliTest, InvalidBundleCheckFlagsExitOneWithOneLineErrors) {
  const std::vector<BadInvocation> cases = {
      {"bundle-check", "--candidate DIR is required"},
      {"bundle-check --bogus 1", "unknown flag --bogus"},
      {"bundle-check --candidate /nonexistent/dir", "not a model bundle"},
      {"bundle-check --candidate x --batch 0",
       "--batch must be a positive integer"},
      {"bundle-check --candidate x --tolerance -0.5",
       "--tolerance must be a non-negative number"},
      {"bundle-check --candidate x --networks nosuchnet", "nosuchnet"},
  };
  for (const BadInvocation& c : cases) {
    SCOPED_TRACE(c.args);
    const CliResult r = RunCli(c.args);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    ASSERT_FALSE(r.output.empty());
    const std::string first_line =
        r.output.substr(0, r.output.find('\n'));
    EXPECT_NE(first_line.find(c.expected), std::string::npos)
        << "first line: " << first_line;
  }
}

TEST(CliTest, BundleCheckPromotesAHealthyBundle) {
  const std::string& bundle = testing::GoldenKwBundleDir();
  const CliResult r =
      RunCli("bundle-check --candidate \"" + bundle +
             "\" --networks resnet18 --gpus A40");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("PROMOTED"), std::string::npos) << r.output;
}

TEST(CliTest, BundleCheckRejectsACorruptBundleWithLocatedError) {
  const std::string dir = testing::ScratchKwBundleDir("cli_corrupt");
  // Tamper one byte without re-manifesting: the checksum gate must
  // reject, and the one-line error must name the offending file.
  {
    const std::string path = dir + "/kernel_models.csv";
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  const CliResult r = RunCli("bundle-check --candidate \"" + dir +
                             "\" --networks resnet18 --gpus A40");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
  EXPECT_NE(r.output.find("kernel_models.csv"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("rejected"), std::string::npos) << r.output;
}

TEST(CliTest, ServeSimRunsWithAllOverloadFeaturesEnabled) {
  const CliResult r = RunCli(
      "serve-sim --duration 2 --rate 120 --queue-cap 4 --slo-ms 80 "
      "--mtbf 5 --breaker-failures 2 --networks resnet18 --policy "
      "least-outstanding");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* column : {"shed", "miss", "SLO", "trips"}) {
    EXPECT_NE(r.output.find(column), std::string::npos)
        << "missing column " << column << ":\n" << r.output;
  }
}

TEST(CliTest, ServeSimWritesMetricsAndTraceFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics = dir + "/cli_serve_metrics.csv";
  const std::string prom = dir + "/cli_serve_metrics.prom";
  const std::string trace = dir + "/cli_serve_trace.json";
  const CliResult r = RunCli(
      "serve-sim --duration 1 --rate 80 --networks resnet18 "
      "--metrics-out \"" + metrics + "\" --trace-out \"" + trace + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;

  const std::string csv = ReadFileOrEmpty(metrics);
  EXPECT_EQ(csv.rfind("metric,type,field,value\n", 0), 0u) << csv;
  EXPECT_NE(csv.find("gpuperf_serving_jobs_arrived,"), std::string::npos);
  EXPECT_NE(csv.find("gpuperf_serving_latency_ms,histogram,"),
            std::string::npos);

  const std::string json = ReadFileOrEmpty(trace);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[\n", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // A .prom extension switches the snapshot to Prometheus text.
  const CliResult r2 = RunCli(
      "serve-sim --duration 1 --rate 80 --networks resnet18 "
      "--metrics-out \"" + prom + "\"");
  EXPECT_EQ(r2.exit_code, 0) << r2.output;
  const std::string prom_text = ReadFileOrEmpty(prom);
  EXPECT_EQ(prom_text.rfind("# HELP ", 0), 0u);
  EXPECT_NE(prom_text.find("# TYPE "), std::string::npos);

  std::remove(metrics.c_str());
  std::remove(prom.c_str());
  std::remove(trace.c_str());
}

TEST(CliTest, ServeSimRunsWithResilienceAndChaosFlagsEnabled) {
  const CliResult r = RunCli(
      "serve-sim --duration 2 --rate 60 --networks resnet18 --policy "
      "least-outstanding --mtbf 1 --mttr 0.5 --breaker-failures 2 "
      "--hedge-factor 1.5 --retry-budget 0.5 --retry-burst 5 "
      "--adaptive-detect 0.95 --chaos-gray-mtbf 1 --chaos-gray-mttr 1 "
      "--chaos-gray-factor 3 --chaos-host-size 2 --chaos-host-mtbf 2 "
      "--chaos-host-mttr 0.3 --chaos-host-factor 0 --chaos-flap-mtbf 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("least-outstanding"), std::string::npos)
      << r.output;
}
TEST(CliTest, ServeSimHelpListsTheResilienceAndChaosFlags) {
  const CliResult r = RunCli("serve-sim --help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag :
       {"--hedge-factor", "--retry-budget", "--retry-burst",
        "--adaptive-detect", "--chaos-gray-mtbf", "--chaos-flap-count",
        "--chaos-host-size", "--chaos-rack-factor"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "help is missing " << flag << ":\n" << r.output;
  }
}

TEST(CliTest, InvalidResilienceAndChaosFlagsExitOneWithOneLineErrors) {
  const std::vector<BadInvocation> cases = {
      {"serve-sim --hedge-factor -1",
       "--hedge-factor must be a non-negative number"},
      {"serve-sim --retry-budget nan",
       "--retry-budget must be a non-negative number"},
      {"serve-sim --retry-burst 0",
       "--retry-burst must be a positive number"},
      {"serve-sim --adaptive-detect 1.5",
       "--adaptive-detect must be a quantile in [0, 1]"},
      {"serve-sim --chaos-gray-mtbf -1",
       "--chaos-gray-mtbf must be a non-negative number"},
      {"serve-sim --chaos-flap-count 0",
       "--chaos-flap-count must be an integer >= 1"},
      {"serve-sim --chaos-flap-period 0",
       "--chaos-flap-period must be a positive number"},
      {"serve-sim --chaos-host-size -1",
       "--chaos-host-size must be an integer >= 0"},
      // Deep semantic checks surface from the simulator's input
      // validation as one-line errors, never aborts.
      {"serve-sim --duration 1 --chaos-gray-mtbf 1 --chaos-gray-factor "
       "0.5", "chaos.gray_factor = 0.5 must be > 1"},
      {"chaos --bogus 1", "unknown flag --bogus"},
      {"chaos --scenarios bogus",
       "--scenarios must be a comma-separated subset"},
      {"chaos --min-avail 1.5", "--min-avail must be in [0, 1]"},
      {"chaos --policy vibes", "--policy must be"},
      {"chaos --pool NoSuchGpu", "unknown GPU 'NoSuchGpu'"},
      {"chaos --rate 0", "--rate must be a positive number"},
      {"chaos --runs 0", "--runs must be an integer >= 1"},
  };
  for (const BadInvocation& c : cases) {
    SCOPED_TRACE(c.args);
    const CliResult r = RunCli(c.args);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    ASSERT_FALSE(r.output.empty());
    const std::string first_line =
        r.output.substr(0, r.output.find('\n'));
    EXPECT_NE(first_line.find(c.expected), std::string::npos)
        << "first line: " << first_line;
  }
}

TEST(CliTest, ChaosHelpListsItsFlags) {
  const CliResult r = RunCli("chaos --help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag :
       {"--scenarios", "--policy", "--min-avail", "--hedge-factor",
        "--retry-budget", "--adaptive-detect", "--breaker-failures",
        "--metrics-out", "--trace-out"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "help is missing " << flag << ":\n" << r.output;
  }
}

TEST(CliTest, ChaosSweepHoldsItsInvariantsAndPrintsTheTable) {
  const CliResult r = RunCli(
      "chaos --duration 3 --rate 40 --networks resnet18 "
      "--policy least-outstanding");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* token : {"scenario", "outage", "gray", "domain", "flap",
                            "suppr", "hedge", "open", "check", "OK",
                            "all invariants held"}) {
    EXPECT_NE(r.output.find(token), std::string::npos)
        << "missing " << token << ":\n" << r.output;
  }
  EXPECT_EQ(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(CliTest, ChaosInvariantViolationExitsOneWithLocatedError) {
  // An impossible availability floor forces a per-cell violation: the
  // table still prints (with FAIL in the check column) and the process
  // exits 1 with a one-line located error.
  const CliResult r = RunCli(
      "chaos --duration 2 --rate 40 --networks resnet18 "
      "--scenarios outage --policy least-outstanding --min-avail 1");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("chaos invariant violated: scenario=outage "
                          "policy=least-outstanding seed=1:"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("below the --min-avail floor"), std::string::npos)
      << r.output;
}

TEST(CliTest, ChaosTableIsBitIdenticalAcrossJobCounts) {
  const std::string args =
      "chaos --duration 2 --rate 40 --networks resnet18 "
      "--scenarios gray,flap --policy least-outstanding --runs 2";
  const CliResult serial = RunCli(args + " --jobs 1");
  const CliResult parallel = RunCli(args + " --jobs 5");
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.output;
  EXPECT_EQ(serial.output, parallel.output);
}

TEST(CliTest, UnwritableMetricsOrTracePathExitsOneWithOneLineError) {
  const CliResult metrics = RunCli(
      "serve-sim --duration 1 --rate 80 --networks resnet18 "
      "--metrics-out /nonexistent-gpuperf-dir/m.csv");
  EXPECT_EQ(metrics.exit_code, 1);
  EXPECT_NE(metrics.output.find("gpuperf: cannot open metrics file: "
                                "/nonexistent-gpuperf-dir/m.csv\n"),
            std::string::npos)
      << metrics.output;

  const CliResult trace = RunCli(
      "serve-sim --duration 1 --rate 80 --networks resnet18 "
      "--trace-out /nonexistent-gpuperf-dir/t.json");
  EXPECT_EQ(trace.exit_code, 1);
  EXPECT_NE(trace.output.find("cannot open trace file"), std::string::npos)
      << trace.output;
}

}  // namespace
}  // namespace gpuperf
