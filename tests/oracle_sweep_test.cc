// Property sweep of the hardware oracle over every (GPU, kernel family)
// pair: timing invariants that must hold regardless of the quirk draws.

#include <cmath>

#include <gtest/gtest.h>

#include "gpuexec/oracle.h"

namespace gpuperf::gpuexec {
namespace {

constexpr KernelFamily kFamilies[] = {
    KernelFamily::kGemm,        KernelFamily::kImplicitGemm,
    KernelFamily::kWinogradGemm, KernelFamily::kDepthwiseConv,
    KernelFamily::kElementwise, KernelFamily::kBatchNorm,
    KernelFamily::kPooling,     KernelFamily::kCopy,
};

struct SweepCase {
  std::string gpu;
  KernelFamily family;
};

std::vector<SweepCase> Sweep() {
  std::vector<SweepCase> cases;
  for (const GpuSpec& gpu : AllGpus()) {
    for (KernelFamily family : kFamilies) {
      cases.push_back({gpu.name, family});
    }
  }
  return cases;
}

class OracleSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  KernelLaunch Launch(std::int64_t scale) const {
    KernelLaunch launch;
    launch.name = "sweep_kernel";
    launch.family = GetParam().family;
    launch.flops = 1'000'000 * scale;
    launch.bytes_in = 400'000 * scale;
    launch.bytes_out = 400'000 * scale;
    launch.blocks = 100 * scale;
    launch.batch = 1;
    launch.layer_flops = launch.flops;
    launch.input_elems = 100'000 * scale;
    launch.output_elems = 100'000 * scale;
    return launch;
  }
  const GpuSpec& Gpu() const { return GpuByName(GetParam().gpu); }
  HardwareOracle oracle_;
};

TEST_P(OracleSweepTest, TimePositiveAndFinite) {
  for (std::int64_t scale : {1, 10, 1000}) {
    const double t = oracle_.ExpectedKernelTimeUs(Launch(scale), Gpu());
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST_P(OracleSweepTest, WeaklyMonotoneInScale) {
  double previous = 0;
  for (std::int64_t scale : {1, 4, 16, 64, 256}) {
    const double t = oracle_.ExpectedKernelTimeUs(Launch(scale), Gpu());
    EXPECT_GE(t, previous * 0.999) << "scale " << scale;
    previous = t;
  }
}

TEST_P(OracleSweepTest, AsymptoticallyLinearInScale) {
  // Once the grid saturates, 4x work must take ~4x time (within the
  // occupancy sawtooth).
  const double at_256 = oracle_.ExpectedKernelTimeUs(Launch(256), Gpu());
  const double at_1024 = oracle_.ExpectedKernelTimeUs(Launch(1024), Gpu());
  EXPECT_NEAR(at_1024 / at_256, 4.0, 1.0);
}

TEST_P(OracleSweepTest, NoiseIsBoundedAroundExpectation) {
  const KernelLaunch launch = Launch(64);
  const double expected = oracle_.ExpectedKernelTimeUs(launch, Gpu());
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const double sample = oracle_.MeasureKernelTimeUs(launch, Gpu(), &rng);
    EXPECT_GT(sample, expected * 0.8);
    EXPECT_LT(sample, expected * 1.25);
  }
}

TEST_P(OracleSweepTest, SameLaunchSameTimeAcrossOracleInstances) {
  HardwareOracle other;  // same default config/seed
  const KernelLaunch launch = Launch(32);
  EXPECT_DOUBLE_EQ(oracle_.ExpectedKernelTimeUs(launch, Gpu()),
                   other.ExpectedKernelTimeUs(launch, Gpu()));
}

INSTANTIATE_TEST_SUITE_P(
    AllGpusAllFamilies, OracleSweepTest, ::testing::ValuesIn(Sweep()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      std::string name = param_info.param.gpu + "_" +
                         KernelFamilyName(param_info.param.family);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gpuperf::gpuexec
