// Property sweep over the convolution configuration space: for every
// (channels, kernel, stride, resolution) combination the lowering must
// produce a consistent, well-formed kernel pipeline.

#include <gtest/gtest.h>

#include "dnn/builder.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"

namespace gpuperf::gpuexec {
namespace {

using dnn::Chw;
using dnn::NetworkBuilder;

struct ConvCase {
  std::int64_t in_channels;
  std::int64_t out_channels;
  std::int64_t kernel;
  std::int64_t stride;
  std::int64_t resolution;
  std::int64_t groups;
};

std::vector<ConvCase> ConvGrid() {
  std::vector<ConvCase> cases;
  for (std::int64_t channels : {3, 8, 32, 64, 256}) {
    for (std::int64_t kernel : {1, 3, 5, 7}) {
      for (std::int64_t stride : {1, 2}) {
        for (std::int64_t resolution : {14, 56, 224}) {
          if (kernel > resolution) continue;
          cases.push_back({channels, std::max<std::int64_t>(channels, 16),
                           kernel, stride, resolution, 1});
        }
      }
    }
  }
  // Depthwise and grouped variants.
  cases.push_back({32, 32, 3, 1, 56, 32});
  cases.push_back({32, 32, 3, 2, 56, 32});
  cases.push_back({64, 128, 3, 1, 28, 4});
  cases.push_back({240, 60, 1, 1, 28, 3});  // ShuffleNet-style grouped 1x1
  return cases;
}

class ConvSweepTest : public ::testing::TestWithParam<ConvCase> {
 protected:
  dnn::Layer MakeLayer() const {
    const ConvCase& c = GetParam();
    NetworkBuilder b("t", "Test", Chw(c.in_channels, c.resolution,
                                      c.resolution));
    b.Conv(c.out_channels, c.kernel, c.stride, c.kernel / 2, c.groups);
    return b.Build().layers()[0];
  }
};

TEST_P(ConvSweepTest, PipelineIsWellFormed) {
  const dnn::Layer layer = MakeLayer();
  const std::vector<KernelLaunch> launches = LowerLayer(layer, 32);
  ASSERT_FALSE(launches.empty());
  ASSERT_LE(launches.size(), 3u);
  for (const KernelLaunch& launch : launches) {
    EXPECT_FALSE(launch.name.empty());
    EXPECT_GT(launch.bytes_in, 0) << launch.name;
    EXPECT_GT(launch.bytes_out, 0) << launch.name;
    EXPECT_GT(launch.blocks, 0) << launch.name;
    EXPECT_GE(launch.flops, 0) << launch.name;
  }
}

TEST_P(ConvSweepTest, ComputeKernelCarriesTheMacs) {
  // At least one kernel of the pipeline must perform work on the order
  // of the layer's theoretical MACs. Fast algorithms legitimately save
  // arithmetic: Winograd shaves 2.25x, FFT turns K*K spatial MACs into
  // per-frequency pointwise products (large-kernel savings).
  const dnn::Layer layer = MakeLayer();
  const std::int64_t macs = dnn::LayerFlops(layer, 32);
  std::int64_t max_flops = 0;
  bool fft = false;
  for (const KernelLaunch& launch : LowerLayer(layer, 32)) {
    max_flops = std::max(max_flops, launch.flops);
    if (launch.family == KernelFamily::kFftGemm) fft = true;
  }
  const double lower = fft ? 0.02 : 0.8;
  EXPECT_GE(max_flops, static_cast<std::int64_t>(lower * macs));
  EXPECT_LE(max_flops, 10 * macs + 1000);
}

TEST_P(ConvSweepTest, MultiKernelPipelinesAreInOpOutOrdered) {
  const std::vector<KernelLaunch> launches = LowerLayer(MakeLayer(), 32);
  if (launches.size() == 3) {
    EXPECT_EQ(launches[0].driver, CostDriver::kInput);
    EXPECT_EQ(launches[1].driver, CostDriver::kOperation);
    EXPECT_EQ(launches[2].driver, CostDriver::kOutput);
  }
  if (launches.size() == 2) {
    EXPECT_EQ(launches[0].driver, CostDriver::kInput);
    EXPECT_EQ(launches[1].driver, CostDriver::kOperation);
  }
}

TEST_P(ConvSweepTest, FeaturesScaleExactlyWithBatch) {
  const dnn::Layer layer = MakeLayer();
  const auto at_8 = LowerLayer(layer, 8);
  const auto at_64 = LowerLayer(layer, 64);
  ASSERT_EQ(at_8.size(), at_64.size());
  for (std::size_t i = 0; i < at_8.size(); ++i) {
    EXPECT_EQ(at_64[i].input_elems, 8 * at_8[i].input_elems);
    EXPECT_EQ(at_64[i].output_elems, 8 * at_8[i].output_elems);
    EXPECT_EQ(at_64[i].layer_flops, 8 * at_8[i].layer_flops);
  }
}

TEST_P(ConvSweepTest, AlgorithmSelectionIsDeterministic) {
  const dnn::Layer layer = MakeLayer();
  const ConvAlgorithm first =
      SelectConvAlgorithm(layer.conv(), layer.inputs[0], layer.output);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(SelectConvAlgorithm(layer.conv(), layer.inputs[0],
                                  layer.output),
              first);
  }
}

TEST_P(ConvSweepTest, DepthwiseAlwaysUsesDepthwiseKernels) {
  const dnn::Layer layer = MakeLayer();
  if (!layer.conv().IsDepthwise()) return;
  const auto launches = LowerLayer(layer, 16);
  ASSERT_EQ(launches.size(), 1u);
  EXPECT_EQ(launches[0].family, KernelFamily::kDepthwiseConv);
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvSweepTest,
                         ::testing::ValuesIn(ConvGrid()));

}  // namespace
}  // namespace gpuperf::gpuexec
