#include "models/e2e_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dnn/flops.h"
#include "gpuexec/profiler.h"
#include "test_support.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

class E2eModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  }
  E2eModel model_;
};

TEST_F(E2eModelTest, TrainsOneFitPerGpu) {
  for (const char* gpu : {"A100", "A40", "GTX 1080 Ti", "TITAN RTX"}) {
    const regression::LinearFit& fit = model_.FitFor(gpu);
    EXPECT_GT(fit.slope, 0.0) << gpu;
    EXPECT_GT(fit.n, 10u) << gpu;
    EXPECT_GT(fit.r2, 0.75) << gpu;  // O1: the trend is linear
  }
}

TEST_F(E2eModelTest, PredictionIsLinearInFlops) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const dnn::Network& net = campaign.networks()[0];
  const regression::LinearFit& fit = model_.FitFor("A100");
  const double flops = static_cast<double>(dnn::NetworkFlops(net, 512));
  EXPECT_NEAR(model_.PredictUs(net, a100, 512), fit.Predict(flops), 1e-6);
}

TEST_F(E2eModelTest, HeldOutErrorWithinPaperBallpark) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  gpuexec::Profiler profiler(campaign.oracle());
  std::vector<double> predicted, measured;
  for (const dnn::Network* net : campaign.TestNetworks()) {
    predicted.push_back(model_.PredictUs(*net, a100, 512));
    measured.push_back(profiler.MeasureE2eUs(*net, a100, 512));
  }
  const double mape = Mape(predicted, measured);
  // Paper: 35% on the full campaign; allow a wide band for the small one.
  EXPECT_LT(mape, 0.9);
  EXPECT_GT(mape, 0.05);  // E2E must NOT be suspiciously accurate
}

TEST_F(E2eModelTest, PredictionsAreNonNegative) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (const dnn::Network& net : campaign.networks()) {
    EXPECT_GE(model_.PredictUs(net, a100, 1), 0.0);
  }
}

TEST_F(E2eModelTest, FasterGpuGetsSteeperSlopeInverse) {
  // A100 processes FLOPs faster than GTX 1080 Ti: smaller us-per-FLOP.
  EXPECT_LT(model_.FitFor("A100").slope,
            model_.FitFor("GTX 1080 Ti").slope);
}

TEST(E2eModelDeathTest, UntrainedGpuIsFatal) {
  E2eModel model;
  model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  EXPECT_EXIT(model.FitFor("Quadro P620"), ::testing::ExitedWithCode(1),
              "not trained");
}

TEST(E2eModelBasics, NameIsStable) {
  EXPECT_EQ(E2eModel().Name(), "E2E");
}

}  // namespace
}  // namespace gpuperf::models
