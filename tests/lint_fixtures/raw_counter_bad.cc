// Fixture: raw-counter — ad-hoc std::atomic integral counters instead
// of obs::MetricsRegistry instruments. Expected violations: lines 8, 9,
// 10, 11; the bool, pointer, and function-pointer atomics are legal.
#include <atomic>
#include <cstdint>

struct Stats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<int> misses{0};
  std::atomic<unsigned long long> bytes{0};
  std::atomic<std::size_t> depth{0};
  std::atomic<bool> enabled{false};
  std::atomic<void*> slot{nullptr};
  std::atomic<void (*)(int)> hook{nullptr};
};
