// Fixture: unordered-order across the interface/implementation split —
// the container member is declared in split_decl_bad.h, iterated here.
// Expected violation: line 7.
#include <cstdio>
#include "split_decl_bad.h"
void Registry::Dump() const {
  for (const auto& [name, count] : entries_) {
    std::printf("%s,%d\n", name.c_str(), count);
  }
}
