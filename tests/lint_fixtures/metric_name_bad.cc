// Fixture: metric-name — names registered through a MetricsRegistry
// member call must match gpuperf_<area>_<name>. Expected violations:
// lines 9, 10, 11, 12, 13; conforming names, non-literal arguments,
// free functions, and the allow()ed registration are all legal.
#include <string>

struct Registry;
void Register(Registry& registry, Registry* remote, const std::string& d) {
  registry.counter("events");
  registry.gauge("Gpuperf_Queue_Depth");
  remote->histogram("gpuperf-serving-latency");
  registry.counter("gpuperf_jobs_");
  registry.gauge("gpuperf_");
  registry.counter("gpuperf_serving_jobs_completed");
  registry.gauge("gpuperf_obs_queue_depth");
  remote->histogram("gpuperf_serving_latency_ms");
  registry.counter(d);
  counter("free function, not a registry member call");
  registry.counter("deliberately bad");  // gpuperf-lint: allow(metric-name)
}
