// Fixture: raw-random — every nondeterminism source the rule knows.
// Expected violations: lines 7, 8, 10, 12.
#include <chrono>
#include <cstdlib>
#include <random>

std::random_device entropy;
int Roll() { return std::rand(); }
void Seed() {
  std::srand(42);
}
long Now() { return std::chrono::system_clock::now().time_since_epoch().count(); }
