// Fixture: unordered-order — range-for over a hash container in a file
// that writes to stdout. Expected violations: lines 11 and 17 (the
// std::map iteration on line 21 is ordered and must NOT be flagged).
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> timings;
void DumpTimings() {
  for (const auto& [kernel, us] : timings) {
    std::printf("%d,%f\n", kernel, us);
  }
}
void DumpNames(const std::unordered_set<int>& ids) {
  (void)ids;
  for (int id : ids) std::printf("%d\n", id);
}
std::map<int, double> ordered;
void DumpOrdered() {
  for (const auto& [kernel, us] : ordered) {
    std::printf("%d,%f\n", kernel, us);
  }
}
