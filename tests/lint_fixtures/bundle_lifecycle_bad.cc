// Fixture: bundle-lifecycle — promotion/rollback called directly on a
// registry outside models/ or the gpuperf_cli entry point. Expected
// violations: lines 8, 9, 10; the allow-annotated call and the plain
// free function that shares a name are legal.
struct Registry;

void Heal(Registry* registry, Registry& reference) {
  registry->TryPromote("candidate-dir");
  reference.Rollback();
  Registry::Rollback();
  reference.Rollback();  // gpuperf-lint: allow(bundle-lifecycle)
}

void Rollback();
void Other() { Rollback(); }
