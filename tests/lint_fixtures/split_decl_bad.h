#ifndef GPUPERF_TESTS_LINT_FIXTURES_SPLIT_DECL_BAD_H_
#define GPUPERF_TESTS_LINT_FIXTURES_SPLIT_DECL_BAD_H_
#include <string>
#include <unordered_map>
struct Registry {
  void Dump() const;
  std::unordered_map<std::string, int> entries_;
};
#endif  // GPUPERF_TESTS_LINT_FIXTURES_SPLIT_DECL_BAD_H_
