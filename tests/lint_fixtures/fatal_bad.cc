// Fixture: fatal-in-lib — a Fatal() call in a file that is not on the
// audited allowlist. Expected violation: line 8. The mention of Fatal(
// in this comment and the string below must NOT be flagged.
#include "common/logging.h"

const char* kDoc = "call Fatal( only from the allowlist";
void Explode(int got) {
  gpuperf::Fatal("unexpected value %d", got);
}
