// Fixture: raw string literals — their contents are data, not code, for
// every encoding prefix and delimiter shape. Expected: zero violations.
const char* plain = R"(std::mutex mu; Fatal("boom") rand() srand(7))";
const char* delimited = R"gp(printf(" rand() )" still inside here)gp";
const wchar_t* wide = LR"(std::random_device rd; time(nullptr))";
const char* utf8 = u8R"(std::lock_guard<std::mutex> lock(mu);)";
const char16_t* utf16 = uR"(std::atomic<int> counter{0};)";
const char32_t* utf32 = UR"(registry->TryPromote("dir");)";
const char* multi = R"(first line
Fatal("still inside the raw string on line two")
rand() on line three)";
// An identifier merely ending in R must not start a raw string: the
// parenthesis after it is plain code.
int FactorR(int n);
int user = FactorR(3);
