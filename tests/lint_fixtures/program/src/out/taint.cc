// Fixture: determinism-taint — sources reaching the WriteRow sink
// (defined in sink.cc) through one level of call indirection. This file
// never writes output directly, so the per-file rules stay quiet here.
// Expected violations: lines 11 (hash-order), 20 (rand), 37 (clock).
#include <string>
#include <unordered_map>

void WriteRow(const char* name, double value);

void DumpScores(const std::unordered_map<std::string, double>& scores) {
  for (const auto& [name, value] : scores) {
    WriteRow(name.c_str(), value);
  }
}

void EmitNoise() {
  // The per-file allow does not launder the value once it reaches an
  // output sink — the taint pass still reports it.
  // gpuperf-lint: allow(raw-random)
  const int noise = rand();
  WriteRow("noise", noise);
}

void AuditedDump(const std::unordered_map<std::string, double>& scores) {
  std::string best;
  // Order-independent max reduction, audited in review.
  for (const auto& [name, value] : scores) {  // gpuperf-lint: allow(determinism-taint)
    if (value > 0 && name > best) best = name;
  }
  WriteRow(best.c_str(), 1.0);
}

void StampRow() {
  // The allow on the read does not launder the timestamp either; the
  // taint pass still reports the flow into the sink.
  // gpuperf-lint: allow(wall-clock)
  const long stamp = std::chrono::steady_clock::now().time_since_epoch().count();
  WriteRow("stamp", static_cast<double>(stamp));
}
