// Fixture: determinism-taint sink — a writer whose body touches stdout.
// Clean on its own; it becomes a sink for callers in other files.
#include <cstdio>

void WriteRow(const char* name, double value) {
  std::printf("%s,%f\n", name, value);
}
