// Fixture: a legal downward include — `top: base` is declared in the
// fixture layers.txt. Expected: no layering violation.
#include "base/util.h"

int TopFeature();
