// Fixture: the bottom layer — no dependencies, nothing to flag.
int BaseUtil();
