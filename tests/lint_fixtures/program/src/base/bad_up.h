// Fixture: layering — an upward include from the bottom layer. `base`
// does not declare `top` as a dep, and `top -> base` already exists, so
// this edge closes the cycle base -> top -> base. Expected violation:
// line 5 (layering).
#include "top/feature.h"

int BaseCheatsUpward();
