// Fixture: lock-order, first half of a two-lock cycle. This TU nests
// alpha_mu_ -> beta_mu_; lock_b.cc nests the opposite way, closing a
// cycle in the global acquisition graph. Expected violation: one
// lock-order cycle report anchored at line 9 (the inner acquisition).
struct Account;

void TransferForward(Account& from, Account& to) {
  MutexLock hold_alpha(from.alpha_mu_);
  MutexLock hold_beta(to.beta_mu_);
  (void)from;
  (void)to;
}

void SingleLockIsFine(Account& account) {
  MutexLock only(account.alpha_mu_);
  (void)account;
}

void SequentialScopesAreFine(Account& account) {
  {
    MutexLock first(account.alpha_mu_);
    (void)account;
  }
  {
    MutexLock second(account.beta_mu_);
    (void)account;
  }
}
