// Fixture: lock-order, second half of the two-lock cycle — this TU
// nests beta_mu_ -> alpha_mu_, the reverse of lock_a.cc. The cycle is
// reported once, anchored at its smallest witness (lock_a.cc).
struct Account;

void TransferReverse(Account& from, Account& to) {
  MutexLock hold_beta(from.beta_mu_);
  MutexLock hold_alpha(to.alpha_mu_);
  (void)from;
  (void)to;
}
