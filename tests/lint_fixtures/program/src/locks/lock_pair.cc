// Fixture: lock-order, single-TU cases. Two instances of the same lock
// member acquired in caller-controlled order (line 8), and a re-entrant
// acquisition of one lock (line 14). Expected violations: lines 8, 14.
struct Table;

void MergeTables(Table& left, Table& right) {
  MutexLock hold_left(left.mu_);
  MutexLock hold_right(right.mu_);
  (void)left;
}

void Reenter(Table& table) {
  MutexLock outer(table.mu_);
  MutexLock inner(table.mu_);
  (void)table;
}

void AuditedSwap(Table& left, Table& right) {
  MutexLock hold_left(left.mu_);
  // Ordered by address at every call site, audited in review.
  // gpuperf-lint: allow(lock-order)
  MutexLock hold_right(right.mu_);
  (void)left;
}
