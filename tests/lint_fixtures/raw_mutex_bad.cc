// Fixture: raw-mutex — raw standard-library lock primitives instead of
// the annotated wrappers. Expected violations: lines 8, 9, and two on
// line 11 (std::lock_guard and its std::mutex template argument).
#include <mutex>
#include <shared_mutex>

struct Cache {
  mutable std::shared_mutex mu;
  std::mutex init_mu;
  void Touch() {
    std::lock_guard<std::mutex> lock(init_mu);
  }
};
