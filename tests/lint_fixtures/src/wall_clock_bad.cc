// Fixture: wall-clock — ::now() reads in a src/-scoped file (this
// fixture lives under lint_fixtures/src/ so the directory gate fires).
// Expected violations: lines 7, 8; line 13 is allow-suppressed.
#include <chrono>

long ElapsedNs() {
  const auto start = std::chrono::steady_clock::now();
  const auto stop = std::chrono::steady_clock::now();
  return (stop - start).count();
}

// gpuperf-lint: allow(wall-clock)
long Epoch() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
