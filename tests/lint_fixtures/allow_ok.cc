// Fixture: the allow() escape hatch — every violation from the other
// fixtures, each suppressed. Expected: zero violations.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"

// Same-line form.
int Roll() { return std::rand(); }  // gpuperf-lint: allow(raw-random)

// Standalone-comment form guards the next line.
// gpuperf-lint: allow(fatal-in-lib)
void Explode() { gpuperf::Fatal("no error channel here, reviewed"); }

// Multiple rules in one directive.
// gpuperf-lint: allow(raw-mutex, raw-random)
std::mutex mu;

// A deliberate non-metric atomic (not observable state, never exported).
std::atomic<int> scratch_counter{0};  // gpuperf-lint: allow(raw-counter)

// A reviewed out-of-band rollback (e.g. a recovery tool).
struct Registry;
void Heal(Registry& r) {
  r.Rollback();  // gpuperf-lint: allow(bundle-lifecycle)
}

std::unordered_map<int, int> histogram;
void Accumulate() {
  // Order-independent: += into a flat counter, never printed in hash
  // order. gpuperf-lint: allow(unordered-order)
  for (const auto& [bucket, count] : histogram) {
    std::printf("%d\n", bucket + count);
  }
}
