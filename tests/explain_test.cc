#include "models/explain.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"
#include "models/kw_model.h"
#include "models/prediction_plan.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

constexpr std::int64_t kBatches[] = {1, 4, 16, 64};

/** The small zoo profiled on all seven Table 1 GPUs, KW-trained. */
struct FullGpuCampaign {
  std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/16);
  dataset::Dataset data;
  dataset::NetworkSplit split;
  KwModel kw;

  FullGpuCampaign() {
    dataset::BuildOptions options;  // empty gpu_names = all seven GPUs
    data = dataset::BuildDataset(networks, options);
    split = dataset::SplitByNetwork(data, 0.15, 7);
    kw.Train(data, split);
  }

  static const FullGpuCampaign& Get() {
    static const FullGpuCampaign* const kCampaign = new FullGpuCampaign();
    return *kCampaign;
  }
};

::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bits differ)";
}

TEST(ExplainTest, TotalIsBitIdenticalToPredictUsEverywhere) {
  // The acceptance sweep: every zoo network x all seven GPUs x the
  // standard batches. ExplainPlan replays EvalUs's accumulation order,
  // so its total — and the ordered sum of its layer contributions —
  // must equal PredictUs bit-for-bit, not approximately.
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  for (const dnn::Network& network : campaign.networks) {
    for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
      for (std::int64_t batch : kBatches) {
        const PredictionPlan* plan = campaign.kw.PlanFor(network, gpu);
        ASSERT_NE(plan, nullptr);
        const PredictionBreakdown breakdown = ExplainPlan(*plan, batch);
        const double expected = campaign.kw.PredictUs(network, gpu, batch);
        EXPECT_TRUE(BitEqual(breakdown.total_us, expected))
            << network.name() << " on " << gpu.name << " batch " << batch;
        double layer_sum = 0.0;
        for (const LayerContribution& layer : breakdown.layers) {
          layer_sum += layer.us;
        }
        EXPECT_TRUE(BitEqual(layer_sum, expected))
            << network.name() << " on " << gpu.name << " batch " << batch;
      }
    }
  }
}

TEST(ExplainTest, ClusterAndTermSumsAgreeWithinRounding) {
  // Per-term scaling re-associates one multiply per term, so cluster
  // and term sums match the total to accumulated rounding — tight
  // relative error, never a structural gap.
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  const dnn::Network& network = campaign.networks.front();
  for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
    for (std::int64_t batch : kBatches) {
      const PredictionPlan* plan = campaign.kw.PlanFor(network, gpu);
      const PredictionBreakdown breakdown = ExplainPlan(*plan, batch);
      double term_sum = 0.0;
      std::uint64_t cluster_terms = 0;
      double cluster_sum = 0.0;
      for (const TermContribution& term : breakdown.terms) {
        term_sum += term.scaled_us;
      }
      for (const ClusterContribution& cluster : breakdown.clusters) {
        cluster_sum += cluster.us;
        cluster_terms += cluster.terms;
      }
      EXPECT_EQ(cluster_terms, breakdown.terms.size());
      const double tol =
          1e-12 * static_cast<double>(breakdown.terms.size() + 1) *
          std::max(1.0, breakdown.total_us);
      EXPECT_NEAR(term_sum, breakdown.total_us, tol);
      EXPECT_NEAR(cluster_sum, breakdown.total_us, tol);
    }
  }
}

TEST(ExplainTest, SharesArePartitionOfUnity) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  const dnn::Network& network = campaign.networks.front();
  const gpuexec::GpuSpec& gpu = gpuexec::AllGpus().front();
  const PredictionBreakdown breakdown =
      ExplainPlan(*campaign.kw.PlanFor(network, gpu), 16);
  ASSERT_GT(breakdown.total_us, 0.0);
  double layer_shares = 0.0, cluster_shares = 0.0;
  for (const LayerContribution& layer : breakdown.layers) {
    EXPECT_GE(layer.share, 0.0);
    layer_shares += layer.share;
  }
  for (const ClusterContribution& cluster : breakdown.clusters) {
    EXPECT_GE(cluster.share, 0.0);
    cluster_shares += cluster.share;
  }
  EXPECT_NEAR(layer_shares, 1.0, 1e-9);
  EXPECT_NEAR(cluster_shares, 1.0, 1e-9);
}

TEST(ExplainTest, LayerLabelsAndClustersComeFromTheModel) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  const dnn::Network& network = campaign.networks.front();
  const gpuexec::GpuSpec& gpu = gpuexec::AllGpus().front();
  const PredictionBreakdown breakdown =
      ExplainPlan(*campaign.kw.PlanFor(network, gpu), 16);
  ASSERT_EQ(breakdown.layers.size(), network.layers().size());
  for (std::size_t i = 0; i < breakdown.layers.size(); ++i) {
    EXPECT_EQ(breakdown.layers[i].index, i);
    EXPECT_EQ(breakdown.layers[i].label, network.layers()[i].name);
  }
  // Clusters list in ascending id and every term maps into one.
  for (std::size_t i = 1; i < breakdown.clusters.size(); ++i) {
    EXPECT_LT(breakdown.clusters[i - 1].cluster_id,
              breakdown.clusters[i].cluster_id);
  }
  for (const TermContribution& term : breakdown.terms) {
    EXPECT_LT(term.layer, breakdown.layers.size());
    EXPECT_EQ(term.layer_label, breakdown.layers[term.layer].label);
  }
}

TEST(ExplainTest, ResidualAttributionSplitsByShare) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  const dnn::Network& network = campaign.networks.front();
  const gpuexec::GpuSpec& gpu = gpuexec::AllGpus().front();
  const PredictionBreakdown breakdown =
      ExplainPlan(*campaign.kw.PlanFor(network, gpu), 16);
  const double observed = breakdown.total_us * 1.10;  // +10% residual
  const std::vector<ResidualAttribution> attribution =
      AttributeResiduals(breakdown, observed);
  ASSERT_EQ(attribution.size(), breakdown.clusters.size());
  double attributed = 0.0;
  for (std::size_t i = 0; i < attribution.size(); ++i) {
    EXPECT_EQ(attribution[i].cluster_id, breakdown.clusters[i].cluster_id);
    EXPECT_EQ(attribution[i].share, breakdown.clusters[i].share);
    attributed += attribution[i].residual_us;
  }
  EXPECT_NEAR(attributed, observed - breakdown.total_us,
              1e-9 * std::max(1.0, std::abs(observed)));
}

TEST(ExplainTest, ZeroTotalYieldsNoAttribution) {
  PredictionBreakdown empty;
  EXPECT_TRUE(AttributeResiduals(empty, 5.0).empty());
}

}  // namespace
}  // namespace gpuperf::models
