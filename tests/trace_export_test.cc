#include "gpuexec/trace_export.h"

#include <cstdio>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "gpuexec/lowering.h"
#include "zoo/zoo.h"

namespace gpuperf::gpuexec {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  HardwareOracle oracle_;
  Profiler profiler_{oracle_};
  dnn::Network net_ = zoo::BuildByName("alexnet");
  NetworkProfile profile_ =
      profiler_.Profile(net_, GpuByName("A100"), 32);
};

TEST_F(TraceExportTest, TimelineIsPopulatedAndOrdered) {
  double previous_end = 0;
  for (const KernelRecord& record : profile_.kernels) {
    EXPECT_GT(record.end_us, record.start_us) << record.kernel_name;
    // Inference kernels execute in record order on one stream.
    EXPECT_GE(record.start_us, previous_end - 1e-9);
    previous_end = record.end_us;
  }
}

TEST_F(TraceExportTest, JsonContainsBothTracksAndAllKernels) {
  const std::string json = ChromeTraceJson(net_, profile_);
  EXPECT_NE(json.find("CPU (layers)"), std::string::npos);
  EXPECT_NE(json.find("GPU (kernels)"), std::string::npos);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  // Every kernel appears by name at least once.
  for (const KernelRecord& record : profile_.kernels) {
    EXPECT_NE(json.find(record.kernel_name), std::string::npos)
        << record.kernel_name;
  }
  // Layer spans appear too.
  EXPECT_NE(json.find("CONV_0"), std::string::npos);
}

TEST_F(TraceExportTest, JsonIsStructurallyBalanced) {
  const std::string json = ChromeTraceJson(net_, profile_);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceExportTest, WriteCreatesAReadableFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpuperf_trace_test.json")
          .string();
  ASSERT_TRUE(WriteChromeTrace(net_, profile_, path).ok());
  EXPECT_GT(std::filesystem::file_size(path), 1000u);
  std::remove(path.c_str());
}

TEST_F(TraceExportTest, WriteToUnwritablePathReturnsError) {
  const Status status =
      WriteChromeTrace(net_, profile_, "/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

TEST_F(TraceExportTest, LayerSpansCoverTheirKernels) {
  const std::string json = ChromeTraceJson(net_, profile_);
  // Structural sanity delegated to the profile: each layer's span is the
  // min/max of its kernels, so the trace must mention every layer that
  // launched kernels.
  std::set<int> layers;
  for (const KernelRecord& record : profile_.kernels) {
    layers.insert(record.layer_index);
  }
  for (int layer : layers) {
    EXPECT_NE(json.find(net_.layers()[layer].name), std::string::npos);
  }
}


}  // namespace
}  // namespace gpuperf::gpuexec
