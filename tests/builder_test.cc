#include "dnn/builder.h"

#include <gtest/gtest.h>

namespace gpuperf::dnn {
namespace {

TEST(BuilderTest, ConvInfersOutputShape) {
  NetworkBuilder b("t", "Test", Chw(3, 224, 224));
  b.Conv(64, 7, 2, 3);
  EXPECT_EQ(b.CurrentShape(), Chw(64, 112, 112));
}

TEST(BuilderTest, PoolingShapes) {
  NetworkBuilder b("t", "Test", Chw(64, 112, 112));
  b.MaxPool(3, 2, 1);
  EXPECT_EQ(b.CurrentShape(), Chw(64, 56, 56));
  b.AvgPool(2, 2, 0);
  EXPECT_EQ(b.CurrentShape(), Chw(64, 28, 28));
  b.GlobalAvgPool();
  EXPECT_EQ(b.CurrentShape(), Chw(64, 1, 1));
}

TEST(BuilderTest, ElementwiseOpsPreserveShape) {
  NetworkBuilder b("t", "Test", Chw(8, 4, 4));
  b.BatchNorm().Relu().Relu6().Gelu().Sigmoid().Softmax().Dropout();
  EXPECT_EQ(b.CurrentShape(), Chw(8, 4, 4));
  Network net = b.Build();
  EXPECT_EQ(net.layers().size(), 7u);
}

TEST(BuilderTest, FlattenAndLinear) {
  NetworkBuilder b("t", "Test", Chw(512, 7, 7));
  b.Flatten();
  EXPECT_EQ(b.CurrentShape(), Chw(512 * 49, 1, 1));
  b.Linear(1000);
  EXPECT_EQ(b.CurrentShape(), Chw(1000, 1, 1));
}

TEST(BuilderTest, LinearAppliesPerToken) {
  NetworkBuilder b("t", "Test", Chw(768, 128, 1));
  b.Linear(3072);
  EXPECT_EQ(b.CurrentShape(), Chw(3072, 128, 1));
}

TEST(BuilderTest, ResidualAddJoinsBranches) {
  NetworkBuilder b("t", "Test", Chw(64, 56, 56));
  int block_in = b.Mark();
  b.Conv(64, 3, 1, 1).BatchNorm();
  b.AddFrom(block_in);
  Network net = b.Build();
  const Layer& add = net.layers().back();
  EXPECT_EQ(add.kind, LayerKind::kAdd);
  ASSERT_EQ(add.inputs.size(), 2u);
  EXPECT_EQ(add.inputs[0], add.inputs[1]);
}

TEST(BuilderDeathTest, AddShapeMismatchAborts) {
  NetworkBuilder b("t", "Test", Chw(64, 56, 56));
  int block_in = b.Mark();
  b.Conv(128, 3, 2, 1);
  EXPECT_DEATH(b.AddFrom(block_in), "shape mismatch");
}

TEST(BuilderTest, ConcatSumsChannels) {
  NetworkBuilder b("t", "Test", Chw(32, 28, 28));
  int trunk = b.Mark();
  b.Conv(16, 1, 1, 0);
  int branch1 = b.Mark();
  b.Restore(trunk);
  b.Conv(48, 3, 1, 1);
  int branch2 = b.Mark();
  b.Concat({branch1, branch2});
  EXPECT_EQ(b.CurrentShape(), Chw(64, 28, 28));
}

TEST(BuilderDeathTest, ConcatSpatialMismatchAborts) {
  NetworkBuilder b("t", "Test", Chw(32, 28, 28));
  int a = b.Mark();
  b.MaxPool(2, 2, 0);
  int c = b.Mark();
  EXPECT_DEATH(b.Concat({a, c}), "check failed");
}

TEST(BuilderTest, RestoreRewindsShape) {
  NetworkBuilder b("t", "Test", Chw(3, 32, 32));
  int start = b.Mark();
  b.Conv(16, 3, 2, 1);
  EXPECT_EQ(b.CurrentShape().c, 16);
  b.Restore(start);
  EXPECT_EQ(b.CurrentShape(), Chw(3, 32, 32));
}

TEST(BuilderTest, DepthwiseConvViaGroups) {
  NetworkBuilder b("t", "Test", Chw(32, 16, 16));
  b.Conv(32, 3, 1, 1, /*groups=*/32);
  Network net = b.Build();
  EXPECT_TRUE(net.layers()[0].conv().IsDepthwise());
}

TEST(BuilderDeathTest, GroupsMustDivideChannels) {
  NetworkBuilder b("t", "Test", Chw(30, 16, 16));
  EXPECT_DEATH(b.Conv(32, 3, 1, 1, /*groups=*/4), "not divisible");
}

TEST(BuilderTest, EmbeddingReplacesShape) {
  NetworkBuilder b("t", "Test", Chw(1, 128, 1));
  b.Embedding(30522, 768, 128);
  EXPECT_EQ(b.CurrentShape(), Chw(768, 128, 1));
}

TEST(BuilderTest, MatMulUsesExplicitOutput) {
  NetworkBuilder b("t", "Test", Chw(768, 128, 1));
  b.MatMul(12, 128, 128, 64, Chw(12, 128, 128));
  EXPECT_EQ(b.CurrentShape(), Chw(12, 128, 128));
}

TEST(BuilderTest, LayerNamesAreUniqueAndTyped) {
  NetworkBuilder b("t", "Test", Chw(3, 8, 8));
  b.Conv(4, 3, 1, 1).Relu().Relu();
  Network net = b.Build();
  EXPECT_EQ(net.layers()[0].name, "CONV_0");
  EXPECT_EQ(net.layers()[1].name, "ReLU_1");
  EXPECT_EQ(net.layers()[2].name, "ReLU_2");
}

TEST(BuilderDeathTest, BuildTwiceAborts) {
  NetworkBuilder b("t", "Test", Chw(3, 8, 8));
  b.Relu();
  Network net = b.Build();
  EXPECT_DEATH(b.Build(), "check failed");
}

TEST(BuilderTest, ConvBnReluEmitsThreeLayers) {
  NetworkBuilder b("t", "Test", Chw(3, 8, 8));
  b.ConvBnRelu(8, 3, 1, 1);
  Network net = b.Build();
  ASSERT_EQ(net.layers().size(), 3u);
  EXPECT_EQ(net.layers()[0].kind, LayerKind::kConv2d);
  EXPECT_EQ(net.layers()[1].kind, LayerKind::kBatchNorm);
  EXPECT_EQ(net.layers()[2].kind, LayerKind::kRelu);
}

TEST(BuilderTest, ChannelShuffleRequiresDivisibility) {
  NetworkBuilder b("t", "Test", Chw(24, 8, 8));
  b.ChannelShuffle(3);
  EXPECT_EQ(b.CurrentShape(), Chw(24, 8, 8));
}

}  // namespace
}  // namespace gpuperf::dnn
