#include "common/logging.h"

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  GP_CHECK(true);
  GP_CHECK_EQ(1, 1);
  GP_CHECK_NE(1, 2);
  GP_CHECK_LT(1, 2);
  GP_CHECK_LE(2, 2);
  GP_CHECK_GT(2, 1);
  GP_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(GP_CHECK(false), "check failed: false");
}

TEST(CheckDeathTest, FailingCheckEqReportsValues) {
  int a = 3, b = 4;
  EXPECT_DEATH(GP_CHECK_EQ(a, b), "3 vs 4");
}

TEST(CheckDeathTest, StreamedContextAppears) {
  EXPECT_DEATH(GP_CHECK(1 > 2) << "custom context 42", "custom context 42");
}

TEST(CheckDeathTest, ComparisonMacrosAbortOnViolation) {
  EXPECT_DEATH(GP_CHECK_LT(5, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_GT(5, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_LE(6, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_GE(4, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_NE(5, 5), "check failed");
}

TEST(FatalDeathTest, FatalExitsWithStatusOne) {
  EXPECT_EXIT(Fatal("bad config"), ::testing::ExitedWithCode(1),
              "bad config");
}

TEST(LoggingTest, InfoAndWarnDoNotTerminate) {
  LogInfo("informational");
  LogWarn("warning");
}

// CHECK must work inside unbraced if/else (the operator&= trick).
TEST(CheckTest, ComposesWithUnbracedElse) {
  bool flag = true;
  if (flag)
    GP_CHECK(true) << "then-branch";
  else
    GP_CHECK(true) << "else-branch";
}

}  // namespace
}  // namespace gpuperf
