#include "common/logging.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

// Sink/clock injection for exact-line assertions. LogSink is a plain
// function pointer, so captured lines land in a static vector.
std::vector<std::pair<LogLevel, std::string>>& CapturedLines() {
  static auto* const kLines =
      new std::vector<std::pair<LogLevel, std::string>>();
  return *kLines;
}

void CaptureSink(LogLevel level, const std::string& line) {
  CapturedLines().emplace_back(level, line);
}

double FixedClock() { return 1.5; }

class CapturedLoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CapturedLines().clear();
    previous_sink_ = SetLogSinkForTest(&CaptureSink);
    previous_clock_ = SetLogClockForTest(&FixedClock);
  }
  void TearDown() override {
    SetLogSinkForTest(previous_sink_);
    SetLogClockForTest(previous_clock_);
    SetMinLogLevel(LogLevel::kInfo);
  }

 private:
  LogSink previous_sink_ = nullptr;
  LogClockFn previous_clock_ = nullptr;
};

TEST(CheckTest, PassingCheckDoesNothing) {
  GP_CHECK(true);
  GP_CHECK_EQ(1, 1);
  GP_CHECK_NE(1, 2);
  GP_CHECK_LT(1, 2);
  GP_CHECK_LE(2, 2);
  GP_CHECK_GT(2, 1);
  GP_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(GP_CHECK(false), "check failed: false");
}

TEST(CheckDeathTest, FailingCheckEqReportsValues) {
  int a = 3, b = 4;
  EXPECT_DEATH(GP_CHECK_EQ(a, b), "3 vs 4");
}

TEST(CheckDeathTest, StreamedContextAppears) {
  EXPECT_DEATH(GP_CHECK(1 > 2) << "custom context 42", "custom context 42");
}

TEST(CheckDeathTest, ComparisonMacrosAbortOnViolation) {
  EXPECT_DEATH(GP_CHECK_LT(5, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_GT(5, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_LE(6, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_GE(4, 5), "check failed");
  EXPECT_DEATH(GP_CHECK_NE(5, 5), "check failed");
}

TEST(FatalDeathTest, FatalExitsWithStatusOne) {
  // This is the test of Fatal itself. gpuperf-lint: allow(fatal-in-lib)
  EXPECT_EXIT(Fatal("bad config"), ::testing::ExitedWithCode(1),
              "bad config");
}

TEST(LoggingTest, InfoAndWarnDoNotTerminate) {
  LogInfo("informational");
  LogWarn("warning");
}

TEST_F(CapturedLoggingTest, StructuredLineIsExact) {
  LogInfo("bundle promoted", {{"generation", "3"}, {"directory", "b0"}});
  ASSERT_EQ(CapturedLines().size(), 1u);
  EXPECT_EQ(CapturedLines()[0].first, LogLevel::kInfo);
  EXPECT_EQ(CapturedLines()[0].second,
            "[gpuperf INFO 1.500s] bundle promoted generation=3 directory=b0");
}

TEST_F(CapturedLoggingTest, AmbiguousFieldValuesAreQuoted) {
  LogWarn("probe",
          {{"spaced", "a b"},
           {"quoted", "say \"hi\""},
           {"equals", "k=v"},
           {"backslash", "a\\b"},
           {"empty", ""}});
  ASSERT_EQ(CapturedLines().size(), 1u);
  EXPECT_EQ(CapturedLines()[0].second,
            "[gpuperf WARN 1.500s] probe spaced=\"a b\" "
            "quoted=\"say \\\"hi\\\"\" equals=\"k=v\" "
            "backslash=\"a\\\\b\" empty=\"\"");
}

TEST_F(CapturedLoggingTest, DebugIsFilteredAtDefaultLevel) {
  LogDebug("invisible");
  EXPECT_TRUE(CapturedLines().empty());
  SetMinLogLevel(LogLevel::kDebug);
  LogDebug("visible", {{"k", "v"}});
  ASSERT_EQ(CapturedLines().size(), 1u);
  EXPECT_EQ(CapturedLines()[0].second, "[gpuperf DEBUG 1.500s] visible k=v");
}

TEST_F(CapturedLoggingTest, RaisingTheLevelSilencesInfoAndWarn) {
  SetMinLogLevel(LogLevel::kError);
  LogInfo("dropped");
  LogWarn("dropped too");
  EXPECT_TRUE(CapturedLines().empty());
}

TEST(ParseLogLevelTest, RecognizesLevelsCaseInsensitively) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(internal::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(internal::ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(internal::ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(internal::ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, RejectsGarbageWithoutTouchingTheLevel) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_FALSE(internal::ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(internal::ParseLogLevel("", &level));
  EXPECT_FALSE(internal::ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
}

TEST(LogLevelNameTest, TagsAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

// CHECK must work inside unbraced if/else (the operator&= trick).
TEST(CheckTest, ComposesWithUnbracedElse) {
  bool flag = true;
  if (flag)
    GP_CHECK(true) << "then-branch";
  else
    GP_CHECK(true) << "else-branch";
}

}  // namespace
}  // namespace gpuperf
