#ifndef GPUPERF_TESTS_TEST_SUPPORT_H_
#define GPUPERF_TESTS_TEST_SUPPORT_H_

/**
 * @file
 * Shared fixtures: a small measurement campaign (41-network zoo on two
 * GPUs) built once per test binary, so model tests do not pay the full
 * 646-network cost.
 */

#include <vector>

#include "dataset/dataset.h"
#include "dnn/network.h"
#include "gpuexec/oracle.h"
#include "gpuexec/profiler.h"

namespace gpuperf::testing {

/** Lazily built small campaign shared by the tests of one binary. */
class SmallCampaign {
 public:
  static const SmallCampaign& Get();

  const std::vector<dnn::Network>& networks() const { return networks_; }
  const dataset::Dataset& data() const { return data_; }
  const dataset::NetworkSplit& split() const { return split_; }
  const gpuexec::HardwareOracle& oracle() const { return oracle_; }

  /** The network object for a dataset network id. */
  const dnn::Network& NetworkById(int network_id) const;

  /** Test-set networks only. */
  std::vector<const dnn::Network*> TestNetworks() const;

 private:
  SmallCampaign();

  std::vector<dnn::Network> networks_;
  dataset::Dataset data_;
  dataset::NetworkSplit split_;
  gpuexec::HardwareOracle oracle_;
};

}  // namespace gpuperf::testing

#endif  // GPUPERF_TESTS_TEST_SUPPORT_H_
