#ifndef GPUPERF_TESTS_TEST_SUPPORT_H_
#define GPUPERF_TESTS_TEST_SUPPORT_H_

/**
 * @file
 * Shared fixtures: a small measurement campaign (41-network zoo on two
 * GPUs) built once per test binary, so model tests do not pay the full
 * 646-network cost — plus a golden saved KW bundle trained from it, for
 * tests that exercise bundle loading, validation, and hot reload.
 */

#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dnn/network.h"
#include "gpuexec/oracle.h"
#include "gpuexec/profiler.h"

namespace gpuperf::testing {

/** Lazily built small campaign shared by the tests of one binary. */
class SmallCampaign {
 public:
  static const SmallCampaign& Get();

  const std::vector<dnn::Network>& networks() const { return networks_; }
  const dataset::Dataset& data() const { return data_; }
  const dataset::NetworkSplit& split() const { return split_; }
  const gpuexec::HardwareOracle& oracle() const { return oracle_; }

  /** The network object for a dataset network id. */
  const dnn::Network& NetworkById(int network_id) const;

  /** Test-set networks only. */
  std::vector<const dnn::Network*> TestNetworks() const;

 private:
  SmallCampaign();

  std::vector<dnn::Network> networks_;
  dataset::Dataset data_;
  dataset::NetworkSplit split_;
  gpuexec::HardwareOracle oracle_;
};

/**
 * A pristine KW bundle trained from the small campaign, saved once per
 * process. Treat as read-only; copy with ScratchKwBundleDir() to tamper.
 */
const std::string& GoldenKwBundleDir();

/** Copies the golden bundle into a fresh scratch directory. */
std::string ScratchKwBundleDir(const std::string& tag);

/**
 * Rewrites `dir`/manifest.csv to bless the bundle files as they are on
 * disk, so a tampering test can get past the checksum gate and reach
 * deeper validation (or the canary).
 */
void RemanifestKwBundle(const std::string& dir);

}  // namespace gpuperf::testing

#endif  // GPUPERF_TESTS_TEST_SUPPORT_H_
