#include "models/predictor_stack.h"

#include <utility>

#include <gtest/gtest.h>

#include "gpuexec/gpu_spec.h"
#include "test_support.h"

namespace gpuperf::models {
namespace {

using ::gpuperf::testing::SmallCampaign;

/** Installs every tier, trained on the small campaign (the stack holds
    atomics and is neither movable nor copyable). */
void InstallAllTiers(PredictorStack& stack) {
  const SmallCampaign& campaign = SmallCampaign::Get();
  KwModel kw;
  kw.Train(campaign.data(), campaign.split());
  stack.SetKw(std::move(kw));
  LwModel lw;
  lw.Train(campaign.data(), campaign.split());
  stack.SetLw(std::move(lw));
  E2eModel e2e;
  e2e.Train(campaign.data(), campaign.split());
  stack.SetE2e(std::move(e2e));
}

const dnn::Network& AnyNetwork() {
  return SmallCampaign::Get().networks().front();
}

TEST(PredictorTierNameTest, NamesAreStable) {
  EXPECT_STREQ(PredictorTierName(PredictorTier::kKw), "KW");
  EXPECT_STREQ(PredictorTierName(PredictorTier::kLw), "LW");
  EXPECT_STREQ(PredictorTierName(PredictorTier::kE2e), "E2E");
  EXPECT_STREQ(PredictorTierName(PredictorTier::kNone), "none");
}

TEST(PredictorStackTest, KwAnswersCoveredQueries) {
  PredictorStack stack;
  InstallAllTiers(stack);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  PredictorTier tier = PredictorTier::kNone;
  StatusOr<double> prediction =
      stack.TryPredictUs(AnyNetwork(), a100, 16, &tier);
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  EXPECT_EQ(tier, PredictorTier::kKw);
  EXPECT_GT(prediction.value(), 0.0);
  EXPECT_EQ(stack.counters().kw_hits, 1u);
  EXPECT_DOUBLE_EQ(stack.counters().DegradedFraction(), 0.0);
}

TEST(PredictorStackTest, UntrainedKwFallsBackToLw) {
  // An installed-but-untrained KW tier (e.g. a bundle whose campaign
  // never ran) covers nothing; every query degrades to LW.
  const SmallCampaign& campaign = SmallCampaign::Get();
  PredictorStack stack;
  stack.SetKw(KwModel());
  LwModel lw;
  lw.Train(campaign.data(), campaign.split());
  stack.SetLw(std::move(lw));

  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  PredictorTier tier = PredictorTier::kNone;
  StatusOr<double> prediction =
      stack.TryPredictUs(AnyNetwork(), a100, 16, &tier);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(tier, PredictorTier::kLw);
  EXPECT_GT(prediction.value(), 0.0);
  EXPECT_EQ(stack.counters().lw_fallbacks, 1u);
  EXPECT_DOUBLE_EQ(stack.counters().DegradedFraction(), 1.0);
}

TEST(PredictorStackTest, E2eIsTheLastAnsweringTier) {
  const SmallCampaign& campaign = SmallCampaign::Get();
  PredictorStack stack;
  E2eModel e2e;
  e2e.Train(campaign.data(), campaign.split());
  stack.SetE2e(std::move(e2e));

  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  PredictorTier tier = PredictorTier::kNone;
  StatusOr<double> prediction =
      stack.TryPredictUs(AnyNetwork(), a100, 16, &tier);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(tier, PredictorTier::kE2e);
  EXPECT_GT(prediction.value(), 0.0);
  EXPECT_EQ(stack.counters().e2e_fallbacks, 1u);
}

TEST(PredictorStackTest, EmptyStackIsFailedPrecondition) {
  PredictorStack stack;
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  PredictorTier tier = PredictorTier::kKw;
  StatusOr<double> prediction =
      stack.TryPredictUs(AnyNetwork(), a100, 16, &tier);
  ASSERT_FALSE(prediction.ok());
  EXPECT_EQ(prediction.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier, PredictorTier::kNone);
  EXPECT_EQ(stack.counters().unanswered, 1u);
}

TEST(PredictorStackTest, UnknownGpuIsFailedPreconditionNotAbort) {
  // V100 exists in the spec table but the campaign never measured it, so
  // no tier covers it; the stack must report, not die.
  PredictorStack stack;
  InstallAllTiers(stack);
  const gpuexec::GpuSpec* v100 = gpuexec::FindGpu("V100");
  ASSERT_NE(v100, nullptr);
  StatusOr<double> prediction = stack.TryPredictUs(AnyNetwork(), *v100, 16);
  ASSERT_FALSE(prediction.ok());
  EXPECT_EQ(prediction.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(prediction.status().message().find("V100"), std::string::npos);
  EXPECT_EQ(stack.counters().unanswered, 1u);
}

TEST(PredictorStackTest, PredictUsIsZeroWhenUncovered) {
  PredictorStack stack;
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  EXPECT_DOUBLE_EQ(stack.PredictUs(AnyNetwork(), a100, 16), 0.0);
}

TEST(PredictorStackTest, CountersAccumulateAndReset) {
  PredictorStack stack;
  InstallAllTiers(stack);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const gpuexec::GpuSpec* v100 = gpuexec::FindGpu("V100");
  ASSERT_NE(v100, nullptr);

  (void)stack.TryPredictUs(AnyNetwork(), a100, 16);
  (void)stack.TryPredictUs(AnyNetwork(), a100, 32);
  (void)stack.TryPredictUs(AnyNetwork(), *v100, 16);

  PredictorStackCounters counters = stack.counters();
  EXPECT_EQ(counters.kw_hits, 2u);
  EXPECT_EQ(counters.unanswered, 1u);
  EXPECT_EQ(counters.total(), 3u);

  stack.ResetCounters();
  EXPECT_EQ(stack.counters().total(), 0u);
}

TEST(PredictorStackTest, StackAgreesWithTheAnsweringTier) {
  const SmallCampaign& campaign = SmallCampaign::Get();
  KwModel kw;
  kw.Train(campaign.data(), campaign.split());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const double direct = kw.PredictUs(AnyNetwork(), a100, 16);

  PredictorStack stack;
  stack.SetKw(std::move(kw));
  EXPECT_DOUBLE_EQ(stack.TryPredictUs(AnyNetwork(), a100, 16).value(),
                   direct);
}

}  // namespace
}  // namespace gpuperf::models
