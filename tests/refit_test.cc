// The incremental-refit path and the self-healing lifecycle controller:
// reservoir ring semantics, patching only tripped clusters of a saved
// bundle, and the full heal loop (drift -> refit -> shadow -> canary ->
// promote) driven by synthetic residual streams — including the
// acceptance-criterion case where a deliberately-corrupt candidate is
// rejected at the canary gate WITHOUT rolling back the good generation.

#include "models/refit.h"

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "gpuexec/gpu_spec.h"
#include "models/bundle_registry.h"
#include "models/kw_model.h"
#include "models/model_io.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using gpuperf::testing::GoldenKwBundleDir;
using gpuperf::testing::SmallCampaign;

// The batch the golden campaign profiles at: serving at the training
// batch keeps the model's baseline residuals far below the drift
// signal, so only injected drift trips the monitor.
constexpr std::int64_t kBatch = 512;
constexpr char kDriftGpu[] = "A40";
constexpr char kQuietGpu[] = "TITAN RTX";

std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       Format("gpuperf_refit_%s_%d", tag.c_str(), static_cast<int>(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CanaryOptions Probes() {
  CanaryOptions options;
  options.probe_networks = {zoo::BuildByName("resnet18"),
                            zoo::BuildByName("mobilenet_v2")};
  options.batch = 16;
  options.tolerance = 0.5;
  return options;
}

/** A few campaign networks fully covered on both test GPUs. */
std::vector<const dnn::Network*> CoveredNetworks(const KwModel& model,
                                                 std::size_t want) {
  std::vector<const dnn::Network*> covered;
  for (const dnn::Network& network : SmallCampaign::Get().networks()) {
    if (model.CoverageFor(network, kDriftGpu).Full() &&
        model.CoverageFor(network, kQuietGpu).Full()) {
      covered.push_back(&network);
      if (covered.size() == want) break;
    }
  }
  return covered;
}

TEST(RefitReservoirTest, KeepsTheMostRecentSamplesOldestFirst) {
  RefitReservoir reservoir(3);
  for (int i = 1; i <= 5; ++i) {
    reservoir.Add("A40", 100001, /*x=*/i, /*y=*/10.0 * i);
  }
  EXPECT_EQ(reservoir.Size("A40", 100001), 3u);
  std::vector<double> x, y;
  EXPECT_EQ(reservoir.Collect("A40", 100001, &x, &y), 3u);
  EXPECT_EQ(x, (std::vector<double>{3, 4, 5}));
  EXPECT_EQ(y, (std::vector<double>{30, 40, 50}));
}

TEST(RefitReservoirTest, PairsAreIndependentAndResettable) {
  RefitReservoir reservoir(8);
  reservoir.Add("A40", 100001, 1, 2);
  reservoir.Add("A40", 100002, 3, 4);
  reservoir.Add("V100", 100001, 5, 6);
  EXPECT_EQ(reservoir.Size("A40", 100001), 1u);
  EXPECT_EQ(reservoir.Size("A40", 100002), 1u);
  EXPECT_EQ(reservoir.Size("V100", 100001), 1u);
  reservoir.Reset("A40", 100001);
  EXPECT_EQ(reservoir.Size("A40", 100001), 0u);
  EXPECT_EQ(reservoir.Size("A40", 100002), 1u);
  std::vector<double> x, y;
  EXPECT_EQ(reservoir.Collect("A40", 100001, &x, &y), 0u);
  EXPECT_TRUE(x.empty());
}

TEST(RefitReservoirTest, NonFiniteSamplesAreDropped) {
  RefitReservoir reservoir(8);
  reservoir.Add("A40", 100001, std::nan(""), 1.0);
  reservoir.Add("A40", 100001, 1.0, std::numeric_limits<double>::infinity());
  EXPECT_EQ(reservoir.Size("A40", 100001), 0u);
}

TEST(RefitTest, EmptyTrippedListIsInvalid) {
  RefitReservoir reservoir(8);
  StatusOr<RefitResult> result = RefitTrippedClusters(
      GoldenKwBundleDir(), {}, reservoir, RefitOptions(), ScratchDir("inv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RefitTest, UnavailableUntilEnoughSamples) {
  RefitReservoir reservoir(8);
  reservoir.Add(kDriftGpu, 100001, 1.0, 2.0);  // one sample, need 8
  StatusOr<RefitResult> result = RefitTrippedClusters(
      GoldenKwBundleDir(), {{kDriftGpu, 100001}}, reservoir, RefitOptions(),
      ScratchDir("few"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RefitTest, PatchesOnlyTheTrippedClusterAndGpu) {
  StatusOr<KwModel> golden = ModelIo::LoadKw(GoldenKwBundleDir());
  ASSERT_TRUE(golden.ok());
  const std::vector<const dnn::Network*> networks =
      CoveredNetworks(*golden, 4);
  ASSERT_GE(networks.size(), 2u);

  // Gather real kernel terms and pick the cluster with the most
  // distinct x values (it produces the best-conditioned refit).
  std::map<int, std::vector<KwModel::KernelTerm>> by_cluster;
  for (const dnn::Network* network : networks) {
    std::vector<KwModel::KernelTerm> terms;
    for (const dnn::Layer& layer : network->layers()) {
      golden->AppendKernelTerms(layer, kDriftGpu, kBatch, &terms);
    }
    for (const KwModel::KernelTerm& term : terms) {
      by_cluster[term.cluster_id].push_back(term);
    }
  }
  int target = -1;
  std::size_t best = 0;
  for (const auto& [cluster_id, terms] : by_cluster) {
    std::set<double> xs;
    for (const KwModel::KernelTerm& term : terms) xs.insert(term.x);
    if (xs.size() > best) {
      best = xs.size();
      target = cluster_id;
    }
  }
  ASSERT_NE(target, -1);
  ASSERT_GE(by_cluster[target].size(), 8u) << "need a well-used cluster";

  // The drifted truth: every sample of the target cluster runs 1.25x.
  RefitReservoir reservoir(256);
  for (const KwModel::KernelTerm& term : by_cluster[target]) {
    reservoir.Add(kDriftGpu, target, term.x, term.us * 1.25);
  }

  const std::string candidate_dir = ScratchDir("patch");
  StatusOr<RefitResult> result = RefitTrippedClusters(
      GoldenKwBundleDir(), {{kDriftGpu, target}}, reservoir, RefitOptions(),
      candidate_dir);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result->refit.size(), 1u);
  EXPECT_EQ(result->refit[0], (DriftKey{kDriftGpu, target}));

  // The candidate reloads cleanly and only the tripped (GPU, cluster)
  // changed: target-cluster terms moved, sibling clusters and the quiet
  // GPU are bit-identical.
  StatusOr<KwModel> patched = ModelIo::LoadKw(candidate_dir);
  ASSERT_TRUE(patched.ok()) << patched.status().message();
  bool target_changed = false;
  for (const dnn::Network* network : networks) {
    std::vector<KwModel::KernelTerm> before, after;
    for (const dnn::Layer& layer : network->layers()) {
      golden->AppendKernelTerms(layer, kDriftGpu, kBatch, &before);
      patched->AppendKernelTerms(layer, kDriftGpu, kBatch, &after);
    }
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (before[i].cluster_id == target) {
        if (after[i].us != before[i].us) target_changed = true;
        // The refit tracked the 1.25x drift (clamping can keep it from
        // being exact, but it must move decisively toward the truth).
        EXPECT_GT(after[i].us, before[i].us * 1.05);
        EXPECT_LT(after[i].us, before[i].us * 1.5);
      } else {
        EXPECT_EQ(after[i].us, before[i].us) << "untripped cluster moved";
      }
    }
    std::vector<KwModel::KernelTerm> quiet_before, quiet_after;
    for (const dnn::Layer& layer : network->layers()) {
      golden->AppendKernelTerms(layer, kQuietGpu, kBatch, &quiet_before);
      patched->AppendKernelTerms(layer, kQuietGpu, kBatch, &quiet_after);
    }
    ASSERT_EQ(quiet_before.size(), quiet_after.size());
    for (std::size_t i = 0; i < quiet_before.size(); ++i) {
      EXPECT_EQ(quiet_after[i].us, quiet_before[i].us) << "quiet GPU moved";
    }
  }
  EXPECT_TRUE(target_changed);
  std::filesystem::remove_all(candidate_dir);
}

// ---------------------------------------------------------------------------
// Lifecycle controller: a synthetic serving loop. Truth is the golden
// model's own predictions times a drift factor on one GPU — so residuals
// are exactly the drift, with no simulator noise in the way.

struct LoopState {
  BundleRegistry registry;
  std::unique_ptr<LifecycleController> controller;
  std::vector<const dnn::Network*> networks;
  std::map<std::string, std::map<std::string, double>> truth;  // net -> gpu
  std::string work_dir;
};

void SeedLoop(LoopState* state, const std::string& tag,
              double drift_factor) {
  ASSERT_TRUE(state->registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const KwModel> golden = state->registry.Snapshot();
  state->networks = CoveredNetworks(*golden, 3);
  ASSERT_GE(state->networks.size(), 2u);

  for (const dnn::Network* network : state->networks) {
    for (const char* gpu : {kDriftGpu, kQuietGpu}) {
      const double nominal =
          golden->PredictUs(*network, gpuexec::GpuByName(gpu), kBatch);
      const double factor =
          std::string(gpu) == kDriftGpu ? drift_factor : 1.0;
      state->truth[network->name()][gpu] = nominal * factor;
    }
  }

  state->work_dir = ScratchDir(tag);
  LifecycleOptions options;
  options.work_dir = state->work_dir;
  options.min_shadow_observations = 6;
  options.watch_window = 6;
  state->controller = std::make_unique<LifecycleController>(
      &state->registry, GoldenKwBundleDir(), Probes(), options);
}

/** One epoch: every (network, GPU) completes one job, then one Step(). */
LifecycleState RunEpoch(LoopState* state) {
  std::shared_ptr<const KwModel> snapshot = state->registry.Snapshot();
  for (const dnn::Network* network : state->networks) {
    for (const char* gpu : {kDriftGpu, kQuietGpu}) {
      const double predicted =
          snapshot->PredictUs(*network, gpuexec::GpuByName(gpu), kBatch);
      state->controller->Observe(*network, gpu, kBatch, predicted,
                                 state->truth[network->name()][gpu]);
    }
  }
  return state->controller->Step();
}

TEST(LifecycleControllerTest, HealsAStepDriftEndToEnd) {
  LoopState state;
  SeedLoop(&state, "heal", /*drift_factor=*/1.12);
  std::shared_ptr<const KwModel> original = state.registry.Snapshot();

  std::set<LifecycleState> visited;
  for (int epoch = 0; epoch < 40; ++epoch) {
    visited.insert(RunEpoch(&state));
    // Trip specificity: the quiet GPU's pairs never trip.
    for (const DriftKey& key : state.controller->monitor().Tripped()) {
      EXPECT_EQ(key.gpu, kDriftGpu) << "quiet GPU tripped";
    }
    if (visited.count(LifecycleState::kPromoted) > 0) break;
  }

  // The loop walked the whole happy path and landed a new generation.
  EXPECT_TRUE(visited.count(LifecycleState::kDrifting));
  EXPECT_TRUE(visited.count(LifecycleState::kShadow) ||
              visited.count(LifecycleState::kCanary));
  ASSERT_TRUE(visited.count(LifecycleState::kPromoted))
      << "lifecycle never promoted a healed candidate";
  const LifecycleCounters& counters = state.controller->counters();
  EXPECT_GE(counters.refits, 1u);
  EXPECT_GE(counters.promotions, 1u);
  EXPECT_EQ(counters.rollbacks, 0u);
  EXPECT_NE(state.registry.Snapshot(), original);
  EXPECT_NE(state.controller->serving_dir(), GoldenKwBundleDir());

  // The healed generation predicts the drifted truth: post-promotion
  // residuals on the drifted GPU collapse well below the trip threshold.
  std::shared_ptr<const KwModel> healed = state.registry.Snapshot();
  double abs_sum = 0;
  for (const dnn::Network* network : state.networks) {
    const double predicted =
        healed->PredictUs(*network, gpuexec::GpuByName(kDriftGpu), kBatch);
    abs_sum += std::abs(
        std::log(state.truth[network->name()][kDriftGpu] / predicted));
  }
  const double mean_abs = abs_sum / state.networks.size();
  EXPECT_LT(mean_abs, 0.05) << "healed residual did not shrink";
  // And the quiet GPU's predictions are untouched, bit for bit.
  for (const dnn::Network* network : state.networks) {
    EXPECT_EQ(
        healed->PredictUs(*network, gpuexec::GpuByName(kQuietGpu), kBatch),
        original->PredictUs(*network, gpuexec::GpuByName(kQuietGpu), kBatch));
  }
  std::filesystem::remove_all(state.work_dir);
}

TEST(LifecycleControllerTest, IsDeterministicAcrossIdenticalRuns) {
  LoopState a, b;
  SeedLoop(&a, "det_a", 1.12);
  SeedLoop(&b, "det_b", 1.12);
  for (int epoch = 0; epoch < 25; ++epoch) {
    EXPECT_EQ(RunEpoch(&a), RunEpoch(&b)) << "state diverged at " << epoch;
  }
  EXPECT_EQ(a.controller->counters().transitions,
            b.controller->counters().transitions);
  EXPECT_EQ(a.controller->counters().promotions,
            b.controller->counters().promotions);
  const dnn::Network& probe = *a.networks[0];
  EXPECT_EQ(a.registry.Snapshot()->PredictUs(
                probe, gpuexec::GpuByName(kDriftGpu), kBatch),
            b.registry.Snapshot()->PredictUs(
                probe, gpuexec::GpuByName(kDriftGpu), kBatch));
  std::filesystem::remove_all(a.work_dir);
  std::filesystem::remove_all(b.work_dir);
}

TEST(LifecycleControllerTest, CorruptCandidateRejectedAtCanaryWithoutRollback) {
  // Phase 1: heal a real 12% drift so a good generation (gen 2) serves.
  LoopState state;
  SeedLoop(&state, "reject", 1.12);
  std::set<LifecycleState> visited;
  for (int epoch = 0; epoch < 40; ++epoch) {
    visited.insert(RunEpoch(&state));
    if (visited.count(LifecycleState::kPromoted) > 0) break;
  }
  ASSERT_TRUE(visited.count(LifecycleState::kPromoted));
  while (state.controller->state() != LifecycleState::kHealthy) {
    RunEpoch(&state);
  }
  std::shared_ptr<const KwModel> good = state.registry.Snapshot();
  const std::string good_dir = state.controller->serving_dir();
  const std::uint64_t rollbacks_before = state.registry.counters().rollbacks;

  // Phase 2: the truth goes insane — 20x on the drifted GPU. The refit
  // faithfully fits a 20x candidate; shadow scoring (which compares
  // against the same corrupt stream) lets it through, and the canary
  // gate must be the one to stop it: a candidate drifting 20x from the
  // serving generation fails the probe tolerance.
  for (const dnn::Network* network : state.networks) {
    state.truth[network->name()][kDriftGpu] =
        good->PredictUs(*network, gpuexec::GpuByName(kDriftGpu), kBatch) *
        20.0;
  }
  for (int epoch = 0; epoch < 60; ++epoch) {
    RunEpoch(&state);
    if (state.controller->counters().canary_rejections > 0) break;
  }
  const LifecycleCounters& counters = state.controller->counters();
  ASSERT_GE(counters.canary_rejections, 1u)
      << "canary never saw the corrupt candidate";
  // The good generation kept serving: same object, no rollback burned.
  EXPECT_EQ(state.registry.Snapshot(), good);
  EXPECT_EQ(state.controller->serving_dir(), good_dir);
  EXPECT_EQ(counters.rollbacks, 0u);
  EXPECT_EQ(state.registry.counters().rollbacks, rollbacks_before);
  EXPECT_GE(state.registry.counters().rejections, 1u);
  std::filesystem::remove_all(state.work_dir);
}

}  // namespace
}  // namespace gpuperf::models
