#include "models/prediction_plan.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "dataset/builder.h"
#include "dnn/builder.h"
#include "dnn/flops.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/kernel.h"
#include "models/bundle_registry.h"
#include "models/igkw_model.h"
#include "models/kw_model.h"
#include "models/predictor_stack.h"
#include "obs/metrics_registry.h"
#include "simsys/serving_matrix.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

constexpr std::int64_t kBatches[] = {1, 4, 16, 64};

/**
 * The equivalence fixture: the small zoo profiled on all seven Table 1
 * GPUs (the shared SmallCampaign covers only four), so the plan/predict
 * equality sweeps exercise every GPU's resolved tables.
 */
struct FullGpuCampaign {
  std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/16);
  dataset::Dataset data;
  dataset::NetworkSplit split;
  KwModel kw;

  FullGpuCampaign() {
    dataset::BuildOptions options;  // empty gpu_names = all seven GPUs
    data = dataset::BuildDataset(networks, options);
    split = dataset::SplitByNetwork(data, 0.15, 7);
    kw.Train(data, split);
  }

  static const FullGpuCampaign& Get() {
    static const FullGpuCampaign* const kCampaign = new FullGpuCampaign();
    return *kCampaign;
  }
};

/** Bitwise double equality — stricter than ==, which treats 0.0 == -0.0. */
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bits differ)";
}

/** A layer configuration no zoo network uses (uncovered-network path). */
dnn::Network ExoticNetwork() {
  dnn::NetworkBuilder b("exotic", "Test", dnn::Chw(37, 61, 61));
  b.Conv(41, 13, 5, 1);
  return b.Build();
}

TEST(PredictionPlanTest, KwPredictManyBitwiseEqualsPredictUsEverywhere) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  const dnn::Network exotic = ExoticNetwork();

  std::vector<PredictQuery> queries;
  for (const dnn::Network& network : campaign.networks) {
    for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
      for (std::int64_t batch : kBatches) {
        queries.push_back({&network, &gpu, batch});
      }
    }
  }
  // The uncovered-network path (unknown signature -> LW fallback terms).
  for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
    for (std::int64_t batch : kBatches) {
      queries.push_back({&exotic, &gpu, batch});
    }
  }

  std::vector<double> batched(queries.size());
  campaign.kw.PredictMany(queries, batched);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double expected = campaign.kw.PredictUs(
        *queries[i].network, *queries[i].gpu, queries[i].batch);
    EXPECT_TRUE(BitEqual(batched[i], expected))
        << queries[i].network->name() << " on " << queries[i].gpu->name
        << " batch " << queries[i].batch;
  }
}

TEST(PredictionPlanTest, IgkwPredictManyBitwiseEqualsPredictUs) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  IgkwModel igkw;
  igkw.Train(campaign.data, campaign.split, {"A100", "A40", "TITAN RTX"});

  // Target GPUs: every real spec (trained and untrained alike) plus a
  // hypothetical one, which exercises the spec-keyed plan slots and the
  // nearest-bandwidth fallback scaling.
  std::vector<gpuexec::GpuSpec> targets = gpuexec::AllGpus();
  gpuexec::GpuSpec hypothetical = gpuexec::GpuByName("A100");
  hypothetical.name = "HYPO-1";
  hypothetical.bandwidth_gbps *= 1.7;
  hypothetical.fp32_tflops *= 1.3;
  targets.push_back(hypothetical);

  const dnn::Network exotic = ExoticNetwork();
  std::vector<const dnn::Network*> networks;
  for (const dnn::Network& network : campaign.networks) {
    networks.push_back(&network);
  }
  networks.push_back(&exotic);

  std::vector<PredictQuery> queries;
  for (const dnn::Network* network : networks) {
    for (const gpuexec::GpuSpec& gpu : targets) {
      for (std::int64_t batch : kBatches) {
        queries.push_back({network, &gpu, batch});
      }
    }
  }
  std::vector<double> batched(queries.size());
  igkw.PredictMany(queries, batched);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double expected = igkw.PredictUs(*queries[i].network,
                                           *queries[i].gpu, queries[i].batch);
    EXPECT_TRUE(BitEqual(batched[i], expected))
        << queries[i].network->name() << " on " << queries[i].gpu->name
        << " batch " << queries[i].batch;
  }
}

TEST(PredictionPlanTest, StackPredictManyMatchesTiersAndPredictUs) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();

  // KW covers {A100, A40}; LW covers {A100, A40, V100}; E2E covers all
  // seven; nothing covers a hypothetical GPU -> every tier is reachable.
  dataset::BuildOptions kw_options;
  kw_options.gpu_names = {"A100", "A40"};
  dataset::Dataset kw_data =
      dataset::BuildDataset(campaign.networks, kw_options);
  KwModel kw;
  kw.Train(kw_data, dataset::SplitByNetwork(kw_data, 0.15, 7));

  LwModel lw_full;
  lw_full.Train(campaign.data, campaign.split);
  LwModel lw;
  for (const auto& [key, fit] : lw_full.fits()) {
    if (key.first == "A100" || key.first == "A40" || key.first == "V100") {
      lw.SetFit(key.first, key.second, fit);
    }
  }
  E2eModel e2e;
  e2e.Train(campaign.data, campaign.split);

  PredictorStack stack;
  stack.SetKw(std::move(kw));
  stack.SetLw(std::move(lw));
  stack.SetE2e(std::move(e2e));

  const dnn::Network exotic = ExoticNetwork();
  ASSERT_FALSE(FullGpuCampaign::Get().kw.CoverageFor(exotic, "A100").Full())
      << "exotic network must miss the mapping table";

  gpuexec::GpuSpec uncovered = gpuexec::GpuByName("V100");
  uncovered.name = "UNTRAINED-GPU";

  struct Case {
    const dnn::Network* network;
    const gpuexec::GpuSpec* gpu;
    PredictorTier expected;
  };
  const std::vector<Case> cases = {
      {&campaign.networks[0], &gpuexec::GpuByName("A100"), PredictorTier::kKw},
      {&exotic, &gpuexec::GpuByName("A100"), PredictorTier::kLw},
      {&campaign.networks[1], &gpuexec::GpuByName("V100"), PredictorTier::kLw},
      {&campaign.networks[2], &gpuexec::GpuByName("TITAN RTX"),
       PredictorTier::kE2e},
      {&campaign.networks[0], &uncovered, PredictorTier::kNone},
  };

  std::vector<PredictQuery> queries;
  std::vector<PredictorTier> expected_tiers;
  for (const Case& c : cases) {
    for (std::int64_t batch : kBatches) {
      queries.push_back({c.network, c.gpu, batch});
      expected_tiers.push_back(c.expected);
    }
  }
  std::vector<double> batched(queries.size());
  std::vector<PredictorTier> tiers(queries.size());
  stack.PredictManyWithTiers(queries, batched, tiers);

  PredictorStackCounters counters = stack.counters();
  EXPECT_EQ(counters.kw_hits, 4u);
  EXPECT_EQ(counters.lw_fallbacks, 8u);
  EXPECT_EQ(counters.e2e_fallbacks, 4u);
  EXPECT_EQ(counters.unanswered, 4u);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(tiers[i], expected_tiers[i]) << "query " << i;
    const double expected = stack.PredictUs(*queries[i].network,
                                            *queries[i].gpu, queries[i].batch);
    EXPECT_TRUE(BitEqual(batched[i], expected)) << "query " << i;
  }
}

TEST(PredictionPlanTest, ServingMatrixFillMatchesPerCellLoop) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  dataset::BuildOptions options;
  options.gpu_names = {"A100", "A40"};
  dataset::Dataset data = dataset::BuildDataset(campaign.networks, options);
  KwModel kw;
  kw.Train(data, dataset::SplitByNetwork(data, 0.15, 7));

  // V100 is untrained: its column must be the NaN degrade sentinel.
  const std::vector<const gpuexec::GpuSpec*> pool = {
      &gpuexec::GpuByName("A100"), &gpuexec::GpuByName("V100")};
  simsys::ServingMatrixBuffer buffer;
  std::vector<std::vector<double>> predicted;
  simsys::FillPredictedServingMatrix(kw, campaign.networks, pool, 16, buffer,
                                     predicted);

  ASSERT_EQ(predicted.size(), campaign.networks.size());
  for (std::size_t j = 0; j < campaign.networks.size(); ++j) {
    ASSERT_EQ(predicted[j].size(), pool.size());
    for (std::size_t g = 0; g < pool.size(); ++g) {
      if (kw.CoverageFor(campaign.networks[j], pool[g]->name).Full()) {
        EXPECT_TRUE(BitEqual(
            predicted[j][g],
            kw.PredictUs(campaign.networks[j], *pool[g], 16)))
            << campaign.networks[j].name() << " on " << pool[g]->name;
      } else {
        EXPECT_TRUE(std::isnan(predicted[j][g]))
            << campaign.networks[j].name() << " on " << pool[g]->name;
      }
    }
  }

  // Refills reuse the buffer and stay bit-identical.
  std::vector<std::vector<double>> again;
  simsys::FillPredictedServingMatrix(kw, campaign.networks, pool, 16, buffer,
                                     again);
  for (std::size_t j = 0; j < predicted.size(); ++j) {
    for (std::size_t g = 0; g < predicted[j].size(); ++g) {
      if (std::isnan(predicted[j][g])) {
        EXPECT_TRUE(std::isnan(again[j][g]));
      } else {
        EXPECT_TRUE(BitEqual(predicted[j][g], again[j][g]));
      }
    }
  }
}

TEST(PredictionPlanTest, DriversAreBatchLinear) {
  // The axiom that lets one plan serve every batch size: each cost
  // driver's batch-N feature is exactly batch * its per-sample value
  // (in int64, so the product the plan computes is the same number the
  // per-query path converts to double).
  for (const char* name : {"resnet50", "googlenet", "mobilenet_v2"}) {
    const dnn::Network network = zoo::BuildByName(name);
    for (const dnn::Layer& layer : network.layers()) {
      for (std::int64_t batch : kBatches) {
        EXPECT_EQ(batch * gpuexec::PerSampleDriverValue(
                              layer, gpuexec::CostDriver::kInput),
                  batch * layer.InputElements());
        EXPECT_EQ(batch * gpuexec::PerSampleDriverValue(
                              layer, gpuexec::CostDriver::kOperation),
                  dnn::LayerFlops(layer, batch));
        EXPECT_EQ(batch * gpuexec::PerSampleDriverValue(
                              layer, gpuexec::CostDriver::kOutput),
                  batch * layer.output.Elements());
      }
    }
  }
}

// --- Plan metrics + structured compile logs. -------------------------

std::vector<std::string>& CapturedLogLines() {
  static std::vector<std::string>* const kLines =
      new std::vector<std::string>();
  return *kLines;
}

void CaptureLogLine(LogLevel level, const std::string& line) {
  (void)level;
  CapturedLogLines().push_back(line);
}

TEST(PredictionPlanTest, PlanMetricsCountCompilesQueriesInvalidations) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& compiles =
      registry.counter("gpuperf_predictor_plan_compiles");
  obs::Counter& queries_counter =
      registry.counter("gpuperf_predictor_plan_queries");
  obs::Counter& invalidations =
      registry.counter("gpuperf_predictor_plan_invalidations");

  KwModel kw;
  kw.Train(campaign.data, campaign.split);

  SetMinLogLevel(LogLevel::kDebug);
  CapturedLogLines().clear();
  LogSink previous_sink = SetLogSinkForTest(&CaptureLogLine);

  const std::uint64_t compiles_0 = compiles.Value();
  const std::uint64_t queries_0 = queries_counter.Value();
  const std::uint64_t invalidations_0 = invalidations.Value();

  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const gpuexec::GpuSpec& a40 = gpuexec::GpuByName("A40");
  std::vector<PredictQuery> queries;
  for (std::int64_t batch : kBatches) {
    queries.push_back({&campaign.networks[0], &a100, batch});
  }
  for (std::int64_t batch : kBatches) {
    queries.push_back({&campaign.networks[0], &a40, batch});
  }
  std::vector<double> out(queries.size());
  kw.PredictMany(queries, out);
  // Two (network, GPU) pairs -> two compiles; eight answered queries.
  EXPECT_EQ(compiles.Value() - compiles_0, 2u);
  EXPECT_EQ(queries_counter.Value() - queries_0, 8u);
  EXPECT_EQ(invalidations.Value() - invalidations_0, 0u);

  // A repeat sweep hits the cached plans: queries count, compiles don't.
  kw.PredictMany(queries, out);
  EXPECT_EQ(compiles.Value() - compiles_0, 2u);
  EXPECT_EQ(queries_counter.Value() - queries_0, 16u);

  // Reusing a network name for a different architecture retires the
  // stale plan (invalidation) and compiles a replacement.
  dnn::NetworkBuilder shape_a("shape-shifter", "Test", dnn::Chw(3, 32, 32));
  shape_a.Conv(8, 3, 1, 1);
  const dnn::Network network_a = shape_a.Build();
  dnn::NetworkBuilder shape_b("shape-shifter", "Test", dnn::Chw(3, 64, 64));
  shape_b.Conv(16, 3, 1, 1);
  const dnn::Network network_b = shape_b.Build();
  const PredictQuery query_a[] = {{&network_a, &a100, 4}};
  const PredictQuery query_b[] = {{&network_b, &a100, 4}};
  double one[1];
  kw.PredictMany(query_a, one);
  EXPECT_EQ(invalidations.Value() - invalidations_0, 0u);
  kw.PredictMany(query_b, one);
  EXPECT_EQ(invalidations.Value() - invalidations_0, 1u);
  EXPECT_EQ(compiles.Value() - compiles_0, 4u);

  SetLogSinkForTest(previous_sink);
  SetMinLogLevel(LogLevel::kInfo);

  // Every compile emitted one structured debug line.
  int compile_lines = 0;
  for (const std::string& line : CapturedLogLines()) {
    if (line.find("prediction plan compiled") != std::string::npos) {
      ++compile_lines;
      EXPECT_NE(line.find("network="), std::string::npos) << line;
      EXPECT_NE(line.find("terms="), std::string::npos) << line;
    }
  }
  EXPECT_EQ(compile_lines, 4);
}

// Concurrent sweeps over one model: cold-cache compiles race through
// the PlanCache insert path, warm-cache sweeps share raw plan pointers.
// Run under -DGPUPERF_SANITIZE=thread this must be data-race-free.
TEST(PredictionPlanTest, ConcurrentPredictManySweepsAreClean) {
  const FullGpuCampaign& campaign = FullGpuCampaign::Get();
  KwModel kw;
  kw.Train(campaign.data, campaign.split);  // cold plan cache

  std::vector<PredictQuery> queries;
  for (std::size_t j = 0; j < 8 && j < campaign.networks.size(); ++j) {
    for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
      for (std::int64_t batch : kBatches) {
        queries.push_back({&campaign.networks[j], &gpu, batch});
      }
    }
  }
  std::vector<double> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected[i] = campaign.kw.PredictUs(*queries[i].network, *queries[i].gpu,
                                        queries[i].batch);
  }

  constexpr int kSweeps = 4;
  std::vector<std::vector<double>> results(
      kSweeps, std::vector<double>(queries.size()));
  ThreadPool pool(kSweeps);
  pool.ParallelFor(kSweeps, [&](std::size_t sweep) {
    kw.PredictMany(queries, results[sweep]);
  });
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(BitEqual(results[sweep][i], expected[i]))
          << "sweep " << sweep << " query " << i;
    }
  }
}

TEST(PredictionPlanTest, RegistryPromotionYieldsFreshPlanCaches) {
  obs::Counter& compiles = obs::MetricsRegistry::Global().counter(
      "gpuperf_predictor_plan_compiles");
  CanaryOptions canary;
  canary.probe_networks = {zoo::BuildByName("resnet18")};
  canary.batch = 16;

  BundleRegistry registry;
  ASSERT_TRUE(
      registry.TryPromote(gpuperf::testing::GoldenKwBundleDir(), canary).ok());
  const std::shared_ptr<const KwModel> gen1 = registry.Snapshot();
  ASSERT_NE(gen1, nullptr);

  const dnn::Network net = zoo::BuildByName("resnet18");
  const gpuexec::GpuSpec& a40 = gpuexec::GpuByName("A40");
  const std::uint64_t compiles_0 = compiles.Value();
  const PredictionPlan* plan1 = gen1->PlanFor(net, a40);
  EXPECT_EQ(compiles.Value() - compiles_0, 1u);
  EXPECT_EQ(gen1->PlanFor(net, a40), plan1);  // cached, no recompile
  EXPECT_EQ(compiles.Value() - compiles_0, 1u);
  EXPECT_TRUE(BitEqual(plan1->EvalUs(16), gen1->PredictUs(net, a40, 16)));

  // Promotion installs a new generation with an empty plan cache; the
  // held old generation keeps its compiled plans (that is the implicit
  // invalidation contract — plans never outlive their model).
  ASSERT_TRUE(
      registry.TryPromote(gpuperf::testing::GoldenKwBundleDir(), canary).ok());
  const std::shared_ptr<const KwModel> gen2 = registry.Snapshot();
  ASSERT_NE(gen2, gen1);
  const PredictionPlan* plan2 = gen2->PlanFor(net, a40);
  EXPECT_EQ(compiles.Value() - compiles_0, 2u);  // fresh cache compiled
  EXPECT_TRUE(BitEqual(plan2->EvalUs(16), gen2->PredictUs(net, a40, 16)));
  EXPECT_EQ(gen1->PlanFor(net, a40), plan1);  // old generation untouched
  EXPECT_EQ(compiles.Value() - compiles_0, 2u);

  // Rollback restores the previous generation object — and with it the
  // plans it already compiled.
  ASSERT_TRUE(registry.Rollback().ok());
  const std::shared_ptr<const KwModel> rolled_back = registry.Snapshot();
  EXPECT_EQ(rolled_back, gen1);
  EXPECT_EQ(rolled_back->PlanFor(net, a40), plan1);
  EXPECT_EQ(compiles.Value() - compiles_0, 2u);
}

}  // namespace
}  // namespace gpuperf::models
