// Deterministic per-GPU circuit breaker: closed -> open on consecutive
// failures, half-open after a sim-time cooldown, closed again after a
// successful probe. Everything is driven by explicit sim-time stamps, so
// the expected state at any instant is exact, not timing-dependent.

#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

BreakerPolicy Policy(int failures, double cooldown_ms = 10,
                     int probes = 1) {
  BreakerPolicy policy;
  policy.failure_threshold = failures;
  policy.cooldown_ms = cooldown_ms;
  policy.half_open_probes = probes;
  return policy;
}

constexpr double kMs = 1e3;  // sim time is in microseconds

TEST(CircuitBreakerTest, DefaultConstructedIsDisabledAndAlwaysAllows) {
  CircuitBreaker breaker;
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 100; ++i) breaker.OnFailure(i);
  EXPECT_TRUE(breaker.AllowsAt(1000));
  EXPECT_EQ(breaker.StateAt(1000), BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 0);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(Policy(3));
  breaker.OnFailure(0);
  breaker.OnFailure(1);
  EXPECT_TRUE(breaker.AllowsAt(2));
  breaker.OnFailure(2);
  EXPECT_FALSE(breaker.AllowsAt(3));
  EXPECT_EQ(breaker.StateAt(3), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(Policy(3));
  breaker.OnFailure(0);
  breaker.OnFailure(1);
  breaker.OnSuccess(2);  // streak broken
  breaker.OnFailure(3);
  breaker.OnFailure(4);
  EXPECT_TRUE(breaker.AllowsAt(5));  // only 2 consecutive
  breaker.OnFailure(5);
  EXPECT_FALSE(breaker.AllowsAt(6));
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndClosesOnProbeSuccess) {
  CircuitBreaker breaker(Policy(1, /*cooldown_ms=*/10));
  breaker.OnFailure(0);
  EXPECT_FALSE(breaker.AllowsAt(9 * kMs));  // still cooling down
  EXPECT_TRUE(breaker.AllowsAt(10 * kMs));  // half-open probe slot
  EXPECT_EQ(breaker.StateAt(10 * kMs), BreakerState::kHalfOpen);
  breaker.OnDispatch(10 * kMs);
  breaker.OnSuccess(11 * kMs);
  EXPECT_EQ(breaker.StateAt(11 * kMs), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowsAt(11 * kMs));
  EXPECT_EQ(breaker.opens(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  CircuitBreaker breaker(Policy(1, /*cooldown_ms=*/10));
  breaker.OnFailure(0);
  EXPECT_TRUE(breaker.AllowsAt(10 * kMs));
  breaker.OnDispatch(10 * kMs);
  breaker.OnFailure(11 * kMs);
  EXPECT_EQ(breaker.StateAt(11 * kMs), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2);
  // The new cooldown restarts from the re-trip, not the original trip.
  EXPECT_FALSE(breaker.AllowsAt(20 * kMs));
  EXPECT_TRUE(breaker.AllowsAt(21 * kMs));
}

TEST(CircuitBreakerTest, HalfOpenBoundsConcurrentProbes) {
  CircuitBreaker breaker(Policy(1, /*cooldown_ms=*/10, /*probes=*/2));
  breaker.OnFailure(0);
  EXPECT_TRUE(breaker.AllowsAt(10 * kMs));
  breaker.OnDispatch(10 * kMs);
  EXPECT_TRUE(breaker.AllowsAt(10 * kMs));  // second probe slot
  breaker.OnDispatch(10 * kMs);
  EXPECT_FALSE(breaker.AllowsAt(10 * kMs));  // both slots in flight
}

TEST(CircuitBreakerTest, StragglerResultsWhileOpenAreIgnored) {
  CircuitBreaker breaker(Policy(2, /*cooldown_ms=*/10));
  breaker.OnFailure(0);
  breaker.OnFailure(1);
  EXPECT_EQ(breaker.StateAt(2), BreakerState::kOpen);
  // A job dispatched before the trip completes while the breaker is
  // open: neither closes the breaker nor extends the cooldown.
  breaker.OnSuccess(3);
  EXPECT_EQ(breaker.StateAt(4), BreakerState::kOpen);
  breaker.OnFailure(5);
  EXPECT_EQ(breaker.opens(), 1);
  EXPECT_TRUE(breaker.AllowsAt(20 * kMs));  // cooldown from the trip, not 5
}

TEST(CircuitBreakerTest, HedgeOnHalfOpenBreakerCountsAsItsSingleProbe) {
  // ISSUE 9 satellite: a hedge dispatched to a half-open breaker claims
  // the breaker's single probe slot exactly like a normal dispatch...
  CircuitBreaker breaker(Policy(1, /*cooldown_ms=*/10, /*probes=*/1));
  breaker.OnFailure(0);
  EXPECT_EQ(breaker.StateAt(11 * kMs), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowsAt(11 * kMs));
  breaker.OnDispatch(11 * kMs);  // the hedge leg is the probe
  EXPECT_FALSE(breaker.AllowsAt(12 * kMs));  // slot taken, no second probe
  // ...and winning the hedge race is the probe success that closes it.
  breaker.OnSuccess(13 * kMs);
  EXPECT_EQ(breaker.StateAt(13 * kMs), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, CancelledHedgeProbeReleasesItsSlot) {
  // The losing hedge leg is cancelled, not failed: the probe slot must
  // come back (no wedged half-open breaker) without voting a verdict.
  CircuitBreaker breaker(Policy(1, /*cooldown_ms=*/10, /*probes=*/1));
  breaker.OnFailure(0);
  EXPECT_EQ(breaker.StateAt(11 * kMs), BreakerState::kHalfOpen);
  breaker.OnDispatch(11 * kMs);
  EXPECT_FALSE(breaker.AllowsAt(12 * kMs));
  breaker.OnCancel(12 * kMs);
  EXPECT_EQ(breaker.StateAt(12 * kMs), BreakerState::kHalfOpen);  // no close
  EXPECT_TRUE(breaker.AllowsAt(12 * kMs));  // but the slot is free again
}

TEST(CircuitBreakerTest, CancelWhileClosedOrOpenIsANoOp) {
  CircuitBreaker breaker(Policy(2, /*cooldown_ms=*/10));
  breaker.OnCancel(0);
  EXPECT_EQ(breaker.StateAt(0), BreakerState::kClosed);
  breaker.OnFailure(1);
  breaker.OnCancel(2);  // must not clear the failure streak
  breaker.OnFailure(3);
  EXPECT_EQ(breaker.StateAt(4), BreakerState::kOpen);
  breaker.OnCancel(5);
  EXPECT_EQ(breaker.StateAt(5), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace gpuperf
