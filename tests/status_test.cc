#include "common/status.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(StatusCode::kDataLoss, "bundle truncated");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(status.message(), "bundle truncated");
  EXPECT_EQ(status.ToString(), "DATA_LOSS: bundle truncated");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, HelperConstructorsSetTheirCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, AnnotatePrependsContext) {
  Status status = DataLossError("checksum mismatch");
  status.Annotate("kernel_models.csv").Annotate("loading bundle");
  EXPECT_EQ(status.message(),
            "loading bundle: kernel_models.csv: checksum mismatch");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(StatusTest, AnnotateIsNoOpOnOk) {
  Status status;
  status.Annotate("should not appear");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> error = NotFoundError("missing");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(error.status().message(), "missing");
}

TEST(StatusOrTest, MoveValueOut) {
  StatusOr<std::string> value = std::string("payload");
  std::string moved = std::move(value).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowAccessesMembers) {
  StatusOr<std::string> value = std::string("abc");
  EXPECT_EQ(value->size(), 3u);
}

TEST(StatusOrDeathTest, ValueOnErrorIsProgrammerError) {
  StatusOr<int> error = InternalError("boom");
  EXPECT_DEATH({ (void)error.value(); }, "value\\(\\) on error StatusOr");
}

Status PropagateIfNegative(int x) {
  GP_RETURN_IF_ERROR(x < 0 ? InvalidArgumentError("negative") : Status::Ok());
  return Status::Ok();
}

StatusOr<int> DoubleParsedInt(const std::string& text) {
  GP_ASSIGN_OR_RETURN(const int value, ParseInt(text));
  return 2 * value;
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(PropagateIfNegative(1).ok());
  Status status = PropagateIfNegative(-1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  StatusOr<int> doubled = DoubleParsedInt("21");
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);

  StatusOr<int> failed = DoubleParsedInt("banana");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("123").value(), 123);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInt64("12x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInt64("abc").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInt64("99999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseTest, ParseIntRejects32BitOverflow) {
  EXPECT_EQ(ParseInt("2147483647").value(), 2147483647);
  EXPECT_EQ(ParseInt("2147483648").status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ParseInt("-2147483649").status().code(), StatusCode::kOutOfRange);
}

TEST(ParseTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_EQ(ParseDouble("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDouble("1.5fast").status().code(),
            StatusCode::kInvalidArgument);
  // inf parses (strtod semantics); the finite variant rejects it below.
  EXPECT_TRUE(ParseDouble("inf").ok());
}

TEST(ParseTest, ParseFiniteDoubleRejectsNonFinite) {
  EXPECT_DOUBLE_EQ(ParseFiniteDouble("0.25").value(), 0.25);
  EXPECT_EQ(ParseFiniteDouble("inf").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseFiniteDouble("nan").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseFiniteDouble("1e999").status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace gpuperf
