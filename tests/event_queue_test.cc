#include "simsys/event_queue.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gpuperf::simsys {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(2.0, [&] { order.push_back(2); });
  queue.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  queue.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NowAdvancesToFiredEvent) {
  EventQueue queue;
  double seen = -1;
  queue.Schedule(7.5, [&] { seen = queue.NowUs(); });
  queue.Run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(queue.NowUs(), 7.5);
}

TEST(EventQueueTest, CallbacksCanScheduleMoreEvents) {
  EventQueue queue;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) queue.ScheduleAfter(1.0, step);
  };
  queue.Schedule(0.0, step);
  queue.Run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(queue.NowUs(), 9.0);
  EXPECT_EQ(queue.fired_count(), 10);
}

TEST(EventQueueTest, RunOneReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.RunOne());
  queue.Schedule(1.0, [] {});
  EXPECT_TRUE(queue.RunOne());
  EXPECT_FALSE(queue.RunOne());
}

TEST(EventQueueDeathTest, SchedulingIntoThePastAborts) {
  EventQueue queue;
  queue.Schedule(5.0, [] {});
  queue.Run();
  EXPECT_DEATH(queue.Schedule(4.0, [] {}), "past");
}

TEST(EventQueueDeathTest, NegativeDelayAborts) {
  EventQueue queue;
  EXPECT_DEATH(queue.ScheduleAfter(-1.0, [] {}), "check failed");
}

TEST(EventQueueTest, StressRandomEventsStayOrdered) {
  EventQueue queue;
  Rng rng(77);
  double last_fired = -1;
  bool ordered = true;
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.NextRange(0, 1000);
    queue.Schedule(t, [&queue, &last_fired, &ordered] {
      if (queue.NowUs() < last_fired) ordered = false;
      last_fired = queue.NowUs();
    });
  }
  queue.Run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(queue.fired_count(), 2000);
}

}  // namespace
}  // namespace gpuperf::simsys
