// Determinism of the parallel measurement campaign: BuildDataset must
// produce the same dataset — same row order, same interned ids, same
// bits — for every job count (an acceptance criterion of the parallel
// builder, not a best effort).

#include <vector>

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "dataset/dataset.h"
#include "zoo/zoo.h"

namespace gpuperf {
namespace {

void ExpectPoolsIdentical(const dataset::StringPool& a,
                          const dataset::StringPool& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) EXPECT_EQ(a.Get(i), b.Get(i));
}

void ExpectDatasetsIdentical(const dataset::Dataset& a,
                             const dataset::Dataset& b) {
  ExpectPoolsIdentical(a.gpus(), b.gpus());
  ExpectPoolsIdentical(a.networks(), b.networks());
  ExpectPoolsIdentical(a.kernels(), b.kernels());
  ExpectPoolsIdentical(a.signatures(), b.signatures());

  ASSERT_EQ(a.network_rows().size(), b.network_rows().size());
  for (std::size_t i = 0; i < a.network_rows().size(); ++i) {
    const dataset::NetworkRow& ra = a.network_rows()[i];
    const dataset::NetworkRow& rb = b.network_rows()[i];
    EXPECT_EQ(ra.gpu_id, rb.gpu_id);
    EXPECT_EQ(ra.network_id, rb.network_id);
    EXPECT_EQ(ra.family, rb.family);
    EXPECT_EQ(ra.batch, rb.batch);
    // Bit-identical, not approximately equal: the parallel build merges
    // results computed by the same deterministic per-combo code.
    EXPECT_EQ(ra.e2e_us, rb.e2e_us);
    EXPECT_EQ(ra.gpu_busy_us, rb.gpu_busy_us);
    EXPECT_EQ(ra.total_flops, rb.total_flops);
  }

  ASSERT_EQ(a.kernel_rows().size(), b.kernel_rows().size());
  for (std::size_t i = 0; i < a.kernel_rows().size(); ++i) {
    const dataset::KernelRow& ra = a.kernel_rows()[i];
    const dataset::KernelRow& rb = b.kernel_rows()[i];
    EXPECT_EQ(ra.gpu_id, rb.gpu_id);
    EXPECT_EQ(ra.network_id, rb.network_id);
    EXPECT_EQ(ra.kernel_id, rb.kernel_id);
    EXPECT_EQ(ra.signature_id, rb.signature_id);
    EXPECT_EQ(ra.layer_index, rb.layer_index);
    EXPECT_EQ(ra.layer_kind, rb.layer_kind);
    EXPECT_EQ(ra.true_driver, rb.true_driver);
    EXPECT_EQ(ra.family, rb.family);
    EXPECT_EQ(ra.batch, rb.batch);
    EXPECT_EQ(ra.time_us, rb.time_us);
    EXPECT_EQ(ra.layer_flops, rb.layer_flops);
    EXPECT_EQ(ra.input_elems, rb.input_elems);
    EXPECT_EQ(ra.output_elems, rb.output_elems);
  }
}

dataset::BuildOptions CampaignOptions(int jobs) {
  dataset::BuildOptions options;
  options.gpu_names = {"A100", "V100"};
  options.batch = 256;
  options.measured_batches = 2;  // keep the test fast; determinism is
                                 // per-combo, not per-batch-count
  options.jobs = jobs;
  return options;
}

TEST(ParallelBuildTest, ParallelMatchesSerialBitForBit) {
  const std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/16);
  const dataset::Dataset serial =
      dataset::BuildDataset(networks, CampaignOptions(/*jobs=*/1));
  const dataset::Dataset parallel =
      dataset::BuildDataset(networks, CampaignOptions(/*jobs=*/4));
  ASSERT_GT(serial.kernel_rows().size(), 0u);
  ExpectDatasetsIdentical(serial, parallel);
}

TEST(ParallelBuildTest, RepeatedParallelBuildsAreStable) {
  const std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/32);
  const dataset::Dataset first =
      dataset::BuildDataset(networks, CampaignOptions(/*jobs=*/4));
  const dataset::Dataset second =
      dataset::BuildDataset(networks, CampaignOptions(/*jobs=*/4));
  ExpectDatasetsIdentical(first, second);
}

TEST(ParallelBuildTest, TrainingWorkloadIsDeterministicToo) {
  const std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/64);
  dataset::BuildOptions serial_options = CampaignOptions(/*jobs=*/1);
  serial_options.workload = gpuexec::Workload::kTraining;
  serial_options.batch = 64;
  dataset::BuildOptions parallel_options = CampaignOptions(/*jobs=*/3);
  parallel_options.workload = gpuexec::Workload::kTraining;
  parallel_options.batch = 64;
  const dataset::Dataset serial =
      dataset::BuildDataset(networks, serial_options);
  const dataset::Dataset parallel =
      dataset::BuildDataset(networks, parallel_options);
  ASSERT_GT(serial.kernel_rows().size(), 0u);
  ExpectDatasetsIdentical(serial, parallel);
}

TEST(ParallelBuildTest, OomSkipsMatchAcrossJobCounts) {
  // Quadro P620 (2 GB) drops most networks at BS 512 while A100 keeps
  // them; the work-list filter must not depend on the job count.
  const std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/8);
  dataset::BuildOptions serial_options = CampaignOptions(/*jobs=*/1);
  serial_options.gpu_names = {"A100", "Quadro P620"};
  serial_options.batch = 512;
  dataset::BuildOptions parallel_options = CampaignOptions(/*jobs=*/4);
  parallel_options.gpu_names = {"A100", "Quadro P620"};
  parallel_options.batch = 512;
  const dataset::Dataset serial =
      dataset::BuildDataset(networks, serial_options);
  const dataset::Dataset parallel =
      dataset::BuildDataset(networks, parallel_options);
  ExpectDatasetsIdentical(serial, parallel);
}

}  // namespace
}  // namespace gpuperf
