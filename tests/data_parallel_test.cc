#include "simsys/data_parallel.h"

#include <gtest/gtest.h>

namespace gpuperf::simsys {
namespace {

DataParallelConfig Config(int gpus, double fabric, bool overlap = true) {
  DataParallelConfig config;
  config.num_gpus = gpus;
  config.link_bandwidth_gbps = fabric;
  config.link_latency_us = 1.0;
  config.overlap = overlap;
  return config;
}

TEST(RingAllReduceTest, SingleGpuIsFree) {
  EXPECT_DOUBLE_EQ(RingAllReduceUs(1'000'000, Config(1, 16)), 0.0);
}

TEST(RingAllReduceTest, MatchesClosedForm) {
  // 2(N-1)/N * B / bw + 2(N-1) * latency.
  const DataParallelConfig config = Config(4, 10);
  const double volume =
      2.0 * 3.0 / 4.0 * 1'000'000 / (10e9) * 1e6;  // us
  EXPECT_NEAR(RingAllReduceUs(1'000'000, config), volume + 6.0, 1e-9);
}

TEST(RingAllReduceTest, VolumeTermSaturatesWithGpuCount) {
  // The per-link volume factor 2(N-1)/N approaches 2 as N grows.
  const double at_2 = RingAllReduceUs(100'000'000, Config(2, 10));
  const double at_64 = RingAllReduceUs(100'000'000, Config(64, 10));
  EXPECT_LT(at_64, 2.1 * at_2);
}

TEST(DataParallelTest, SingleGpuStepIsPureCompute) {
  DataParallelResult result = SimulateDataParallelStep(
      {100, 200}, {200, 400}, {1'000'000, 2'000'000}, Config(1, 16));
  EXPECT_DOUBLE_EQ(result.step_time_us, 900.0);
  EXPECT_DOUBLE_EQ(result.scaling_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(result.comm_us, 0.0);
}

TEST(DataParallelTest, NoOverlapAddsFullCommunication) {
  DataParallelResult result = SimulateDataParallelStep(
      {100}, {200}, {10'000'000}, Config(4, 10, /*overlap=*/false));
  EXPECT_NEAR(result.step_time_us, 300.0 + result.comm_us, 1e-9);
  EXPECT_DOUBLE_EQ(result.exposed_comm_us, result.comm_us);
}

TEST(DataParallelTest, OverlapNeverSlowerThanBlocking) {
  const std::vector<double> fwd(20, 50.0), bwd(20, 100.0);
  const std::vector<std::int64_t> grads(20, 4'000'000);
  for (int gpus : {2, 4, 8}) {
    for (double fabric : {4.0, 32.0, 256.0}) {
      DataParallelResult overlap = SimulateDataParallelStep(
          fwd, bwd, grads, Config(gpus, fabric, true));
      DataParallelResult blocking = SimulateDataParallelStep(
          fwd, bwd, grads, Config(gpus, fabric, false));
      EXPECT_LE(overlap.step_time_us, blocking.step_time_us + 1e-6)
          << gpus << " gpus @ " << fabric;
    }
  }
}

TEST(DataParallelTest, StepBoundedBelowByComputeAndComm) {
  const std::vector<double> fwd(10, 100.0), bwd(10, 150.0);
  const std::vector<std::int64_t> grads(10, 8'000'000);
  DataParallelResult result =
      SimulateDataParallelStep(fwd, bwd, grads, Config(4, 8));
  EXPECT_GE(result.step_time_us, result.compute_us - 1e-9);
  // The serialized fabric cannot finish before its total occupancy.
  double volume_us = 0;
  for (std::int64_t g : grads) {
    volume_us += 2.0 * 3.0 / 4.0 * static_cast<double>(g) / 8e9 * 1e6;
  }
  EXPECT_GE(result.step_time_us, volume_us - 1e-9);
}

TEST(DataParallelTest, FastFabricHidesCommunication) {
  const std::vector<double> fwd(10, 100.0), bwd(10, 300.0);
  const std::vector<std::int64_t> grads(10, 1'000'000);
  DataParallelResult result =
      SimulateDataParallelStep(fwd, bwd, grads, Config(4, 300));
  EXPECT_LT(result.exposed_comm_us, 0.05 * result.compute_us);
  EXPECT_GT(result.scaling_efficiency, 0.95);
}

TEST(DataParallelTest, SlowFabricExposesCommunication) {
  const std::vector<double> fwd(10, 10.0), bwd(10, 20.0);
  const std::vector<std::int64_t> grads(10, 50'000'000);
  DataParallelResult result =
      SimulateDataParallelStep(fwd, bwd, grads, Config(8, 2));
  EXPECT_GT(result.exposed_comm_us, result.compute_us);
  EXPECT_LT(result.scaling_efficiency, 0.5);
}

TEST(DataParallelTest, ZeroGradientLayersDoNotCommunicate) {
  DataParallelResult result = SimulateDataParallelStep(
      {100, 100}, {50, 50}, {0, 0}, Config(4, 1));
  EXPECT_DOUBLE_EQ(result.comm_us, 0.0);
  EXPECT_NEAR(result.step_time_us, 300.0, 1e-9);
}

TEST(DataParallelDeathTest, MismatchedVectorsAbort) {
  std::vector<double> fwd{1.0};
  std::vector<double> bwd{1.0, 2.0};
  std::vector<std::int64_t> grads{1};
  EXPECT_DEATH(SimulateDataParallelStep(fwd, bwd, grads, Config(2, 16)),
               "check failed");
}

}  // namespace
}  // namespace gpuperf::simsys
