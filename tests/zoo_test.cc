#include "zoo/zoo.h"

#include <set>

#include <gtest/gtest.h>

#include "dnn/flops.h"
#include "zoo/resnet.h"
#include "zoo/transformer.h"
#include "zoo/vgg.h"

namespace gpuperf::zoo {
namespace {

TEST(ZooTest, FullZooHasPaperSize) {
  std::vector<dnn::Network> networks = ImageClassificationZoo();
  EXPECT_EQ(networks.size(), static_cast<std::size_t>(kImageZooSize));
}

TEST(ZooTest, NamesAreUnique) {
  std::vector<dnn::Network> networks = ImageClassificationZoo();
  std::set<std::string> names;
  for (const dnn::Network& network : networks) {
    EXPECT_TRUE(names.insert(network.name()).second)
        << "duplicate: " << network.name();
  }
}

TEST(ZooTest, DeterministicAcrossCalls) {
  std::vector<dnn::Network> a = ImageClassificationZoo();
  std::vector<dnn::Network> b = ImageClassificationZoo();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name(), b[i].name());
    EXPECT_EQ(a[i].layers().size(), b[i].layers().size());
    EXPECT_EQ(dnn::NetworkFlops(a[i], 1), dnn::NetworkFlops(b[i], 1));
  }
}

TEST(ZooTest, SmallZooStrides) {
  EXPECT_EQ(SmallZoo(16).size(), (kImageZooSize + 15) / 16);
}

TEST(ZooTest, EveryNetworkHasPositiveFlopsAndLayers) {
  for (const dnn::Network& network : SmallZoo(8)) {
    EXPECT_GT(network.layers().size(), 3u) << network.name();
    EXPECT_GT(dnn::NetworkFlops(network, 1), 0) << network.name();
    EXPECT_GT(network.ParameterCount(), 0) << network.name();
  }
}

struct NameCase {
  const char* name;
  int min_layers;
};

class BuildByNameTest : public ::testing::TestWithParam<NameCase> {};

TEST_P(BuildByNameTest, BuildsAndIsNamedCorrectly) {
  const NameCase c = GetParam();
  dnn::Network network = BuildByName(c.name);
  EXPECT_EQ(network.name(), c.name);
  EXPECT_GE(static_cast<int>(network.layers().size()), c.min_layers);
}

INSTANTIATE_TEST_SUITE_P(
    Names, BuildByNameTest,
    ::testing::Values(NameCase{"resnet18", 40}, NameCase{"resnet50", 100},
                      NameCase{"resnet44", 90}, NameCase{"resnet62", 120},
                      NameCase{"resnet77", 150},
                      NameCase{"densenet121", 300},
                      NameCase{"densenet169", 400},
                      NameCase{"densenet201", 500},
                      NameCase{"vgg16_bn", 40}, NameCase{"vgg19", 25},
                      NameCase{"alexnet", 15}, NameCase{"googlenet", 100},
                      NameCase{"squeezenet1_0", 30},
                      NameCase{"mobilenet_v2", 100},
                      NameCase{"shufflenet_v1", 100},
                      NameCase{"bert_base", 100}));

TEST(BuildByNameDeathTest, UnknownNameIsFatal) {
  EXPECT_EXIT(BuildByName("not_a_network"), ::testing::ExitedWithCode(1),
              "unknown network");
}

TEST(BuildByNameDeathTest, InvalidResNetDepthIsFatal) {
  // 60 is not 3*blocks+2.
  EXPECT_EXIT(BuildByName("resnet60"), ::testing::ExitedWithCode(1),
              "3\\*blocks\\+2");
}

TEST(ResNetTest, Resnet77HasExpectedDepth) {
  // 3 * 25 + 2 = 77: 25 bottleneck blocks of 3 convs, stem, classifier.
  dnn::Network network = BuildByName("resnet77");
  int convs = 0, linears = 0;
  for (const dnn::Layer& layer : network.layers()) {
    // Count only the main-path convolutions (3x3 and first 1x1 and last
    // 1x1 of blocks + stem); downsample shortcuts add extras.
    if (layer.kind == dnn::LayerKind::kConv2d) ++convs;
    if (layer.kind == dnn::LayerKind::kLinear) ++linears;
  }
  EXPECT_GE(convs, 76);  // 25 * 3 + 1 stem = 76, plus 4 shortcuts
  EXPECT_EQ(linears, 1);
}

TEST(ResNetTest, StandardResnet50StructureMatchesTorchvision) {
  dnn::Network network = BuildStandardResNet(50);
  int convs = 0;
  for (const dnn::Layer& layer : network.layers()) {
    if (layer.kind == dnn::LayerKind::kConv2d) ++convs;
  }
  EXPECT_EQ(convs, 53);  // torchvision resnet50 has 53 convolutions
}

TEST(VggTest, Vgg16Has13Convs3Linears) {
  dnn::Network network = BuildStandardVgg(16, false);
  int convs = 0, linears = 0;
  for (const dnn::Layer& layer : network.layers()) {
    if (layer.kind == dnn::LayerKind::kConv2d) ++convs;
    if (layer.kind == dnn::LayerKind::kLinear) ++linears;
  }
  EXPECT_EQ(convs, 13);
  EXPECT_EQ(linears, 3);
}

TEST(ZooTest, CustomResnetFamilyMonotoneInBlocks) {
  // More blocks means more FLOPs (Figure 4's x axis).
  std::int64_t previous = 0;
  for (int blocks : {6, 10, 16, 24, 32}) {
    dnn::Network network = BuildResNetWithBlocks(blocks);
    const std::int64_t flops = dnn::NetworkFlops(network, 1);
    EXPECT_GT(flops, previous);
    previous = flops;
  }
}

TEST(TransformerTest, BertBaseParameterCount) {
  // BERT-base is ~110M parameters (23.8M of which are embeddings).
  dnn::Network network = BuildStandardTransformer("bert_base");
  const double millions =
      static_cast<double>(network.ParameterCount()) / 1e6;
  EXPECT_NEAR(millions, 109.0, 6.0);
}

TEST(TransformerTest, SequenceLengthInName) {
  EXPECT_EQ(BuildStandardTransformer("bert_tiny", 128).name(), "bert_tiny");
  EXPECT_EQ(BuildStandardTransformer("bert_tiny", 64).name(),
            "bert_tiny-s64");
}

TEST(TransformerZooTest, AllPresetsTimesSeqLens) {
  std::vector<dnn::Network> networks = TransformerZoo();
  EXPECT_EQ(networks.size(), 7u * 5u);
  std::set<std::string> names;
  for (const dnn::Network& network : networks) {
    EXPECT_TRUE(names.insert(network.name()).second);
    EXPECT_EQ(network.family(), "Transformer");
  }
}

TEST(ZooTest, FamiliesArePopulated) {
  std::set<std::string> families;
  for (const dnn::Network& network : SmallZoo(4)) {
    families.insert(network.family());
  }
  EXPECT_GE(families.size(), 5u);
  EXPECT_TRUE(families.count("ResNet"));
  EXPECT_TRUE(families.count("VGG"));
}

}  // namespace
}  // namespace gpuperf::zoo
