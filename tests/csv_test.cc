#include "common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvParseLineTest, SplitsSimpleFields) {
  EXPECT_EQ(CsvParseLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseLineTest, KeepsEmptyFields) {
  EXPECT_EQ(CsvParseLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(CsvParseLine(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseLineTest, HandlesQuotedCommasAndQuotes) {
  EXPECT_EQ(CsvParseLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(CsvParseLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvRoundTripTest, WriteThenReadPreservesContent) {
  const std::string path = TempPath("gpuperf_csv_roundtrip.csv");
  {
    CsvWriter writer(path);
    writer.WriteRow({"name", "value", "note"});
    writer.WriteRow({"conv,1", "3.14", "has \"quote\""});
    writer.WriteRow({"", "-7", "plain"});
  }
  CsvTable table = ReadCsv(path);
  ASSERT_EQ(table.header.size(), 3u);
  EXPECT_EQ(table.header[0], "name");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "conv,1");
  EXPECT_EQ(table.rows[0][2], "has \"quote\"");
  EXPECT_EQ(table.rows[1][0], "");
  EXPECT_EQ(table.rows[1][1], "-7");
  std::remove(path.c_str());
}

TEST(CsvTableTest, ColumnIndexFindsColumns) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  EXPECT_EQ(table.ColumnIndex("a"), 0u);
  EXPECT_EQ(table.ColumnIndex("c"), 2u);
}

TEST(CsvTableDeathTest, MissingColumnIsFatal) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_EXIT(table.ColumnIndex("zz"), ::testing::ExitedWithCode(1),
              "column not found");
}

TEST(CsvDeathTest, MissingFileIsFatal) {
  EXPECT_EXIT(ReadCsv("/nonexistent/dir/file.csv"),
              ::testing::ExitedWithCode(1), "cannot open");
}

}  // namespace
}  // namespace gpuperf
