#include "common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/random.h"

namespace gpuperf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvParseLineTest, SplitsSimpleFields) {
  EXPECT_EQ(CsvParseLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseLineTest, KeepsEmptyFields) {
  EXPECT_EQ(CsvParseLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(CsvParseLine(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseLineTest, HandlesQuotedCommasAndQuotes) {
  EXPECT_EQ(CsvParseLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(CsvParseLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvRoundTripTest, WriteThenReadPreservesContent) {
  const std::string path = TempPath("gpuperf_csv_roundtrip.csv");
  {
    CsvWriter writer(path);
    writer.WriteRow({"name", "value", "note"});
    writer.WriteRow({"conv,1", "3.14", "has \"quote\""});
    writer.WriteRow({"", "-7", "plain"});
  }
  CsvTable table = ReadCsv(path);
  ASSERT_EQ(table.header.size(), 3u);
  EXPECT_EQ(table.header[0], "name");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "conv,1");
  EXPECT_EQ(table.rows[0][2], "has \"quote\"");
  EXPECT_EQ(table.rows[1][0], "");
  EXPECT_EQ(table.rows[1][1], "-7");
  std::remove(path.c_str());
}

TEST(CsvTableTest, ColumnIndexFindsColumns) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  EXPECT_EQ(table.ColumnIndex("a"), 0u);
  EXPECT_EQ(table.ColumnIndex("c"), 2u);
}

TEST(CsvTableDeathTest, MissingColumnIsFatal) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_EXIT(table.ColumnIndex("zz"), ::testing::ExitedWithCode(1),
              "column not found");
}

TEST(CsvDeathTest, MissingFileIsFatal) {
  EXPECT_EXIT(ReadCsv("/nonexistent/dir/file.csv"),
              ::testing::ExitedWithCode(1), "cannot open");
}

// --- Recoverable parsing: every error carries path:line context.

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

TEST(CsvStatusTest, MissingFileIsNotFound) {
  StatusOr<CsvTable> table = TryReadCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
  EXPECT_NE(table.status().message().find("/nonexistent/dir/file.csv"),
            std::string::npos);
}

TEST(CsvStatusTest, RaggedRowNamesPathAndLine) {
  const std::string path = TempPath("gpuperf_csv_ragged.csv");
  WriteFile(path, "a,b\n1,2\n3,4,5\n");
  StatusOr<CsvTable> table = TryReadCsv(path);
  ASSERT_FALSE(table.ok());
  // The bad row is on physical line 3 of the file.
  EXPECT_NE(table.status().message().find(path + ":3"), std::string::npos)
      << table.status().message();
  EXPECT_NE(table.status().message().find("expected 2 fields, got 3"),
            std::string::npos)
      << table.status().message();
  std::remove(path.c_str());
}

TEST(CsvStatusTest, UnterminatedQuoteNamesPathAndLine) {
  const std::string path = TempPath("gpuperf_csv_quote.csv");
  WriteFile(path, "a,b\n\"oops,2\n");
  StatusOr<CsvTable> table = TryReadCsv(path);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(table.status().message().find(path + ":2"), std::string::npos)
      << table.status().message();
  std::remove(path.c_str());
}

TEST(CsvStatusTest, EmptyFileIsAnError) {
  const std::string path = TempPath("gpuperf_csv_empty.csv");
  WriteFile(path, "");
  StatusOr<CsvTable> table = TryReadCsv(path);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("empty file"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvStatusTest, FindColumnReportsHeaderLine) {
  const std::string path = TempPath("gpuperf_csv_col.csv");
  WriteFile(path, "a,b\n1,2\n");
  CsvTable table = TryReadCsv(path).value();
  StatusOr<std::size_t> missing = table.FindColumn("zz");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find(path + ":1"), std::string::npos)
      << missing.status().message();
  EXPECT_NE(missing.status().message().find("missing column 'zz'"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvStatusTest, RowLocationIsOneBasedPhysicalLine) {
  const std::string path = TempPath("gpuperf_csv_loc.csv");
  WriteFile(path, "a,b\n1,2\n3,4\n");
  CsvTable table = TryReadCsv(path).value();
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.RowLocation(0), path + ":2");
  EXPECT_EQ(table.RowLocation(1), path + ":3");
  std::remove(path.c_str());
}

// --- Seeded randomized-mutation sweep ("mini-fuzz"). A mutated CSV may
// still be legal — unlike the checksummed bundles there is no integrity
// gate — so the contract here is weaker but just as important: TryReadCsv
// must never crash, and anything it *does* accept must be structurally
// consistent (rectangular rows, matching line map). Seeded Rng makes
// every failing trial a repro.
TEST(CsvFuzzTest, RandomMutationsNeverCrashAndAcceptedTablesAreConsistent) {
  const std::string base =
      "name,count,value\n"
      "alpha,1,2.5\n"
      "\"beta,x\",2,3.5\n"
      "gamma,3,\"say \"\"hi\"\"\"\n";
  Rng rng(0xC57'F022);
  const std::string path = TempPath("gpuperf_csv_fuzz.csv");
  for (int trial = 0; trial < 256; ++trial) {
    SCOPED_TRACE(trial);
    std::string content = base;
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits && !content.empty(); ++e) {
      const std::size_t pos = rng.NextBelow(content.size());
      switch (rng.NextBelow(4)) {
        case 0:
          content[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        case 1:
          content.insert(pos, 1, static_cast<char>(rng.NextBelow(256)));
          break;
        case 2:
          content.erase(pos, 1);
          break;
        default:
          content.resize(pos);
          break;
      }
    }
    WriteFile(path, content);
    StatusOr<CsvTable> table = TryReadCsv(path);  // must not abort
    if (table.ok()) {
      EXPECT_FALSE(table->header.empty());
      EXPECT_EQ(table->rows.size(), table->row_lines.size());
      for (const std::vector<std::string>& row : table->rows) {
        EXPECT_EQ(row.size(), table->header.size());
      }
    } else {
      // Errors must carry an actionable location, not just a category.
      EXPECT_NE(table.status().message().find(path), std::string::npos)
          << table.status().message();
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpuperf
