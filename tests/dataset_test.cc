#include "dataset/dataset.h"

#include <cstdio>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::dataset {
namespace {

TEST(StringPoolTest, InternsAndFinds) {
  StringPool pool;
  const int a = pool.Intern("alpha");
  const int b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Find("beta"), b);
  EXPECT_EQ(pool.Find("gamma"), -1);
  EXPECT_EQ(pool.Get(a), "alpha");
  EXPECT_EQ(pool.size(), 2);
}

TEST(StringPoolDeathTest, OutOfRangeGetAborts) {
  StringPool pool;
  EXPECT_DEATH(pool.Get(0), "check failed");
}

TEST(BuilderTest, RowCountsMatchCampaign) {
  const auto& campaign = testing::SmallCampaign::Get();
  // 4 GPUs x N networks, minus the combos cleaned for exceeding device
  // memory (the paper's out-of-memory data cleaning).
  EXPECT_LE(campaign.data().network_rows().size(),
            4 * campaign.networks().size());
  EXPECT_GE(campaign.data().network_rows().size(),
            3 * campaign.networks().size());
  EXPECT_GT(campaign.data().kernel_rows().size(), 10000u);
  EXPECT_EQ(campaign.data().gpus().size(), 4);
}

TEST(BuilderTest, OomCombosAreCleaned) {
  // An 11 GB GTX 1080 Ti cannot hold the biggest BS-512 networks; the
  // builder must skip them, and must keep everything when the check is
  // disabled.
  const auto& campaign = testing::SmallCampaign::Get();
  const int gtx = campaign.data().gpus().Find("GTX 1080 Ti");
  const int a100 = campaign.data().gpus().Find("A100");
  ASSERT_GE(gtx, 0);
  std::size_t gtx_rows = 0, a100_rows = 0;
  for (const NetworkRow& row : campaign.data().network_rows()) {
    if (row.gpu_id == gtx) ++gtx_rows;
    if (row.gpu_id == a100) ++a100_rows;
  }
  EXPECT_LT(gtx_rows, a100_rows);

  BuildOptions keep_all;
  keep_all.gpu_names = {"GTX 1080 Ti"};
  keep_all.skip_oom = false;
  Dataset full = BuildDataset(zoo::SmallZoo(64), keep_all);
  EXPECT_EQ(full.network_rows().size(), zoo::SmallZoo(64).size());
}

TEST(BuilderTest, KernelRowFeaturesArePopulated) {
  const auto& campaign = testing::SmallCampaign::Get();
  for (const KernelRow& row : campaign.data().kernel_rows()) {
    EXPECT_GT(row.time_us, 0.0);
    EXPECT_GT(row.input_elems, 0);
    EXPECT_GT(row.output_elems, 0);
    EXPECT_EQ(row.batch, 512);
    EXPECT_GE(row.layer_flops, 0);
  }
}

TEST(KernelRowTest, DriverValueSelectsFeature) {
  KernelRow row;
  row.input_elems = 10;
  row.layer_flops = 20;
  row.output_elems = 30;
  EXPECT_EQ(row.DriverValue(gpuexec::CostDriver::kInput), 10);
  EXPECT_EQ(row.DriverValue(gpuexec::CostDriver::kOperation), 20);
  EXPECT_EQ(row.DriverValue(gpuexec::CostDriver::kOutput), 30);
}

TEST(CsvRoundTripTest, SaveLoadPreservesEverything) {
  // A small fresh dataset for speed.
  BuildOptions options;
  options.gpu_names = {"V100"};
  options.batch = 64;
  Dataset original = BuildDataset(zoo::SmallZoo(64), options);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_ds_test").string();
  std::filesystem::create_directories(dir);
  original.SaveCsv(dir);
  Dataset loaded = Dataset::LoadCsv(dir);

  ASSERT_EQ(loaded.network_rows().size(), original.network_rows().size());
  ASSERT_EQ(loaded.kernel_rows().size(), original.kernel_rows().size());
  for (std::size_t i = 0; i < original.kernel_rows().size(); ++i) {
    const KernelRow& a = original.kernel_rows()[i];
    const KernelRow& b = loaded.kernel_rows()[i];
    EXPECT_EQ(original.kernels().Get(a.kernel_id),
              loaded.kernels().Get(b.kernel_id));
    EXPECT_EQ(original.signatures().Get(a.signature_id),
              loaded.signatures().Get(b.signature_id));
    EXPECT_EQ(a.layer_kind, b.layer_kind);
    EXPECT_EQ(a.true_driver, b.true_driver);
    EXPECT_EQ(a.family, b.family);
    EXPECT_NEAR(a.time_us, b.time_us, 1e-5);
    EXPECT_EQ(a.layer_flops, b.layer_flops);
  }
  for (std::size_t i = 0; i < original.network_rows().size(); ++i) {
    const NetworkRow& a = original.network_rows()[i];
    const NetworkRow& b = loaded.network_rows()[i];
    EXPECT_EQ(original.networks().Get(a.network_id),
              loaded.networks().Get(b.network_id));
    EXPECT_NEAR(a.e2e_us, b.e2e_us, 1e-5);
    EXPECT_EQ(a.total_flops, b.total_flops);
  }
  std::filesystem::remove_all(dir);
}

class SplitFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionTest, PartitionIsCleanAndSized) {
  const double fraction = GetParam();
  const auto& campaign = testing::SmallCampaign::Get();
  NetworkSplit split = SplitByNetwork(campaign.data(), fraction, 7);
  const int total = campaign.data().networks().size();
  EXPECT_EQ(split.train_ids.size() + split.test_ids.size(),
            static_cast<std::size_t>(total));
  // No overlap.
  std::set<int> test_set(split.test_ids.begin(), split.test_ids.end());
  for (int id : split.train_ids) EXPECT_FALSE(test_set.count(id));
  // Expected size within one.
  EXPECT_NEAR(static_cast<double>(split.test_ids.size()),
              std::max(1.0, fraction * total), 1.0);
  // IsTest agrees with membership.
  for (int id : split.test_ids) EXPECT_TRUE(split.IsTest(id));
  for (int id : split.train_ids) EXPECT_FALSE(split.IsTest(id));
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionTest,
                         ::testing::Values(0.05, 0.15, 0.3, 0.5));

TEST(SplitTest, DeterministicPerSeedAndVariesAcrossSeeds) {
  const auto& campaign = testing::SmallCampaign::Get();
  NetworkSplit a = SplitByNetwork(campaign.data(), 0.15, 1);
  NetworkSplit b = SplitByNetwork(campaign.data(), 0.15, 1);
  NetworkSplit c = SplitByNetwork(campaign.data(), 0.15, 2);
  EXPECT_EQ(a.test_ids, b.test_ids);
  EXPECT_NE(a.test_ids, c.test_ids);
}

TEST(SplitDeathTest, BadFractionAborts) {
  const auto& campaign = testing::SmallCampaign::Get();
  EXPECT_DEATH(SplitByNetwork(campaign.data(), 0.0, 1), "check failed");
  EXPECT_DEATH(SplitByNetwork(campaign.data(), 1.0, 1), "check failed");
}

TEST(BuilderTest, TraceOrderGroupsLayerKernels) {
  // Mapping-table construction relies on consecutive rows per layer.
  const auto& campaign = testing::SmallCampaign::Get();
  const auto& rows = campaign.data().kernel_rows();
  std::set<std::tuple<int, int, int>> closed;
  std::tuple<int, int, int> current{-1, -1, -1};
  for (const KernelRow& row : rows) {
    std::tuple<int, int, int> key{row.gpu_id, row.network_id,
                                  row.layer_index};
    if (key != current) {
      EXPECT_FALSE(closed.count(key)) << "layer group re-opened";
      closed.insert(current);
      current = key;
    }
  }
}

}  // namespace
}  // namespace gpuperf::dataset
