#include "models/igkw_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "gpuexec/profiler.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

class IgkwModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new IgkwModel();
    // TITAN RTX is deliberately excluded from the training GPUs.
    model_->Train(SmallCampaign::Get().data(), SmallCampaign::Get().split(),
                  {"A100", "A40", "GTX 1080 Ti"});
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static IgkwModel* model_;
};

IgkwModel* IgkwModelTest::model_ = nullptr;

TEST_F(IgkwModelTest, PredictsUnseenGpuWithinPaperBallpark) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  gpuexec::Profiler profiler(campaign.oracle());
  std::vector<double> predicted, measured;
  for (const dnn::Network* net : campaign.TestNetworks()) {
    predicted.push_back(model_->PredictUs(*net, titan, 512));
    measured.push_back(profiler.MeasureE2eUs(*net, titan, 512));
  }
  // Paper: 15.2%; allow margin on the small campaign but demand that the
  // model is clearly usable on a GPU it never saw.
  EXPECT_LT(Mape(predicted, measured), 0.35);
}

TEST_F(IgkwModelTest, HigherBandwidthNeverSlower) {
  dnn::Network net = zoo::BuildByName("resnet50");
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  double previous = 1e300;
  for (double bw = 200; bw <= 1600; bw += 100) {
    const double t = model_->PredictUs(net, titan.WithBandwidth(bw), 512);
    EXPECT_LE(t, previous * 1.0001) << "bw " << bw;
    previous = t;
  }
}

TEST_F(IgkwModelTest, BandwidthReturnsDiminish) {
  // Compute-bound components put a floor under the predicted time: going
  // 800 -> 1600 GB/s helps less than 200 -> 400 GB/s (case study 1 knee).
  dnn::Network net = zoo::BuildByName("resnet50");
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  auto at = [&](double bw) {
    return model_->PredictUs(net, titan.WithBandwidth(bw), 512);
  };
  const double low_gain = at(200) / at(400);
  const double high_gain = at(800) / at(1600);
  EXPECT_GT(low_gain, high_gain);
}

TEST_F(IgkwModelTest, KernelLawsExistForTrainedKernels) {
  int with_laws = 0;
  for (const auto& [name, km] :
       model_->kw_model().KernelModels("A100")) {
    if (model_->KernelLaw(name) != nullptr) ++with_laws;
  }
  EXPECT_GT(with_laws, 30);
  EXPECT_EQ(model_->KernelLaw("no_such_kernel"), nullptr);
}

TEST_F(IgkwModelTest, LawFitsAreNonNegativeEverywhere) {
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  for (const auto& [name, km] :
       model_->kw_model().KernelModels("A100")) {
    const InterGpuKernelModel* law = model_->KernelLaw(name);
    if (law == nullptr) continue;
    for (double bw : {100.0, 500.0, 2000.0}) {
      regression::LinearFit fit =
          model_->KernelFitAt(*law, titan.WithBandwidth(bw));
      EXPECT_GE(fit.slope, 0.0) << name;
      EXPECT_GE(fit.intercept, 0.0) << name;
    }
  }
}

class ScalingFeatureTest
    : public ::testing::TestWithParam<ScalingFeature> {};

TEST_P(ScalingFeatureTest, EveryFeatureChoiceTrainsAndPredicts) {
  IgkwModel model;
  model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split(),
              {"A100", "A40", "GTX 1080 Ti"}, GetParam());
  dnn::Network net = zoo::BuildByName("resnet18");
  const double t =
      model.PredictUs(net, gpuexec::GpuByName("TITAN RTX"), 256);
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

INSTANTIATE_TEST_SUITE_P(Features, ScalingFeatureTest,
                         ::testing::Values(ScalingFeature::kBandwidth,
                                           ScalingFeature::kTflops,
                                           ScalingFeature::kBoth));

TEST(IgkwModelDeathTest, NeedsAtLeastTwoTrainingGpus) {
  IgkwModel model;
  EXPECT_DEATH(model.Train(SmallCampaign::Get().data(),
                           SmallCampaign::Get().split(), {"A100"}),
               "at least two");
}

TEST(IgkwModelBasics, NameIsStable) { EXPECT_EQ(IgkwModel().Name(), "IGKW"); }

}  // namespace
}  // namespace gpuperf::models
