#include "gpuexec/training.h"

#include <gtest/gtest.h>

#include "dnn/builder.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "zoo/zoo.h"

namespace gpuperf::gpuexec {
namespace {

using dnn::Chw;
using dnn::NetworkBuilder;

dnn::Layer MakeLayer(void (*build)(NetworkBuilder&)) {
  NetworkBuilder b("t", "Test", Chw(64, 28, 28));
  build(b);
  return b.Build().layers()[0];
}

TEST(BackwardLoweringTest, ConvHasDgradWgradAndOptimizer) {
  dnn::Layer conv =
      MakeLayer([](NetworkBuilder& b) { b.Conv(128, 3, 1, 1); });
  std::vector<KernelLaunch> launches = LowerLayerBackward(conv, 16);
  ASSERT_EQ(launches.size(), 3u);
  EXPECT_NE(launches[0].name.find("conv_dgrad"), std::string::npos);
  EXPECT_NE(launches[1].name.find("conv_wgrad"), std::string::npos);
  EXPECT_EQ(launches[2].name, "sgd_update_vec");
}

TEST(BackwardLoweringTest, BackwardComputeIsTwiceForward) {
  // dgrad + wgrad each redo the forward MACs.
  dnn::Layer conv =
      MakeLayer([](NetworkBuilder& b) { b.Conv(128, 3, 1, 1); });
  std::vector<KernelLaunch> launches = LowerLayerBackward(conv, 16);
  const std::int64_t forward_flops = 2 * dnn::LayerFlops(conv, 16);
  EXPECT_NEAR(static_cast<double>(launches[0].flops), forward_flops,
              0.05 * forward_flops);
  EXPECT_NEAR(static_cast<double>(launches[1].flops), forward_flops,
              0.05 * forward_flops);
}

TEST(BackwardLoweringTest, SgdUpdateCostIsBatchIndependent) {
  dnn::Layer conv =
      MakeLayer([](NetworkBuilder& b) { b.Conv(128, 3, 1, 1); });
  const KernelLaunch at_8 = LowerLayerBackward(conv, 8).back();
  const KernelLaunch at_64 = LowerLayerBackward(conv, 64).back();
  EXPECT_EQ(at_8.TotalBytes(), at_64.TotalBytes());
}

TEST(BackwardLoweringTest, ViewLayersHaveNoBackwardKernels) {
  dnn::Layer flatten = MakeLayer([](NetworkBuilder& b) { b.Flatten(); });
  EXPECT_TRUE(LowerLayerBackward(flatten, 8).empty());
  dnn::Layer dropout = MakeLayer([](NetworkBuilder& b) { b.Dropout(); });
  EXPECT_TRUE(LowerLayerBackward(dropout, 8).empty());
}

TEST(BackwardLoweringTest, ActivationBackwardIsElementwise) {
  dnn::Layer relu = MakeLayer([](NetworkBuilder& b) { b.Relu(); });
  std::vector<KernelLaunch> launches = LowerLayerBackward(relu, 8);
  ASSERT_EQ(launches.size(), 1u);
  EXPECT_EQ(launches[0].family, KernelFamily::kElementwise);
  EXPECT_EQ(launches[0].name, "elementwise_relu_bwd");
}

TEST(WorkloadLoweringTest, TrainingExtendsEveryParameterizedLayer) {
  dnn::Network net = zoo::BuildByName("resnet18");
  auto inference = LowerNetworkWorkload(net, 8, Workload::kInference);
  auto training = LowerNetworkWorkload(net, 8, Workload::kTraining);
  ASSERT_EQ(inference.size(), training.size());
  std::size_t inference_total = 0, training_total = 0;
  for (std::size_t i = 0; i < inference.size(); ++i) {
    EXPECT_GE(training[i].size(), inference[i].size()) << i;
    inference_total += inference[i].size();
    training_total += training[i].size();
  }
  EXPECT_GT(training_total, 2 * inference_total);
}

TEST(WorkloadLoweringTest, ExecutionOrderIsForwardThenReverseBackward) {
  dnn::Network net = zoo::BuildByName("alexnet");
  auto lowered = LowerNetworkWorkload(net, 8, Workload::kTraining);
  auto order = TrainingExecutionOrder(net, lowered);
  // Total coverage: every (layer, kernel) exactly once.
  std::size_t total = 0;
  for (const auto& layer : lowered) total += layer.size();
  EXPECT_EQ(order.size(), total);
  // The forward phase visits layers in nondecreasing order; the backward
  // phase in nonincreasing order.
  std::size_t flip = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i].first < order[i - 1].first) {
      flip = i;
      break;
    }
  }
  ASSERT_GT(flip, 0u);
  for (std::size_t i = flip + 1; i < order.size(); ++i) {
    EXPECT_LE(order[i].first, order[i - 1].first) << i;
  }
}

TEST(TrainingProfileTest, TrainingStepCostsSeveralForwardPasses) {
  HardwareOracle oracle;
  Profiler profiler(oracle);
  dnn::Network net = zoo::BuildByName("resnet18");
  const GpuSpec& a100 = GpuByName("A100");
  const double inference = profiler.MeasureE2eUs(net, a100, 64);
  const double training =
      profiler.MeasureE2eUs(net, a100, 64, Workload::kTraining);
  EXPECT_GT(training, 2.0 * inference);
  EXPECT_LT(training, 8.0 * inference);
}

TEST(TrainingProfileTest, TraceStaysGroupedPerLayer) {
  // The dataset's mapping-table construction requires records grouped by
  // layer even though execution interleaves forward and backward.
  HardwareOracle oracle;
  Profiler profiler(oracle);
  dnn::Network net = zoo::BuildByName("alexnet");
  NetworkProfile profile = profiler.Profile(net, GpuByName("V100"), 16,
                                            Workload::kTraining);
  int last_layer = -1;
  std::set<int> closed;
  for (const KernelRecord& record : profile.kernels) {
    if (record.layer_index != last_layer) {
      EXPECT_FALSE(closed.count(record.layer_index));
      closed.insert(last_layer);
      last_layer = record.layer_index;
    }
  }
}

TEST(TrainingProfileTest, EveryKernelGetsNonZeroTime) {
  HardwareOracle oracle;
  Profiler profiler(oracle);
  dnn::Network net = zoo::BuildByName("mobilenet_v2");
  NetworkProfile profile = profiler.Profile(net, GpuByName("A40"), 8,
                                            Workload::kTraining);
  for (const KernelRecord& record : profile.kernels) {
    EXPECT_GT(record.time_us, 0.0) << record.kernel_name;
  }
}

}  // namespace
}  // namespace gpuperf::gpuexec
