#include "obs/flight_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"

namespace gpuperf::obs {
namespace {

FlightRecorderConfig Config(long long period_us, std::size_t capacity = 4096) {
  FlightRecorderConfig config;
  config.sample_period_us = period_us;
  config.capacity = capacity;
  return config;
}

TEST(FlightRecorderTest, AdvanceToClosesWholeWindowsOnly) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.Count("gpuperf_test_events", 2);
  recorder.AdvanceTo(250);  // closes [0,100] and (100,200]; 250 is mid-window
  ASSERT_EQ(recorder.frames().size(), 2u);
  EXPECT_EQ(recorder.frames()[0].t_us, 100);
  EXPECT_EQ(recorder.frames()[1].t_us, 200);
  EXPECT_EQ(recorder.frames()[0].window_us, 100);
  // The events landed before the first close.
  EXPECT_EQ(recorder.frames()[0].samples[0].counter_delta, 2u);
  EXPECT_EQ(recorder.frames()[1].samples[0].counter_delta, 0u);
  EXPECT_EQ(recorder.frames()[1].samples[0].counter_total, 2u);
}

TEST(FlightRecorderTest, FinishAtAddsAPartialFinalWindow) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.Count("gpuperf_test_events");
  recorder.FinishAt(250);
  ASSERT_EQ(recorder.frames().size(), 3u);
  EXPECT_EQ(recorder.frames()[2].t_us, 250);
  EXPECT_EQ(recorder.frames()[2].window_us, 50);  // partial
}

TEST(FlightRecorderTest, FinishAtOnTheGridAddsNoExtraWindow) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.FinishAt(200);
  EXPECT_EQ(recorder.frames().size(), 2u);
}

TEST(FlightRecorderTest, GaugeSamplesTheLevelAtWindowClose) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.SetGauge("gpuperf_test_depth", 5);
  recorder.AdvanceTo(100);
  recorder.SetGauge("gpuperf_test_depth", -3);
  recorder.AdvanceTo(200);
  EXPECT_EQ(recorder.frames()[0].samples[0].gauge_value, 5);
  EXPECT_EQ(recorder.frames()[1].samples[0].gauge_value, -3);
}

TEST(FlightRecorderTest, SketchWindowsResetAtEachClose) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.DefineSketch("gpuperf_test_latency_ms", {1.0, 10.0});
  recorder.Observe("gpuperf_test_latency_ms", 0.5);
  recorder.Observe("gpuperf_test_latency_ms", 20.0);
  recorder.AdvanceTo(100);
  recorder.Observe("gpuperf_test_latency_ms", 4.0);
  recorder.AdvanceTo(200);
  const SketchWindow& first = recorder.frames()[0].samples[0].window;
  const SketchWindow& second = recorder.frames()[1].samples[0].window;
  EXPECT_EQ(first.count, 2u);
  EXPECT_EQ(first.buckets, (std::vector<std::uint64_t>{1, 0, 1}));
  EXPECT_EQ(second.count, 1u);
  EXPECT_EQ(second.buckets, (std::vector<std::uint64_t>{0, 1, 0}));
}

TEST(FlightRecorderTest, ChannelsSampleInSortedNameOrder) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.Count("gpuperf_test_zebra");
  recorder.SetGauge("gpuperf_test_alpha", 1);
  recorder.AdvanceTo(100);
  ASSERT_EQ(recorder.frames()[0].samples.size(), 2u);
  EXPECT_EQ(*recorder.frames()[0].samples[0].channel, "gpuperf_test_alpha");
  EXPECT_EQ(*recorder.frames()[0].samples[1].channel, "gpuperf_test_zebra");
}

TEST(FlightRecorderTest, FullRingEvictsOldestAndCountsDrops) {
  FlightRecorder recorder(Config(100, /*capacity=*/3));
  recorder.Start(0);
  recorder.Count("gpuperf_test_events");
  recorder.AdvanceTo(500);  // 5 closes into a 3-frame ring
  EXPECT_EQ(recorder.frames().size(), 3u);
  EXPECT_EQ(recorder.dropped_frames(), 2u);
  EXPECT_EQ(recorder.frames().front().t_us, 300);
  EXPECT_EQ(recorder.frames().back().t_us, 500);
  // Counter totals survive eviction — only frames drop, not state.
  EXPECT_EQ(recorder.frames().back().samples[0].counter_total, 1u);
}

TEST(FlightRecorderTest, RestartContinuesOneMonotoneTimeline) {
  // Two serving epochs share one recorder: epoch 1's Start re-anchors
  // without clearing, counters stay cumulative, windows stay monotone.
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.Count("gpuperf_test_events", 3);
  recorder.FinishAt(200);
  recorder.Start(200);
  recorder.Count("gpuperf_test_events", 2);
  recorder.FinishAt(400);
  ASSERT_EQ(recorder.frames().size(), 4u);
  long long prev = -1;
  for (const FlightFrame& frame : recorder.frames()) {
    EXPECT_GT(frame.t_us, prev);
    prev = frame.t_us;
  }
  EXPECT_EQ(recorder.frames().back().samples[0].counter_total, 5u);
}

TEST(FlightRecorderTest, RestartBehindTheLastCloseReAnchorsForward) {
  // An epoch's retries can run past its horizon, so the next epoch's
  // origin may land *before* the last closed window. Start must anchor
  // at the later of the two, keeping the timeline monotone.
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.FinishAt(250);  // final partial window closes at 250
  recorder.Start(200);     // new epoch origin is behind the last close
  recorder.FinishAt(450);
  long long prev = -1;
  for (const FlightFrame& frame : recorder.frames()) {
    EXPECT_GT(frame.t_us, prev);
    prev = frame.t_us;
  }
  // Window grid resumed from 250, not 200: next close is 350.
  EXPECT_EQ(recorder.frames()[3].t_us, 350);
}

TEST(FlightRecorderTest, SampleRegistryDifferencesSnapshots) {
  MetricsRegistry registry;
  Counter& events = registry.counter("gpuperf_test_events");
  Histogram& latency =
      registry.histogram("gpuperf_test_latency_ms", {1.0, 10.0});
  FlightRecorder recorder(Config(1000));
  recorder.Start(0);
  events.Increment(3);
  latency.Observe(0.5);
  recorder.SampleRegistry(registry, 1000);
  events.Increment(2);
  latency.Observe(4.0);
  latency.Observe(20.0);
  recorder.SampleRegistry(registry, 2000);
  ASSERT_EQ(recorder.frames().size(), 2u);
  // Cumulative registry totals become per-window deltas.
  const FlightFrame& f0 = recorder.frames()[0];
  const FlightFrame& f1 = recorder.frames()[1];
  EXPECT_EQ(f0.samples[0].counter_delta, 3u);
  EXPECT_EQ(f1.samples[0].counter_delta, 2u);
  EXPECT_EQ(f1.samples[0].counter_total, 5u);
  EXPECT_EQ(f0.samples[1].window.count, 1u);
  EXPECT_EQ(f1.samples[1].window.count, 2u);
  EXPECT_EQ(f1.samples[1].window.buckets,
            (std::vector<std::uint64_t>{0, 1, 1}));
}

TEST(FlightRecorderTest, CsvRowsAreStableAndLabeled) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.Count("gpuperf_test_events", 4);
  recorder.SetGauge("gpuperf_test_depth", 7);
  recorder.AdvanceTo(100);
  FlightTimeline timeline;
  timeline.Append(recorder, "cell 0");
  EXPECT_EQ(timeline.Csv(),
            "t_us,source,metric,kind,field,value\n"
            "100,cell 0,gpuperf_test_depth,gauge,value,7\n"
            "100,cell 0,gpuperf_test_events,counter,total,4\n"
            "100,cell 0,gpuperf_test_events,counter,delta,4\n"
            "100,cell 0,gpuperf_test_events,counter,rate_per_s,40000\n");
}

TEST(FlightRecorderTest, SketchCsvEmitsCountSumAndQuantiles) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.DefineSketch("gpuperf_test_latency_ms", {1.0, 10.0});
  recorder.Observe("gpuperf_test_latency_ms", 0.5);
  recorder.Observe("gpuperf_test_latency_ms", 0.5);
  recorder.AdvanceTo(100);
  std::string rows;
  recorder.AppendCsvRows("cell 0", &rows);
  EXPECT_EQ(rows,
            "100,cell 0,gpuperf_test_latency_ms,sketch,count,2\n"
            "100,cell 0,gpuperf_test_latency_ms,sketch,sum,1\n"
            "100,cell 0,gpuperf_test_latency_ms,sketch,p50,0.5\n"
            "100,cell 0,gpuperf_test_latency_ms,sketch,p99,0.99\n");
}

TEST(FlightRecorderTest, CounterEventsLandInTheChromeTrace) {
  FlightRecorder recorder(Config(100));
  recorder.Start(0);
  recorder.Count("gpuperf_test_events", 2);
  recorder.AdvanceTo(200);
  ChromeTraceWriter writer;
  recorder.AppendCounterEvents(&writer, /*pid=*/3);
  EXPECT_EQ(writer.event_count(), 2u);  // one per frame
  const std::string json = writer.Json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("gpuperf_test_events"), std::string::npos);
  EXPECT_NE(json.find("\"delta\":2"), std::string::npos);
}

TEST(FlightRecorderTest, IdenticalInputsYieldIdenticalBytes) {
  // The determinism contract: two recorders fed the same sequence emit
  // byte-identical CSV — the per-cell building block behind timeline
  // files being byte-identical across --jobs.
  auto run = [] {
    FlightRecorder recorder(Config(100));
    recorder.Start(0);
    recorder.DefineSketch("gpuperf_test_latency_ms", {1.0, 10.0});
    for (int i = 0; i < 10; ++i) {
      recorder.Count("gpuperf_test_events");
      recorder.Observe("gpuperf_test_latency_ms", 0.5 + i);
      recorder.AdvanceTo(100 * (i + 1));
    }
    recorder.FinishAt(1050);
    std::string rows;
    recorder.AppendCsvRows("cell 0", &rows);
    return rows;
  };
  EXPECT_EQ(run(), run());
}

TEST(FlightRecorderDeathTest, MisuseIsAProgrammerError) {
  FlightRecorder recorder(Config(100));
  EXPECT_DEATH(recorder.AdvanceTo(100), "must be started");
  EXPECT_DEATH(recorder.FinishAt(100), "must be started");
  FlightRecorder started(Config(100));
  started.Start(0);
  started.Count("gpuperf_test_events");
  EXPECT_DEATH(started.SetGauge("gpuperf_test_events", 1),
               "different kind");
  EXPECT_DEATH(started.Observe("gpuperf_test_events", 1.0),
               "must be defined before Observe");
  started.DefineSketch("gpuperf_test_latency_ms", {1.0});
  EXPECT_DEATH(started.DefineSketch("gpuperf_test_latency_ms", {2.0}),
               "different bounds");
}

TEST(FlightRecorderDeathTest, ConfigMustBePositive) {
  EXPECT_DEATH(FlightRecorder(Config(0)), "positive sample period");
  EXPECT_DEATH(FlightRecorder(Config(100, 0)), "nonzero frame capacity");
}

}  // namespace
}  // namespace gpuperf::obs
