#include "baselines/pka.h"

#include <gtest/gtest.h>

#include "baselines/detailed_sim.h"
#include "common/stats.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "zoo/zoo.h"

namespace gpuperf::baselines {
namespace {

TEST(DetailedSimTest, PredictionWithinBiasBandOfTruth) {
  DetailedSimConfig config;
  DetailedSimulator simulator(config);
  gpuexec::HardwareOracle oracle(config.oracle);
  const gpuexec::GpuSpec& v100 = gpuexec::GpuByName("V100");
  dnn::Network net = zoo::BuildByName("resnet18");
  for (const auto& launches : gpuexec::LowerNetwork(net, 64)) {
    for (const gpuexec::KernelLaunch& launch : launches) {
      const double truth = oracle.ExpectedKernelTimeUs(launch, v100);
      const double sim = simulator.SimulateKernelUs(launch, v100);
      EXPECT_GT(sim, truth * 0.3) << launch.name;
      EXPECT_LT(sim, truth * 3.0) << launch.name;
    }
  }
}

TEST(DetailedSimTest, SimulatedBlocksAccumulate) {
  DetailedSimulator simulator;
  gpuexec::KernelLaunch launch;
  launch.name = "k";
  launch.family = gpuexec::KernelFamily::kElementwise;
  launch.flops = 1000;
  launch.bytes_in = launch.bytes_out = 1'000'000;
  launch.blocks = 5000;
  launch.batch = 1;
  launch.layer_flops = 1000;
  launch.input_elems = launch.output_elems = 250'000;
  simulator.SimulateKernelUs(launch, gpuexec::GpuByName("A100"));
  EXPECT_EQ(simulator.simulated_blocks(), 5000);
}

TEST(DetailedSimTest, BiasIsSystematicPerFamily) {
  // Same-family kernels share the bias; two calls agree exactly.
  DetailedSimulator simulator;
  gpuexec::KernelLaunch launch;
  launch.name = "k";
  launch.family = gpuexec::KernelFamily::kGemm;
  launch.flops = 1e10;
  launch.bytes_in = launch.bytes_out = 1e7;
  launch.blocks = 2000;
  launch.batch = 1;
  launch.layer_flops = 5e9;
  launch.input_elems = launch.output_elems = 1e6;
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName("A40");
  EXPECT_DOUBLE_EQ(simulator.SimulateKernelUs(launch, gpu),
                   simulator.SimulateKernelUs(launch, gpu));
}

class SampledSimTest : public ::testing::Test {
 protected:
  dnn::Network net_ = zoo::BuildByName("resnet50");
  const gpuexec::GpuSpec& v100_ = gpuexec::GpuByName("V100");
  gpuexec::HardwareOracle oracle_;
  gpuexec::Profiler profiler_{oracle_};
};

TEST_F(SampledSimTest, PkaCountsAndPredicts) {
  SampledSimResult result = RunPka(net_, v100_, 64);
  EXPECT_GT(result.total_launches, 100);
  EXPECT_GT(result.simulated_clusters, 10);
  EXPECT_LE(result.simulated_clusters, result.total_launches);
  const double measured = profiler_.MeasureE2eUs(net_, v100_, 64);
  EXPECT_LT(RelativeError(result.predicted_e2e_us, measured), 0.6);
}

TEST_F(SampledSimTest, PksIsMoreAccurateThanPkaOnAverage) {
  std::vector<double> pka_errors, pks_errors;
  for (const char* name : {"resnet18", "resnet50", "vgg16_bn",
                           "densenet121", "mobilenet_v2"}) {
    dnn::Network net = zoo::BuildByName(name);
    const double measured = profiler_.MeasureE2eUs(net, v100_, 64);
    pka_errors.push_back(
        RelativeError(RunPka(net, v100_, 64).predicted_e2e_us, measured));
    pks_errors.push_back(
        RelativeError(RunPks(net, v100_, 64).predicted_e2e_us, measured));
  }
  EXPECT_LT(Mean(pks_errors), Mean(pka_errors));
}

TEST_F(SampledSimTest, PksSimulatesFewerClustersButMoreBlocksEach) {
  SampledSimResult pka = RunPka(net_, v100_, 64);
  SampledSimResult pks = RunPks(net_, v100_, 64, 0.9);
  EXPECT_LT(pks.simulated_clusters, pka.simulated_clusters);
}

TEST_F(SampledSimTest, PksIsSlowerThanPka) {
  // The paper's Table 2 cost ordering: PKS hours vs PKA ~1.5 h; here the
  // high-fidelity per-block work makes PKS wall time larger.
  SampledSimResult pka = RunPka(net_, v100_, 128);
  SampledSimResult pks = RunPks(net_, v100_, 128);
  EXPECT_GT(pks.wall_seconds, pka.wall_seconds);
}

TEST_F(SampledSimTest, CoverageKnobChangesSelection) {
  SampledSimResult narrow = RunPks(net_, v100_, 64, 0.5);
  SampledSimResult wide = RunPks(net_, v100_, 64, 0.99);
  EXPECT_LT(narrow.simulated_clusters, wide.simulated_clusters);
}

}  // namespace
}  // namespace gpuperf::baselines
