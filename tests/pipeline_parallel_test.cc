#include "simsys/pipeline_parallel.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gpuperf::simsys {
namespace {

TEST(BalancedPartitionTest, SingleStageTakesEverything) {
  EXPECT_EQ(BalancedPartition({1, 2, 3}, 1), (std::vector<int>{0}));
}

TEST(BalancedPartitionTest, UniformWeightsSplitEvenly) {
  std::vector<double> weights(8, 1.0);
  EXPECT_EQ(BalancedPartition(weights, 4), (std::vector<int>{0, 2, 4, 6}));
}

TEST(BalancedPartitionTest, HeavyLayerGetsItsOwnStage) {
  // One layer dominates: the optimum isolates it.
  std::vector<double> weights{1, 1, 100, 1, 1};
  std::vector<int> boundaries = BalancedPartition(weights, 3);
  // The heavy layer (index 2) must be alone or nearly alone.
  double heavy_stage_sum = 0;
  for (std::size_t s = 0; s < boundaries.size(); ++s) {
    const int begin = boundaries[s];
    const int end = s + 1 < boundaries.size()
                        ? boundaries[s + 1]
                        : static_cast<int>(weights.size());
    if (begin <= 2 && 2 < end) {
      for (int i = begin; i < end; ++i) heavy_stage_sum += weights[i];
    }
  }
  EXPECT_LE(heavy_stage_sum, 102.0);
}

TEST(BalancedPartitionTest, OptimalMaxSegmentOnRandomInstances) {
  // Cross-check the DP against brute force on small instances.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextBelow(4));
    const int stages = 2 + static_cast<int>(rng.NextBelow(2));
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.NextRange(1, 10);

    auto max_segment = [&](const std::vector<int>& bounds) {
      double worst = 0;
      for (std::size_t s = 0; s < bounds.size(); ++s) {
        const int begin = bounds[s];
        const int end = s + 1 < bounds.size() ? bounds[s + 1] : n;
        double sum = 0;
        for (int i = begin; i < end; ++i) sum += weights[i];
        worst = std::max(worst, sum);
      }
      return worst;
    };

    const double dp_value = max_segment(BalancedPartition(weights, stages));
    // Brute force over all boundary placements (3 stages max).
    double best = 1e300;
    if (stages == 2) {
      for (int c = 1; c < n; ++c) best = std::min(best, max_segment({0, c}));
    } else {
      for (int c1 = 1; c1 < n - 1; ++c1) {
        for (int c2 = c1 + 1; c2 < n; ++c2) {
          best = std::min(best, max_segment({0, c1, c2}));
        }
      }
    }
    EXPECT_NEAR(dp_value, best, 1e-9) << "trial " << trial;
  }
}

PipelineConfig Config(int stages, int micro) {
  PipelineConfig config;
  config.num_stages = stages;
  config.micro_batches = micro;
  config.link_bandwidth_gbps = 1e6;  // effectively free links
  config.link_latency_us = 0;
  return config;
}

TEST(PipelineTest, SingleStageMatchesSequentialExecution) {
  std::vector<double> fwd{10, 20}, bwd{20, 40};
  std::vector<std::int64_t> acts{100, 100};
  PipelineResult result = SimulatePipeline(fwd, bwd, acts, Config(1, 4));
  EXPECT_NEAR(result.step_time_us, 4 * (30 + 60), 1e-9);
  EXPECT_NEAR(result.bubble_fraction, 0.0, 1e-9);
}

TEST(PipelineTest, BubbleMatchesGpipeFormulaForBalancedStages) {
  // 4 identical layers over 4 stages: bubble = (S-1)/(M+S-1).
  std::vector<double> fwd(4, 10.0), bwd(4, 20.0);
  std::vector<std::int64_t> acts(4, 0);
  for (int micro : {1, 2, 8, 32}) {
    PipelineResult result =
        SimulatePipeline(fwd, bwd, acts, Config(4, micro));
    const double expected = 3.0 / (micro + 3.0);
    EXPECT_NEAR(result.bubble_fraction, expected, 0.02) << micro;
  }
}

TEST(PipelineTest, MoreMicroBatchesShrinkTheBubble) {
  std::vector<double> fwd(16, 5.0), bwd(16, 10.0);
  std::vector<std::int64_t> acts(16, 1'000'000);
  PipelineConfig config = Config(4, 2);
  config.link_bandwidth_gbps = 64;
  double previous = 1.0;
  for (int micro : {2, 4, 16, 64}) {
    config.micro_batches = micro;
    PipelineResult result = SimulatePipeline(fwd, bwd, acts, config);
    EXPECT_LT(result.bubble_fraction, previous);
    previous = result.bubble_fraction;
  }
}

TEST(PipelineTest, StepBoundedBelowByBusiestStage) {
  std::vector<double> fwd{5, 50, 5}, bwd{10, 100, 10};
  std::vector<std::int64_t> acts(3, 0);
  PipelineResult result = SimulatePipeline(fwd, bwd, acts, Config(3, 8));
  EXPECT_GE(result.step_time_us, 8 * 150.0 - 1e-9);  // the heavy stage
}

TEST(PipelineTest, SlowLinksIncreaseStepTime) {
  std::vector<double> fwd(8, 10.0), bwd(8, 20.0);
  std::vector<std::int64_t> acts(8, 50'000'000);
  PipelineConfig fast = Config(4, 8);
  fast.link_bandwidth_gbps = 300;
  PipelineConfig slow = Config(4, 8);
  slow.link_bandwidth_gbps = 4;
  EXPECT_GT(SimulatePipeline(fwd, bwd, acts, slow).step_time_us,
            SimulatePipeline(fwd, bwd, acts, fast).step_time_us);
}

TEST(PipelineDeathTest, MoreStagesThanLayersAborts) {
  std::vector<double> fwd{1, 1};
  std::vector<double> bwd{1, 1};
  std::vector<std::int64_t> acts{1, 1};
  EXPECT_DEATH(SimulatePipeline(fwd, bwd, acts, Config(3, 2)),
               "check failed");
}

}  // namespace
}  // namespace gpuperf::simsys
