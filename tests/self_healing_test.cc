// End-to-end self-healing through the serving simulator: a deterministic
// drift step on one GPU mid-run must trip only that GPU's residual
// trackers, flow through refit -> shadow -> canary into an automatic
// promotion, and leave post-promotion residuals below the drift signal —
// bit-identically on every run. The breaker scenario at the bottom is
// the circuit-breaker observability regression test: a breaker that
// trips during an oracle drift ramp (plus a fault burst) must re-close
// once the pool recovers and the refit lands, with every transition
// visible in the gpuperf_breaker_* counters.

#include "simsys/self_healing.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/oracle.h"
#include "models/bundle_registry.h"
#include "models/kw_model.h"
#include "models/refit.h"
#include "obs/metrics_registry.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::simsys {
namespace {

using gpuperf::testing::GoldenKwBundleDir;
using gpuperf::testing::SmallCampaign;

constexpr std::int64_t kBatch = 512;  // the golden campaign's batch
constexpr char kDriftGpu[] = "A40";
constexpr char kQuietGpu[] = "TITAN RTX";

std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       Format("gpuperf_heal_%s_%d", tag.c_str(), static_cast<int>(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

models::CanaryOptions Probes() {
  models::CanaryOptions options;
  options.probe_networks = {zoo::BuildByName("resnet18"),
                            zoo::BuildByName("mobilenet_v2")};
  options.batch = 16;
  options.tolerance = 0.5;
  return options;
}

/** Everything one self-healing scenario needs, pre-wired. */
struct Scenario {
  models::BundleRegistry registry;
  std::unique_ptr<models::LifecycleController> controller;
  std::vector<dnn::Network> networks;
  std::vector<const gpuexec::GpuSpec*> gpus;
  std::vector<std::vector<double>> truth;  // undrifted [job][gpu]
  std::string work_dir;
  SelfHealingConfig config;
};

/**
 * Seeds a scenario on {A40, TITAN RTX}. Truth is the golden model's own
 * predictions, so the baseline residual is exactly zero and injected
 * drift is the only signal; the arrival rate is sized to ~50% pool
 * utilization so queues stay bounded whatever the absolute service
 * times are.
 */
void SeedScenario(Scenario* s, const std::string& tag) {
  ASSERT_TRUE(s->registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const models::KwModel> golden = s->registry.Snapshot();

  s->gpus = {&gpuexec::GpuByName(kDriftGpu), &gpuexec::GpuByName(kQuietGpu)};
  for (const dnn::Network& network : SmallCampaign::Get().networks()) {
    if (golden->CoverageFor(network, kDriftGpu).Full() &&
        golden->CoverageFor(network, kQuietGpu).Full()) {
      s->networks.push_back(network);
      if (s->networks.size() == 3) break;
    }
  }
  ASSERT_GE(s->networks.size(), 2u);

  double mean_us = 0;
  for (const dnn::Network& network : s->networks) {
    std::vector<double> row;
    for (const gpuexec::GpuSpec* gpu : s->gpus) {
      row.push_back(golden->PredictUs(network, *gpu, kBatch));
    }
    mean_us += (row[0] + row[1]) / 2;
    s->truth.push_back(std::move(row));
  }
  mean_us /= s->networks.size();

  s->work_dir = ScratchDir(tag);
  models::LifecycleOptions lifecycle;
  lifecycle.work_dir = s->work_dir;
  lifecycle.min_shadow_observations = 6;
  lifecycle.watch_window = 6;
  s->controller = std::make_unique<models::LifecycleController>(
      &s->registry, GoldenKwBundleDir(), Probes(), lifecycle);

  s->config.serving.policy = DispatchPolicy::kPredictedLeastLoad;
  // ~60% utilization of the two-GPU pool; epochs long enough (in sim
  // time — wall time is event-driven) that every active cluster gets
  // dozens of reservoir samples per epoch, so one refit suffices.
  s->config.serving.arrival_rate_per_s = 1.2e6 / mean_us;
  s->config.serving.duration_s = 30;
  s->config.serving.seed = 7;
  s->config.epochs = 16;
  s->config.batch = kBatch;
}

StatusOr<SelfHealingResult> RunScenario(Scenario* s) {
  const std::vector<double> mix(s->networks.size(), 1.0);
  return RunSelfHealingServing(s->networks, s->gpus, s->truth, mix,
                               &s->registry, s->controller.get(), s->config);
}

TEST(SelfHealingTest, InputValidation) {
  Scenario s;
  SeedScenario(&s, "valid");
  const std::vector<double> mix(s.networks.size(), 1.0);
  EXPECT_EQ(RunSelfHealingServing(s.networks, s.gpus, s.truth, mix, nullptr,
                                  s.controller.get(), s.config)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunSelfHealingServing(s.networks, s.gpus, s.truth, {1.0},
                                  &s.registry, s.controller.get(), s.config)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  models::BundleRegistry empty;
  EXPECT_EQ(RunSelfHealingServing(s.networks, s.gpus, s.truth, mix, &empty,
                                  s.controller.get(), s.config)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(s.work_dir);
}

TEST(SelfHealingTest, StepDriftOnOneGpuHealsEndToEnd) {
  Scenario s;
  SeedScenario(&s, "e2e");
  // +10% on the drifted GPU from t=0: every pre-heal epoch shows the
  // full residual, and the first refit's reservoir is all-drift.
  gpuexec::DriftSchedule drift(
      s.gpus.size(),
      {{/*resource=*/0, /*at_us=*/0, /*ramp_us=*/0, /*factor=*/1.10,
        gpuexec::DriftScope::kAll}});
  s.config.serving.drift = &drift;

  StatusOr<SelfHealingResult> result = RunScenario(&s);
  ASSERT_TRUE(result.ok()) << result.status().message();

  // The lifecycle promoted a healed candidate and never rolled back.
  EXPECT_GE(result->counters.refits, 1u);
  EXPECT_GE(result->counters.promotions, 1u);
  EXPECT_EQ(result->counters.rollbacks, 0u);
  EXPECT_EQ(result->counters.canary_rejections, 0u);
  EXPECT_NE(result->final_serving_dir, GoldenKwBundleDir());
  bool promoted = false;
  for (const SelfHealingEpoch& epoch : result->epochs) {
    promoted = promoted || epoch.state == models::LifecycleState::kPromoted;
  }
  EXPECT_TRUE(promoted);

  // Residuals: the drifted GPU starts at the full log(1.1) ~ 0.095 and
  // collapses once the promotion lands; the quiet GPU never leaves the
  // noise floor — drift detection was (GPU, cluster)-specific.
  const double kLogDrift = std::log(1.10);
  EXPECT_NEAR(result->epochs.front().mean_abs_log_ratio[0], kLogDrift, 0.02);
  EXPECT_LT(result->epochs.back().mean_abs_log_ratio[0], 0.03);
  for (const SelfHealingEpoch& epoch : result->epochs) {
    EXPECT_LT(epoch.mean_abs_log_ratio[1], 0.02) << "quiet GPU drifted";
  }
  // Only drifted-GPU pairs ever tripped (quiet trackers are never reset,
  // so a spurious trip would still be visible here).
  for (const models::DriftKey& key : s.controller->monitor().Tripped()) {
    EXPECT_EQ(key.gpu, kDriftGpu);
  }
  EXPECT_GT(s.controller->monitor().TrackedPairs(), 0u);
  std::filesystem::remove_all(s.work_dir);
}

TEST(SelfHealingTest, HealingRunIsBitIdenticalAcrossRuns) {
  // The determinism acceptance criterion: two independent scenarios with
  // the same seeds heal identically — same per-epoch states, counts, and
  // residuals to the last bit (arrivals, drift, and lifecycle decisions
  // all come from precomputed seeded plans).
  Scenario a, b;
  SeedScenario(&a, "det_a");
  SeedScenario(&b, "det_b");
  gpuexec::DriftSchedule drift_a(
      a.gpus.size(), {{0, 0, 0, 1.10, gpuexec::DriftScope::kAll}});
  gpuexec::DriftSchedule drift_b(
      b.gpus.size(), {{0, 0, 0, 1.10, gpuexec::DriftScope::kAll}});
  a.config.serving.drift = &drift_a;
  b.config.serving.drift = &drift_b;

  StatusOr<SelfHealingResult> ra = RunScenario(&a);
  StatusOr<SelfHealingResult> rb = RunScenario(&b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->epochs.size(), rb->epochs.size());
  for (std::size_t e = 0; e < ra->epochs.size(); ++e) {
    EXPECT_EQ(ra->epochs[e].state, rb->epochs[e].state) << e;
    EXPECT_EQ(ra->epochs[e].completed, rb->epochs[e].completed) << e;
    for (std::size_t g = 0; g < 2; ++g) {
      EXPECT_EQ(ra->epochs[e].mean_abs_log_ratio[g],
                rb->epochs[e].mean_abs_log_ratio[g])
          << e;
    }
  }
  EXPECT_EQ(ra->final_state, rb->final_state);
  EXPECT_EQ(ra->counters.transitions, rb->counters.transitions);
  EXPECT_EQ(ra->counters.promotions, rb->counters.promotions);
  std::filesystem::remove_all(a.work_dir);
  std::filesystem::remove_all(b.work_dir);
}

TEST(SelfHealingTest, BreakerTripsDuringDriftRampAndReclosesAfterRefit) {
  // The circuit-breaker metrics regression test: during a drift ramp, a
  // flapping-GPU fault burst trips the drifted GPU's breaker; once the
  // pool recovers the half-open probe re-closes it, while the lifecycle
  // independently refits the drift away. All three transition counters
  // must advance, and the heal must still land.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::uint64_t opens_before =
      registry.counter("gpuperf_breaker_opens").Value();
  const std::uint64_t half_before =
      registry.counter("gpuperf_breaker_half_opens").Value();
  const std::uint64_t closes_before =
      registry.counter("gpuperf_breaker_closes").Value();

  Scenario s;
  SeedScenario(&s, "breaker");
  // Ramp to +12% over the first epoch.
  gpuexec::DriftSchedule drift(
      s.gpus.size(),
      {{0, 0, /*ramp_us=*/30e6, 1.12, gpuexec::DriftScope::kAll}});
  s.config.serving.drift = &drift;
  // A long outage early in each epoch fails whatever the drifted GPU
  // had in flight (threshold 1: the first failure opens the breaker);
  // afterwards the GPU stays up, so the post-cooldown probe succeeds
  // and the breaker re-closes.
  FaultPlan faults({{{1e6, 10e6}}, {}}, /*horizon_us=*/30e6);
  s.config.serving.fault_plan = &faults;
  s.config.serving.breaker.failure_threshold = 1;
  s.config.serving.breaker.cooldown_ms = 50;

  StatusOr<SelfHealingResult> result = RunScenario(&s);
  ASSERT_TRUE(result.ok()) << result.status().message();

  // Breaker observability: trips, cooldown expiries, and re-closes all
  // surfaced in the registry.
  EXPECT_GT(registry.counter("gpuperf_breaker_opens").Value(), opens_before);
  EXPECT_GT(registry.counter("gpuperf_breaker_half_opens").Value(),
            half_before);
  EXPECT_GT(registry.counter("gpuperf_breaker_closes").Value(),
            closes_before);
  // And the self-healing loop still refit the drift underneath it.
  EXPECT_GE(result->counters.refits, 1u);
  EXPECT_GE(result->counters.promotions, 1u);
  EXPECT_EQ(result->counters.rollbacks, 0u);
  EXPECT_LT(result->epochs.back().mean_abs_log_ratio[0],
            result->epochs.front().mean_abs_log_ratio[0]);
  std::filesystem::remove_all(s.work_dir);
}

}  // namespace
}  // namespace gpuperf::simsys
