#include "lint/program.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/baseline.h"
#include "lint/sarif.h"

namespace gpuperf::lint {
namespace {

// The whole-program fixture tree (tests/lint_fixtures/program) plants
// one violation per cross-file pass: an upward include edge, a two-lock
// acquisition cycle split across TUs, and taint flows into a sink one
// call away. These tests pin the exact reports.
#ifndef GPUPERF_LINT_FIXTURE_DIR
#error "GPUPERF_LINT_FIXTURE_DIR must be defined by the build"
#endif
const std::string kProgramDir =
    std::string(GPUPERF_LINT_FIXTURE_DIR) + "/program";

std::vector<Violation> LintProgramFixture(
    std::vector<PassTiming>* timings = nullptr) {
  ProgramOptions options;
  options.layers_file = kProgramDir + "/layers.txt";
  std::vector<Violation> violations;
  std::string error;
  EXPECT_TRUE(
      LintProgram({kProgramDir}, options, &violations, timings, &error))
      << error;
  return violations;
}

std::string At(const std::string& relative, int line,
               const std::string& rule) {
  return kProgramDir + "/" + relative + ":" + std::to_string(line) + ": " +
         rule;
}

std::vector<std::string> Prefixes(const std::vector<Violation>& violations) {
  std::vector<std::string> lines;
  for (const Violation& violation : violations) {
    lines.push_back(violation.file + ":" + std::to_string(violation.line) +
                    ": " + violation.rule);
  }
  return lines;
}

TEST(LintProgramTest, FixtureTreeTripsEveryPassExactly) {
  const std::vector<Violation> violations = LintProgramFixture();
  EXPECT_EQ(Prefixes(violations),
            (std::vector<std::string>{
                At("src/base/bad_up.h", 5, "layering"),
                At("src/locks/lock_a.cc", 9, "lock-order"),
                At("src/locks/lock_pair.cc", 8, "lock-order"),
                At("src/locks/lock_pair.cc", 14, "lock-order"),
                At("src/out/taint.cc", 11, "determinism-taint"),
                At("src/out/taint.cc", 20, "determinism-taint"),
                At("src/out/taint.cc", 37, "determinism-taint"),
            }));
}

TEST(LintProgramTest, LayeringReportsTheCycleTheEdgeCloses) {
  const std::vector<Violation> violations = LintProgramFixture();
  const auto it = std::find_if(
      violations.begin(), violations.end(),
      [](const Violation& v) { return v.rule == "layering"; });
  ASSERT_NE(it, violations.end());
  EXPECT_NE(it->message.find("\"top/feature.h\""), std::string::npos);
  EXPECT_NE(it->message.find("base -> top -> base"), std::string::npos);
}

TEST(LintProgramTest, LockOrderCycleCarriesBothWitnessPaths) {
  const std::vector<Violation> violations = LintProgramFixture();
  const auto it = std::find_if(
      violations.begin(), violations.end(), [](const Violation& v) {
        return v.rule == "lock-order" &&
               v.message.find("cycle") != std::string::npos;
      });
  ASSERT_NE(it, violations.end());
  // Both directions of the cycle, each with its acquiring TU and line.
  EXPECT_NE(it->message.find("'alpha_mu_' -> 'beta_mu_'"),
            std::string::npos);
  EXPECT_NE(it->message.find("'beta_mu_' -> 'alpha_mu_'"),
            std::string::npos);
  EXPECT_NE(it->message.find("lock_a.cc:9"), std::string::npos);
  EXPECT_NE(it->message.find("lock_b.cc:8"), std::string::npos);
}

TEST(LintProgramTest, TaintNamesTheCrossFileSink) {
  const std::vector<Violation> violations = LintProgramFixture();
  for (const Violation& violation : violations) {
    if (violation.rule != "determinism-taint") continue;
    EXPECT_NE(violation.message.find("WriteRow()"), std::string::npos);
    EXPECT_NE(violation.message.find("sink.cc:5"), std::string::npos);
  }
}

TEST(LintProgramTest, OutputIsByteIdenticalAcrossRunsAndOrderings) {
  ProgramOptions options;
  options.layers_file = kProgramDir + "/layers.txt";
  const std::vector<std::vector<std::string>> orderings = {
      {kProgramDir},
      {kProgramDir + "/src/out", kProgramDir},
      {kProgramDir + "/src/locks", kProgramDir + "/src/base",
       kProgramDir + "/src/out", kProgramDir + "/src/top", kProgramDir},
  };
  std::vector<std::string> reference;
  for (const std::vector<std::string>& paths : orderings) {
    std::vector<Violation> violations;
    std::string error;
    ASSERT_TRUE(LintProgram(paths, options, &violations, nullptr, &error))
        << error;
    std::vector<std::string> lines;
    for (const Violation& violation : violations) {
      lines.push_back(FormatViolation(violation));
    }
    if (reference.empty()) {
      reference = lines;
    } else {
      EXPECT_EQ(lines, reference);
    }
  }
  EXPECT_EQ(reference.size(), 7u);
}

TEST(LintProgramTest, EveryPassReportsTimingUnderTheBudget) {
  std::vector<PassTiming> timings;
  LintProgramFixture(&timings);
  std::vector<std::string> passes;
  for (const PassTiming& timing : timings) {
    passes.push_back(timing.pass);
    EXPECT_GE(timing.ms, 0.0) << timing.pass;
    // The whole-tree budget is one second; a fixture tree of a few
    // files must come in orders of magnitude under it.
    EXPECT_LT(timing.ms, 1000.0) << timing.pass;
  }
  EXPECT_EQ(passes, (std::vector<std::string>{
                        "scan", "per-file", "layering", "lock-order",
                        "determinism-taint"}));
}

TEST(LintProgramTest, MissingLayersFileIsAnError) {
  ProgramOptions options;
  options.layers_file = kProgramDir + "/no_such_layers.txt";
  std::vector<Violation> violations;
  std::string error;
  EXPECT_FALSE(
      LintProgram({kProgramDir}, options, &violations, nullptr, &error));
  EXPECT_NE(error.find("no_such_layers.txt"), std::string::npos);
}

TEST(LintProgramTest, ExcludeComponentSkipsSubtrees) {
  ProgramOptions options;
  options.layers_file = kProgramDir + "/layers.txt";
  options.exclude_components = {"locks", "out"};
  std::vector<Violation> violations;
  std::string error;
  ASSERT_TRUE(
      LintProgram({kProgramDir}, options, &violations, nullptr, &error))
      << error;
  EXPECT_EQ(Prefixes(violations), (std::vector<std::string>{
                                      At("src/base/bad_up.h", 5, "layering"),
                                  }));
}

TEST(LintProgramTest, ModuleOfPathRules) {
  EXPECT_EQ(ModuleOfPath("src/models/kw_model.cc"), "models");
  EXPECT_EQ(ModuleOfPath("/abs/repo/src/common/status.h"), "common");
  EXPECT_EQ(ModuleOfPath("tools/gpuperf_cli.cc"), "tools");
  EXPECT_EQ(ModuleOfPath("tests/lint_test.cc"), "tests");
  EXPECT_EQ(ModuleOfPath("bench/exp_common.cc"), "bench");
  // The dir after the LAST `src` wins, so fixture trees nest cleanly.
  EXPECT_EQ(ModuleOfPath("tests/lint_fixtures/program/src/base/util.h"),
            "base");
  // `src/<file>` has no module directory; nor does a bare file.
  EXPECT_EQ(ModuleOfPath("src/version.h"), "");
  EXPECT_EQ(ModuleOfPath("README.md"), "");
}

TEST(LintBaselineTest, SuppressesPinnedDebtInLineOrder) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(ParseBaseline("# comment\nrule-a src/f.cc 2\n", &baseline,
                            &error))
      << error;
  const std::vector<Violation> violations = {
      {"src/f.cc", 3, "rule-a", "first"},
      {"src/f.cc", 8, "rule-a", "second"},
      {"src/f.cc", 9, "rule-a", "third — beyond the pinned count"},
      {"src/g.cc", 1, "rule-a", "other file, not pinned"},
  };
  const std::vector<Violation> remaining =
      ApplyBaseline(violations, baseline, "baseline.txt");
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(remaining[0].line, 9);
  EXPECT_EQ(remaining[1].file, "src/g.cc");
}

TEST(LintBaselineTest, StaleEntryFailsTheRatchet) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(
      ParseBaseline("rule-a src/f.cc 3\n", &baseline, &error));
  const std::vector<Violation> violations = {
      {"src/f.cc", 3, "rule-a", "only one left"},
  };
  const std::vector<Violation> remaining =
      ApplyBaseline(violations, baseline, "baseline.txt");
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, "baseline-stale");
  EXPECT_EQ(remaining[0].file, "baseline.txt");
  EXPECT_NE(remaining[0].message.find("shrink"), std::string::npos);
}

TEST(LintBaselineTest, FullyRepaidEntryAlsoFails) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(
      ParseBaseline("rule-a src/f.cc 1\n", &baseline, &error));
  const std::vector<Violation> remaining =
      ApplyBaseline({}, baseline, "baseline.txt");
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, "baseline-stale");
}

TEST(LintBaselineTest, WriteThenApplyRoundTripsToClean) {
  const std::vector<Violation> violations = {
      {"src/f.cc", 3, "rule-a", "x"},
      {"src/f.cc", 8, "rule-b", "y"},
      {"src/g.cc", 1, "rule-a", "z"},
  };
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(
      ParseBaseline(WriteBaseline(violations), &baseline, &error))
      << error;
  EXPECT_TRUE(ApplyBaseline(violations, baseline, "b.txt").empty());
}

TEST(LintBaselineTest, MalformedLinesAreErrors) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(ParseBaseline("rule-a src/f.cc\n", &baseline, &error));
  EXPECT_FALSE(ParseBaseline("rule-a src/f.cc zero\n", &baseline, &error));
  EXPECT_FALSE(ParseBaseline("rule-a src/f.cc 0\n", &baseline, &error));
  EXPECT_FALSE(ParseBaseline("rule-a src/f.cc 1 extra\n", &baseline,
                             &error));
  EXPECT_FALSE(ParseBaseline("rule-a f.cc 1\nrule-a f.cc 2\n", &baseline,
                             &error));  // duplicate entry
}

TEST(LintSarifTest, EmitsRuleMetadataAndLocations) {
  const std::vector<Violation> violations = {
      {"src/f.cc", 12, "layering",
       "include of \"x.h\" breaks the declared DAG"},
  };
  const std::string sarif = ToSarif(violations);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"gpuperf_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"layering\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/f.cc\""), std::string::npos);
  // The quote inside the message must arrive JSON-escaped.
  EXPECT_NE(sarif.find("include of \\\"x.h\\\""), std::string::npos);
  // Rule metadata comes from the Rules() catalog.
  const RuleInfo* info = FindRule("layering");
  ASSERT_NE(info, nullptr);
  EXPECT_NE(sarif.find(info->summary), std::string::npos);
}

TEST(LintSarifTest, EmptyRunIsValidAndStable) {
  const std::string sarif = ToSarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(ToSarif({}), sarif);
}

}  // namespace
}  // namespace gpuperf::lint
