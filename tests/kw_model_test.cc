#include "models/kw_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dnn/builder.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

class KwModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new KwModel();
    model_->Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static KwModel* model_;
};

KwModel* KwModelTest::model_ = nullptr;

TEST_F(KwModelTest, TrainsForAllCampaignGpus) {
  EXPECT_EQ(model_->TrainedGpus().size(), 4u);
  EXPECT_GT(model_->KernelCount("A100"), 30);
}

TEST_F(KwModelTest, ClusteringReducesModelCount) {
  EXPECT_LE(model_->ClusterCount("A100"), model_->KernelCount("A100"));
}

TEST_F(KwModelTest, MappingTableCoversCampaignLayers) {
  // Every layer of a campaign network resolves to a kernel list or is a
  // genuine no-kernel layer (Flatten/Dropout).
  const dnn::Network& net = SmallCampaign::Get().networks()[0];
  for (const dnn::Layer& layer : net.layers()) {
    const auto names = model_->KernelsForLayer(layer);
    const auto launches = gpuexec::LowerLayer(layer, 512);
    if (launches.empty()) {
      EXPECT_TRUE(names.empty()) << layer.name;
    } else {
      ASSERT_EQ(names.size(), launches.size()) << layer.name;
      for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(names[i], launches[i].name);
      }
    }
  }
}

TEST_F(KwModelTest, DriverClassificationRediscoversGroundTruth) {
  // O5: the R² competition must recover the true driver for most kernels
  // (ties between numerically identical features count as correct).
  const auto& data = SmallCampaign::Get().data();
  int correct = 0, total = 0;
  const auto& kernels = model_->KernelModels("A100");
  for (const dataset::KernelRow& row : data.kernel_rows()) {
    if (data.gpus().Get(row.gpu_id) != "A100") continue;
    auto it = kernels.find(data.kernels().Get(row.kernel_id));
    if (it == kernels.end()) continue;
    ++total;
    if (it->second.driver == row.true_driver ||
        row.DriverValue(it->second.driver) ==
            row.DriverValue(row.true_driver)) {
      ++correct;
    }
    if (total >= 20000) break;  // plenty of evidence
  }
  ASSERT_GT(total, 1000);
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST_F(KwModelTest, InterceptsRespectTheClamp) {
  for (const auto& [name, km] : model_->KernelModels("A100")) {
    EXPECT_GE(km.fit.intercept, 0.0) << name;
  }
}

TEST_F(KwModelTest, HeldOutErrorIsKernelLevelAccurate) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  gpuexec::Profiler profiler(campaign.oracle());
  std::vector<double> predicted, measured;
  for (const dnn::Network* net : campaign.TestNetworks()) {
    predicted.push_back(model_->PredictUs(*net, a100, 512));
    measured.push_back(profiler.MeasureE2eUs(*net, a100, 512));
  }
  EXPECT_LT(Mape(predicted, measured), 0.15);
}

TEST_F(KwModelTest, UnseenNetworkOfKnownFamilyPredictsWell) {
  // resnet89 is not in the campaign; its layer configs mostly are.
  const auto& campaign = SmallCampaign::Get();
  dnn::Network net = zoo::BuildByName("resnet89");
  gpuexec::Profiler profiler(campaign.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const double predicted = model_->PredictUs(net, a100, 512);
  const double measured = profiler.MeasureE2eUs(net, a100, 512);
  EXPECT_LT(RelativeError(predicted, measured), 0.25);
}

TEST_F(KwModelTest, CrossBatchPredictionHolds) {
  // O3: trained at BS 512 only, the model stays accurate at BS 64.
  const auto& campaign = SmallCampaign::Get();
  gpuexec::Profiler profiler(campaign.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const dnn::Network& net = campaign.networks()[0];
  const double predicted = model_->PredictUs(net, a100, 64);
  const double measured = profiler.MeasureE2eUs(net, a100, 64);
  EXPECT_LT(RelativeError(predicted, measured), 0.30);
}

TEST_F(KwModelTest, LayerPredictionsAreNonNegativeAndSumUp) {
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  dnn::Network net = zoo::BuildByName("googlenet");
  double sum = 0;
  for (const dnn::Layer& layer : net.layers()) {
    const double t = model_->PredictLayerUs(layer, "A100", 128);
    EXPECT_GE(t, 0.0) << layer.name;
    sum += t;
  }
  EXPECT_NEAR(model_->PredictUs(net, a100, 128), sum, 1e-6 * sum);
}

TEST_F(KwModelTest, UnknownLayerFallsBackGracefully) {
  // An exotic layer configuration not in any campaign network.
  dnn::NetworkBuilder b("exotic", "Test", dnn::Chw(37, 61, 61));
  b.Conv(41, 3, 1, 1);
  dnn::Network net = b.Build();
  const double t =
      model_->PredictLayerUs(net.layers()[0], "A100", 64);
  EXPECT_GT(t, 0.0);
}

TEST(KwOptionsTest, ClassificationOffForcesOperationDriver) {
  KwOptions options;
  options.classify_drivers = false;
  KwModel model(options);
  model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  for (const auto& [name, km] : model.KernelModels("A100")) {
    EXPECT_EQ(km.driver, gpuexec::CostDriver::kOperation) << name;
  }
}

TEST(KwOptionsTest, ClusteringOffKeepsPerKernelModels) {
  KwOptions options;
  options.cluster = false;
  KwModel model(options);
  model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  EXPECT_EQ(model.ClusterCount("A100"), model.KernelCount("A100"));
}

TEST(KwModelDeathTest, UntrainedGpuIsFatal) {
  KwModel model;
  model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  dnn::Network net = zoo::BuildByName("alexnet");
  EXPECT_EXIT(model.PredictUs(net, gpuexec::GpuByName("V100"), 64),
              ::testing::ExitedWithCode(1), "not trained");
}

TEST(ReducedSignatureTest, DropsShapesKeepsParams) {
  EXPECT_EQ(ReducedSignature("CONV/i3x224x224/o64x112x112/k7x7/s2x2/p3x3/g1"),
            "CONV/k7x7/s2x2/p3x3/g1");
  EXPECT_EQ(ReducedSignature("ReLU/i64x56x56/o64x56x56"), "ReLU");
}

}  // namespace
}  // namespace gpuperf::models
