#include "dnn/memory.h"

#include <gtest/gtest.h>

#include "dnn/flops.h"
#include "zoo/zoo.h"

namespace gpuperf::dnn {
namespace {

TEST(MemoryTest, FootprintGrowsWithBatch) {
  Network net = zoo::BuildByName("resnet50");
  std::int64_t previous = 0;
  for (std::int64_t batch : {1, 8, 64, 512}) {
    const std::int64_t footprint = InferenceFootprintBytes(net, batch);
    EXPECT_GT(footprint, previous);
    previous = footprint;
  }
}

TEST(MemoryTest, FootprintIncludesWeights) {
  Network net = zoo::BuildByName("vgg16");  // 138M params = 553 MB
  EXPECT_GT(InferenceFootprintBytes(net, 1), NetworkWeightBytes(net));
}

TEST(MemoryTest, TrainingCostsMoreThanInference) {
  Network net = zoo::BuildByName("resnet50");
  EXPECT_GT(TrainingFootprintBytes(net, 64),
            2 * InferenceFootprintBytes(net, 64));
}

TEST(MemoryTest, RealisticMagnitudes) {
  // ResNet-50 inference at BS 256 runs comfortably on a 16 GB V100 but
  // a 2 GB Quadro P620 cannot hold that batch.
  Network net = zoo::BuildByName("resnet50");
  EXPECT_TRUE(FitsInMemory(InferenceFootprintBytes(net, 256), 16));
  EXPECT_FALSE(FitsInMemory(InferenceFootprintBytes(net, 256), 2));
}

TEST(MemoryTest, BigVggAtBs512DoesNotFitElevenGb) {
  // The motivating case for the paper's out-of-memory data cleaning.
  Network net = zoo::BuildByName("vgg19_bn");
  EXPECT_FALSE(FitsInMemory(InferenceFootprintBytes(net, 512), 11));
  EXPECT_TRUE(FitsInMemory(InferenceFootprintBytes(net, 512), 40));
}

TEST(MemoryTest, LargestFittingBatchIsMonotoneInMemory) {
  Network net = zoo::BuildByName("resnet18");
  std::int64_t previous = 0;
  for (double memory_gb : {2.0, 11.0, 24.0, 40.0}) {
    const std::int64_t batch = LargestFittingBatch(net, memory_gb);
    EXPECT_GE(batch, previous);
    previous = batch;
  }
  EXPECT_GE(previous, 256);
}

TEST(MemoryTest, LargestFittingBatchRespectsLimit) {
  Network net = zoo::BuildByName("mobilenet_v2");
  EXPECT_LE(LargestFittingBatch(net, 1000.0, 64), 64);
}

TEST(MemoryTest, ZeroForImpossiblyTinyDevice) {
  Network net = zoo::BuildByName("vgg19");
  EXPECT_EQ(LargestFittingBatch(net, 0.1), 0);
}

TEST(MemoryDeathTest, NonPositiveBatchAborts) {
  Network net = zoo::BuildByName("alexnet");
  EXPECT_DEATH(InferenceFootprintBytes(net, 0), "check failed");
  EXPECT_DEATH(TrainingFootprintBytes(net, -1), "check failed");
}

}  // namespace
}  // namespace gpuperf::dnn
