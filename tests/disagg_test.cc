#include "simsys/disagg.h"

#include <gtest/gtest.h>

namespace gpuperf::simsys {
namespace {

DisaggConfig Config(double bw, int window = 8) {
  DisaggConfig config;
  config.link_bandwidth_gbps = bw;
  config.link_latency_us = 1.0;
  config.prefetch_window = window;
  return config;
}

TEST(DisaggTest, InfiniteBandwidthMatchesComputeSum) {
  std::vector<double> compute{100, 200, 300};
  std::vector<std::int64_t> weights{1'000'000, 1'000'000, 1'000'000};
  DisaggResult result =
      SimulateDisaggregated(compute, weights, Config(1e9));
  EXPECT_NEAR(result.total_time_us, 600.0, 1.5);  // + tiny first fetch
  EXPECT_NEAR(result.compute_us, 600.0, 1e-9);
  EXPECT_LT(result.stall_us, 2.0);
}

TEST(DisaggTest, SlowLinkIsTransferBound) {
  std::vector<double> compute{10, 10, 10};
  // 100 MB total at 1 GB/s = 100 ms.
  std::vector<std::int64_t> weights(3, 33'333'333);
  DisaggResult result = SimulateDisaggregated(compute, weights, Config(1));
  EXPECT_GT(result.total_time_us, 99'000.0);
  EXPECT_GT(result.stall_us, 0.9 * result.total_time_us);
}

TEST(DisaggTest, MonotoneInBandwidth) {
  std::vector<double> compute(50, 100.0);
  std::vector<std::int64_t> weights(50, 4'000'000);
  double previous = 1e300;
  for (double bw : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    DisaggResult result =
        SimulateDisaggregated(compute, weights, Config(bw));
    EXPECT_LE(result.total_time_us, previous + 1e-9) << bw;
    previous = result.total_time_us;
  }
}

TEST(DisaggTest, TotalAtLeastMaxOfComputeAndTransfer) {
  std::vector<double> compute{50, 80, 20, 90};
  std::vector<std::int64_t> weights{8'000'000, 2'000'000, 4'000'000,
                                    1'000'000};
  const double bw = 32;
  DisaggResult result = SimulateDisaggregated(compute, weights, Config(bw));
  double compute_sum = 0;
  std::int64_t byte_sum = 0;
  for (double c : compute) compute_sum += c;
  for (std::int64_t w : weights) byte_sum += w;
  const double transfer_us = static_cast<double>(byte_sum) / (bw * 1e9) * 1e6;
  EXPECT_GE(result.total_time_us, compute_sum - 1e-9);
  EXPECT_GE(result.total_time_us, transfer_us - 1e-9);
  EXPECT_NEAR(result.compute_us + result.stall_us, result.total_time_us,
              1e-6);
}

TEST(DisaggTest, WindowOneSerializesFetchAndCompute) {
  // With a single-layer window, fetch i+1 cannot overlap compute i+0's
  // predecessors fully; total must exceed the windowed pipeline of a
  // larger window.
  std::vector<double> compute(20, 100.0);
  std::vector<std::int64_t> weights(20, 3'200'000);  // 100 us at 32 GB/s
  DisaggResult narrow =
      SimulateDisaggregated(compute, weights, Config(32, 1));
  DisaggResult wide = SimulateDisaggregated(compute, weights, Config(32, 8));
  EXPECT_GT(narrow.total_time_us, wide.total_time_us);
}

TEST(DisaggTest, ZeroWeightLayersNeverStall) {
  std::vector<double> compute{10, 10, 10};
  std::vector<std::int64_t> weights{0, 0, 0};
  DisaggResult result = SimulateDisaggregated(compute, weights, Config(1));
  EXPECT_NEAR(result.total_time_us, 30.0, 1e-9);
  EXPECT_NEAR(result.stall_us, 0.0, 1e-9);
}

TEST(DisaggTest, EmptyNetworkIsZero) {
  DisaggResult result = SimulateDisaggregated({}, {}, Config(16));
  EXPECT_DOUBLE_EQ(result.total_time_us, 0.0);
}

TEST(DisaggTest, EventCountIsReported) {
  std::vector<double> compute{10, 10};
  std::vector<std::int64_t> weights{1000, 1000};
  DisaggResult result = SimulateDisaggregated(compute, weights, Config(16));
  EXPECT_GT(result.events, 3);
}

TEST(DisaggDeathTest, MismatchedVectorsAbort) {
  std::vector<double> compute{10};
  std::vector<std::int64_t> weights{1, 2};
  EXPECT_DEATH(SimulateDisaggregated(compute, weights, Config(16)),
               "check failed");
}

TEST(DisaggDeathTest, ZeroWindowAborts) {
  std::vector<double> compute{10};
  std::vector<std::int64_t> weights{1};
  EXPECT_DEATH(SimulateDisaggregated(compute, weights, Config(16, 0)),
               "check failed");
}

}  // namespace
}  // namespace gpuperf::simsys
