#include "obs/span_tracer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"
#include "simsys/serving.h"

namespace gpuperf::obs {
namespace {

TEST(ChromeTraceWriterTest, EmitsGoldenJson) {
  ChromeTraceWriter writer;
  writer.SetProcessName(1, "sim");
  writer.SetThreadName(1, 2, "gpu 0");
  writer.AddComplete("job 0", "service", 1, 2, 10.0, 5.5,
                     "\"attempt\":0");
  writer.AddInstant("drop", "retry", 1, 0, 20.25);
  writer.AddMetadata("seed", "7");
  EXPECT_EQ(writer.event_count(), 4u);
  EXPECT_EQ(
      writer.Json(),
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"sim\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"gpu 0\"}},\n"
      "{\"name\":\"job 0\",\"cat\":\"service\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":2,\"ts\":10.000,\"dur\":5.500,\"args\":{\"attempt\":0}},\n"
      "{\"name\":\"drop\",\"cat\":\"retry\",\"ph\":\"i\",\"s\":\"t\","
      "\"pid\":1,\"tid\":0,\"ts\":20.250,\"args\":{}}\n"
      "],\"displayTimeUnit\":\"ms\",\"metadata\":{\"seed\":7}}\n");
}

TEST(ChromeTraceWriterTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(ChromeTraceWriter::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  ChromeTraceWriter writer;
  writer.AddComplete("conv \"1x1\"", "layer", 1, 1, 0.0, 1.0);
  EXPECT_NE(writer.Json().find("\"name\":\"conv \\\"1x1\\\"\""),
            std::string::npos);
}

TEST(ChromeTraceWriterTest, EscapesControlCharacters) {
  // Raw control bytes inside a JSON string are invalid — Perfetto and
  // chrome://tracing reject the whole file.
  EXPECT_EQ(ChromeTraceWriter::JsonEscape("a\nb\rc\td"), "a\\nb\\rc\\td");
  EXPECT_EQ(ChromeTraceWriter::JsonEscape(std::string("x\x01y\x1fz")),
            "x\\u0001y\\u001fz");
  ChromeTraceWriter writer;
  writer.AddComplete("conv\n3x3", "layer", 1, 1, 0.0, 1.0);
  const std::string json = writer.Json();
  EXPECT_NE(json.find("\"name\":\"conv\\n3x3\""), std::string::npos);
  EXPECT_EQ(json.find("conv\n3x3"), std::string::npos);
}

TEST(ChromeTraceWriterTest, EmptyWriterIsStillAValidDocument) {
  ChromeTraceWriter writer;
  EXPECT_EQ(writer.Json(),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTraceWriterTest, UnwritablePathIsAnError) {
  ChromeTraceWriter writer;
  const Status status = writer.WriteFile("/nonexistent-gpuperf-dir/t.json");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("cannot open trace file"),
            std::string::npos);
}

TEST(SpanTracerTest, AppendToEmitsNamesThenEventsInRecordingOrder) {
  SpanTracer tracer;
  tracer.SetTrackName(1, "gpu 0");
  tracer.SetTrackName(0, "dispatcher");
  tracer.Span(1, "job 0", "service", 10.0, 15.0, "\"attempt\":0");
  tracer.Instant(0, "shed", "admission", 20.0);
  EXPECT_EQ(tracer.size(), 2u);

  ChromeTraceWriter writer;
  tracer.AppendTo(&writer, 3, "cell 2");
  EXPECT_EQ(
      writer.Json(),
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
      "\"args\":{\"name\":\"cell 2\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,"
      "\"args\":{\"name\":\"dispatcher\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,\"tid\":1,"
      "\"args\":{\"name\":\"gpu 0\"}},\n"
      "{\"name\":\"job 0\",\"cat\":\"service\",\"ph\":\"X\",\"pid\":3,"
      "\"tid\":1,\"ts\":10.000,\"dur\":5.000,\"args\":{\"attempt\":0}},\n"
      "{\"name\":\"shed\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"t\","
      "\"pid\":3,\"tid\":0,\"ts\":20.000,\"args\":{}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n");
}

// --- Serving-simulator integration: tracing must never perturb results,
// and the merged grid trace must be byte-identical across thread counts.

std::vector<std::vector<double>> AffinityTimes() {
  return {{1000, 8000}, {8000, 1000}};
}

simsys::ServingConfig StressConfig() {
  simsys::ServingConfig config;
  config.arrival_rate_per_s = 150;
  config.duration_s = 10;
  config.seed = 7;
  config.policy = simsys::DispatchPolicy::kLeastOutstanding;
  config.faults.mtbf_s = 2;     // faults → retries, drops
  config.faults.mttr_s = 1;
  config.faults.seed = 11;
  config.retry.max_retries = 1;
  config.queue_cap = 4;         // → admission sheds
  config.slo_ms = 50;           // → predicted-SLO sheds + misses
  config.breaker.failure_threshold = 2;  // → breaker opens
  return config;
}

TEST(SpanTracerTest, TracingDoesNotChangeSimulationResults) {
  const auto times = AffinityTimes();
  const std::vector<double> mix = {1.0, 1.0};
  const simsys::ServingConfig config = StressConfig();
  StatusOr<simsys::ServingResult> untraced =
      simsys::SimulateServing(times, times, mix, config);
  SpanTracer tracer;
  StatusOr<simsys::ServingResult> traced =
      simsys::SimulateServing(times, times, mix, config, &tracer);
  ASSERT_TRUE(untraced.ok());
  ASSERT_TRUE(traced.ok());
  EXPECT_FALSE(tracer.empty());
  EXPECT_EQ(traced->completed, untraced->completed);
  EXPECT_EQ(traced->dropped, untraced->dropped);
  EXPECT_EQ(traced->shed_on_admission, untraced->shed_on_admission);
  EXPECT_EQ(traced->retries, untraced->retries);
  EXPECT_EQ(traced->breaker_opens, untraced->breaker_opens);
  EXPECT_EQ(traced->p99_ms, untraced->p99_ms);
}

std::vector<simsys::ServingGridCell> StressCells() {
  return {{simsys::DispatchPolicy::kRoundRobin, 7},
          {simsys::DispatchPolicy::kLeastOutstanding, 7},
          {simsys::DispatchPolicy::kLeastOutstanding, 8},
          {simsys::DispatchPolicy::kPredictedLeastLoad, 7}};
}

TEST(SpanTracerTest, GridTraceIsByteIdenticalAcrossJobCounts) {
  const auto times = AffinityTimes();
  const std::vector<double> mix = {1.0, 1.0};
  const simsys::ServingConfig config = StressConfig();
  const std::vector<simsys::ServingGridCell> cells = StressCells();

  ChromeTraceWriter serial, parallel;
  const auto grid1 = simsys::SimulateServingGrid(times, times, mix, config,
                                                 cells, /*jobs=*/1, &serial);
  const auto grid4 = simsys::SimulateServingGrid(times, times, mix, config,
                                                 cells, /*jobs=*/4, &parallel);
  for (const auto& cell : grid1) ASSERT_TRUE(cell.ok());
  for (const auto& cell : grid4) ASSERT_TRUE(cell.ok());
  EXPECT_GT(serial.event_count(), cells.size());  // real events, not just names
  EXPECT_EQ(serial.Json(), parallel.Json());
}

TEST(SpanTracerTest, MetricsSnapshotIsByteIdenticalAcrossJobCounts) {
  const auto times = AffinityTimes();
  const std::vector<double> mix = {1.0, 1.0};
  const simsys::ServingConfig config = StressConfig();
  const std::vector<simsys::ServingGridCell> cells = StressCells();
  MetricsRegistry& registry = MetricsRegistry::Global();

  registry.ResetAll();
  auto grid1 =
      simsys::SimulateServingGrid(times, times, mix, config, cells, 1);
  for (const auto& cell : grid1) ASSERT_TRUE(cell.ok());
  const std::string csv1 = registry.CsvSnapshot();
  const std::string prom1 = registry.PrometheusSnapshot();

  registry.ResetAll();
  auto grid4 =
      simsys::SimulateServingGrid(times, times, mix, config, cells, 4);
  for (const auto& cell : grid4) ASSERT_TRUE(cell.ok());
  EXPECT_EQ(registry.CsvSnapshot(), csv1);
  EXPECT_EQ(registry.PrometheusSnapshot(), prom1);
}

}  // namespace
}  // namespace gpuperf::obs
