#include "models/lw_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "gpuexec/profiler.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

class LwModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  }
  LwModel model_;
};

TEST_F(LwModelTest, TrainsFitsForCommonLayerTypes) {
  for (dnn::LayerKind kind :
       {dnn::LayerKind::kConv2d, dnn::LayerKind::kBatchNorm,
        dnn::LayerKind::kRelu, dnn::LayerKind::kLinear,
        dnn::LayerKind::kMaxPool, dnn::LayerKind::kAdd}) {
    EXPECT_NE(model_.FitFor("A100", kind), nullptr)
        << dnn::LayerKindName(kind);
  }
}

TEST_F(LwModelTest, NetworkPredictionIsSumOfLayerPredictions) {
  dnn::Network net = zoo::BuildByName("resnet18");
  double sum = 0;
  for (const dnn::Layer& layer : net.layers()) {
    sum += model_.PredictLayerUs(layer, "A100", 128);
  }
  EXPECT_NEAR(model_.PredictUs(net, gpuexec::GpuByName("A100"), 128), sum,
              1e-6 * sum);
}

TEST_F(LwModelTest, UnseenLayerKindPredictsZero) {
  dnn::Layer layer;
  layer.kind = dnn::LayerKind::kEmbedding;  // absent from the CNN campaign
  layer.params = dnn::EmbeddingParams{1000, 64};
  layer.inputs = {dnn::Chw(1, 16, 1)};
  layer.output = dnn::Chw(64, 16, 1);
  EXPECT_DOUBLE_EQ(model_.PredictLayerUs(layer, "A100", 4), 0.0);
}

TEST_F(LwModelTest, LayerPredictionsAreNonNegative) {
  dnn::Network net = zoo::BuildByName("mobilenet_v2");
  for (const dnn::Layer& layer : net.layers()) {
    EXPECT_GE(model_.PredictLayerUs(layer, "A100", 512), 0.0)
        << layer.name;
  }
}

TEST_F(LwModelTest, HeldOutErrorBetweenE2eAndKw) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  gpuexec::Profiler profiler(campaign.oracle());
  std::vector<double> predicted, measured;
  for (const dnn::Network* net : campaign.TestNetworks()) {
    predicted.push_back(model_.PredictUs(*net, a100, 512));
    measured.push_back(profiler.MeasureE2eUs(*net, a100, 512));
  }
  const double mape = Mape(predicted, measured);
  EXPECT_LT(mape, 0.6);   // better than a broken model
  EXPECT_GT(mape, 0.02);  // but not kernel-level accurate
}

TEST_F(LwModelTest, ConvSlopeReflectsGpuSpeed) {
  const regression::LinearFit* a100 =
      model_.FitFor("A100", dnn::LayerKind::kConv2d);
  const regression::LinearFit* gtx =
      model_.FitFor("GTX 1080 Ti", dnn::LayerKind::kConv2d);
  ASSERT_NE(a100, nullptr);
  ASSERT_NE(gtx, nullptr);
  EXPECT_LT(a100->slope, gtx->slope);
}

TEST(LwModelBasics, SetFitInstallsFit) {
  LwModel model;
  regression::LinearFit fit;
  fit.slope = 1e-6;
  fit.intercept = 2.0;
  model.SetFit("X", dnn::LayerKind::kRelu, fit);
  const regression::LinearFit* got = model.FitFor("X", dnn::LayerKind::kRelu);
  ASSERT_NE(got, nullptr);
  EXPECT_DOUBLE_EQ(got->intercept, 2.0);
}

TEST(LwModelBasics, NameIsStable) { EXPECT_EQ(LwModel().Name(), "LW"); }

}  // namespace
}  // namespace gpuperf::models
