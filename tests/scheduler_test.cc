#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gpuperf::sched {
namespace {

TEST(MakespanTest, ComputesMaxGpuLoad) {
  // jobs x gpus
  std::vector<std::vector<double>> times{{10, 20}, {30, 5}, {10, 10}};
  EXPECT_DOUBLE_EQ(Makespan(times, {0, 1, 0}), 20.0);  // loads 20, 5
  EXPECT_DOUBLE_EQ(Makespan(times, {0, 0, 0}), 50.0);
}

TEST(BruteForceTest, FindsObviousOptimum) {
  std::vector<std::vector<double>> times{{10, 100}, {100, 10}};
  Schedule schedule = BruteForceSchedule(times);
  EXPECT_EQ(schedule.assignment, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(schedule.makespan_us, 10.0);
}

TEST(BruteForceTest, BalancesEqualJobs) {
  std::vector<std::vector<double>> times(4, std::vector<double>{10, 10});
  Schedule schedule = BruteForceSchedule(times);
  EXPECT_DOUBLE_EQ(schedule.makespan_us, 20.0);
  EXPECT_DOUBLE_EQ(schedule.gpu_loads[0], 20.0);
  EXPECT_DOUBLE_EQ(schedule.gpu_loads[1], 20.0);
}

TEST(BruteForceTest, SingleGpuSumsEverything) {
  std::vector<std::vector<double>> times{{5}, {7}, {9}};
  Schedule schedule = BruteForceSchedule(times);
  EXPECT_DOUBLE_EQ(schedule.makespan_us, 21.0);
}

TEST(BruteForceDeathTest, ExplosiveSpaceAborts) {
  // 40 jobs x 4 gpus = 4^40 assignments.
  std::vector<std::vector<double>> times(40,
                                         std::vector<double>{1, 1, 1, 1});
  EXPECT_DEATH(BruteForceSchedule(times), "too large");
}

TEST(GreedyTest, MatchesOptimumOnEasyInstances) {
  std::vector<std::vector<double>> times{{8, 8}, {6, 6}, {4, 4}, {2, 2}};
  Schedule greedy = GreedySchedule(times);
  Schedule optimal = BruteForceSchedule(times);
  EXPECT_DOUBLE_EQ(greedy.makespan_us, optimal.makespan_us);
}

class RandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceTest, BruteForceIsNeverWorseThanGreedy) {
  Rng rng(GetParam());
  const int jobs = 2 + static_cast<int>(rng.NextBelow(7));
  const int gpus = 2 + static_cast<int>(rng.NextBelow(2));
  std::vector<std::vector<double>> times(jobs,
                                         std::vector<double>(gpus, 0.0));
  for (auto& row : times) {
    for (double& t : row) t = rng.NextRange(1, 100);
  }
  Schedule greedy = GreedySchedule(times);
  Schedule optimal = BruteForceSchedule(times);
  EXPECT_LE(optimal.makespan_us, greedy.makespan_us + 1e-9);
  // The optimal makespan can never beat the trivial lower bound.
  double lower_bound = 0;
  for (const auto& row : times) {
    lower_bound =
        std::max(lower_bound, *std::min_element(row.begin(), row.end()));
  }
  EXPECT_GE(optimal.makespan_us, lower_bound - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range(1, 21));

TEST(FastestGpuTest, PicksRowMinima) {
  std::vector<std::vector<double>> times{{10, 20}, {30, 5}, {7, 7}};
  EXPECT_EQ(FastestGpuPerJob(times), (std::vector<int>{0, 1, 0}));
}

TEST(GreedyTest, LoadsAreConsistentWithAssignment) {
  Rng rng(5);
  std::vector<std::vector<double>> times(10, std::vector<double>(3, 0.0));
  for (auto& row : times) {
    for (double& t : row) t = rng.NextRange(1, 50);
  }
  Schedule schedule = GreedySchedule(times);
  EXPECT_DOUBLE_EQ(schedule.makespan_us,
                   Makespan(times, schedule.assignment));
}

}  // namespace
}  // namespace gpuperf::sched
