// End-to-end pipeline tests: the paper's headline results must reproduce
// in miniature on the shared small campaign — error ordering E2E > LW >
// KW, a usable IGKW on an unseen GPU, and the observations O1/O3.

#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dnn/flops.h"
#include "gpuexec/profiler.h"
#include "models/e2e_model.h"
#include "models/igkw_model.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf {
namespace {

using testing::SmallCampaign;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& campaign = SmallCampaign::Get();
    e2e_ = new models::E2eModel();
    lw_ = new models::LwModel();
    kw_ = new models::KwModel();
    igkw_ = new models::IgkwModel();
    e2e_->Train(campaign.data(), campaign.split());
    lw_->Train(campaign.data(), campaign.split());
    kw_->Train(campaign.data(), campaign.split());
    igkw_->Train(campaign.data(), campaign.split(),
                 {"A100", "A40", "GTX 1080 Ti"});
  }

  static double EvalMape(const models::Predictor& predictor,
                         const std::string& gpu_name) {
    const auto& campaign = SmallCampaign::Get();
    const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(gpu_name);
    gpuexec::Profiler profiler(campaign.oracle());
    std::vector<double> predicted, measured;
    for (const dnn::Network* net : campaign.TestNetworks()) {
      predicted.push_back(predictor.PredictUs(*net, gpu, 512));
      measured.push_back(profiler.MeasureE2eUs(*net, gpu, 512));
    }
    return Mape(predicted, measured);
  }

  static models::E2eModel* e2e_;
  static models::LwModel* lw_;
  static models::KwModel* kw_;
  static models::IgkwModel* igkw_;
};

models::E2eModel* IntegrationTest::e2e_ = nullptr;
models::LwModel* IntegrationTest::lw_ = nullptr;
models::KwModel* IntegrationTest::kw_ = nullptr;
models::IgkwModel* IntegrationTest::igkw_ = nullptr;

TEST_F(IntegrationTest, PaperErrorOrderingHolds) {
  const double e2e = EvalMape(*e2e_, "A100");
  const double lw = EvalMape(*lw_, "A100");
  const double kw = EvalMape(*kw_, "A100");
  EXPECT_GT(e2e, lw);
  EXPECT_GT(lw, kw);
  EXPECT_LT(kw, 0.15);
}

TEST_F(IntegrationTest, IgkwUnseenGpuWorseThanKwButUsable) {
  const double kw = EvalMape(*kw_, "TITAN RTX");
  const double igkw = EvalMape(*igkw_, "TITAN RTX");
  EXPECT_GT(igkw, kw);
  EXPECT_LT(igkw, 0.35);
}

TEST_F(IntegrationTest, ObservationO1TimeCorrelatesWithFlops) {
  const auto& campaign = SmallCampaign::Get();
  std::vector<double> log_flops, log_time;
  for (const dataset::NetworkRow& row :
       campaign.data().network_rows()) {
    if (campaign.data().gpus().Get(row.gpu_id) != "A100") continue;
    log_flops.push_back(std::log10(static_cast<double>(row.total_flops)));
    log_time.push_back(std::log10(row.e2e_us));
  }
  EXPECT_GT(PearsonCorrelation(log_flops, log_time), 0.9);
}

TEST_F(IntegrationTest, ObservationO3TimeLinearInBatch) {
  const auto& campaign = SmallCampaign::Get();
  gpuexec::Profiler profiler(campaign.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  dnn::Network net = zoo::BuildByName("resnet50");
  std::vector<double> batches, times;
  for (std::int64_t batch = 32; batch <= 512; batch += 48) {
    batches.push_back(static_cast<double>(batch));
    times.push_back(profiler.MeasureE2eUs(net, a100, batch));
  }
  regression::LinearFit fit = regression::FitLinear(batches, times);
  EXPECT_GT(fit.r2, 0.98);
}

TEST_F(IntegrationTest, KwPicksTheFasterGpu) {
  // Figure 18's property on the campaign GPUs.
  const auto& campaign = SmallCampaign::Get();
  gpuexec::Profiler profiler(campaign.oracle());
  const gpuexec::GpuSpec& a40 = gpuexec::GpuByName("A40");
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  int correct = 0, total = 0;
  for (const dnn::Network* net : campaign.TestNetworks()) {
    const bool predicted_a40 = kw_->PredictUs(*net, a40, 256) <
                               kw_->PredictUs(*net, titan, 256);
    const bool actual_a40 = profiler.MeasureE2eUs(*net, a40, 256) <
                            profiler.MeasureE2eUs(*net, titan, 256);
    ++total;
    if (predicted_a40 == actual_a40) ++correct;
  }
  EXPECT_GE(correct, total * 2 / 3);
}

TEST_F(IntegrationTest, PredictionIsFastComparedToProfiling) {
  // The paper's speed claim in miniature: one KW prediction must be at
  // clearly cheaper than one profiled measurement.
  const auto& campaign = SmallCampaign::Get();
  gpuexec::Profiler profiler(campaign.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const dnn::Network& net = *campaign.TestNetworks()[0];

  const auto p0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) kw_->PredictUs(net, a100, 256);
  const auto p1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) profiler.Profile(net, a100, 256);
  const auto p2 = std::chrono::steady_clock::now();
  EXPECT_LT((p1 - p0).count() * 2, (p2 - p1).count());
}

}  // namespace
}  // namespace gpuperf
