#include "common/string_util.h"

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

TEST(SplitTest, BasicSplitting) {
  EXPECT_EQ(Split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyParts) {
  EXPECT_EQ(Split("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("resnet50", "resnet"));
  EXPECT_FALSE(StartsWith("res", "resnet"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(FormatTest, PrintfSemantics) {
  EXPECT_EQ(Format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(Format("no args"), "no args");
}

TEST(FormatTest, LongOutputNotTruncated) {
  std::string long_text(500, 'a');
  EXPECT_EQ(Format("%s", long_text.c_str()).size(), 500u);
}

TEST(PrettyTest, SignificantDigits) {
  EXPECT_EQ(Pretty(3.14159, 3), "3.14");
  EXPECT_EQ(Pretty(1000.0, 4), "1000");
}

TEST(EngineeringTest, PicksSuffix) {
  EXPECT_EQ(Engineering(1500.0), "1.5k");
  EXPECT_EQ(Engineering(2.5e9), "2.5G");
  EXPECT_EQ(Engineering(42.0), "42");
  EXPECT_EQ(Engineering(3.2e12), "3.2T");
}

}  // namespace
}  // namespace gpuperf
