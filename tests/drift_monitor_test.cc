#include "models/drift_monitor.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace gpuperf::models {
namespace {

DriftMonitorOptions FastOptions() {
  DriftMonitorOptions options;
  options.min_observations = 4;
  return options;
}

// A persistent +10% bias: log(1.1) per observation.
constexpr double kTenPercent = 0.09531017980432486;

TEST(DriftMonitorTest, NoObservationsMeansNoTrackers) {
  DriftMonitor monitor;
  EXPECT_EQ(monitor.TrackedPairs(), 0u);
  EXPECT_TRUE(monitor.Tripped().empty());
  EXPECT_EQ(monitor.Find("A40", 1), nullptr);
  EXPECT_DOUBLE_EQ(monitor.MeanAbsEwma("A40"), 0.0);
}

TEST(DriftMonitorTest, FirstObservationSeedsEwmaDirectly) {
  DriftMonitor monitor;
  monitor.Observe("A40", 100001, 0.3);
  const DriftTracker* tracker = monitor.Find("A40", 100001);
  ASSERT_NE(tracker, nullptr);
  EXPECT_DOUBLE_EQ(tracker->ewma, 0.3);
  EXPECT_EQ(tracker->observations, 1);
  EXPECT_FALSE(tracker->tripped);
}

TEST(DriftMonitorTest, PersistentPositiveBiasTrips) {
  DriftMonitor monitor(FastOptions());
  // CUSUM grows by (0.0953 - k) per step; h = 0.35 is crossed after
  // ~5 observations, min_observations = 4 allows it.
  for (int i = 0; i < 8; ++i) monitor.Observe("A40", 100001, kTenPercent);
  const DriftTracker* tracker = monitor.Find("A40", 100001);
  ASSERT_NE(tracker, nullptr);
  EXPECT_TRUE(tracker->tripped);
  const std::vector<DriftKey> tripped = monitor.Tripped();
  ASSERT_EQ(tripped.size(), 1u);
  EXPECT_EQ(tripped[0].gpu, "A40");
  EXPECT_EQ(tripped[0].cluster_id, 100001);
}

TEST(DriftMonitorTest, PersistentNegativeBiasTripsToo) {
  DriftMonitor monitor(FastOptions());
  for (int i = 0; i < 8; ++i) monitor.Observe("A40", 100001, -kTenPercent);
  const DriftTracker* tracker = monitor.Find("A40", 100001);
  ASSERT_NE(tracker, nullptr);
  EXPECT_TRUE(tracker->tripped);
  EXPECT_GT(tracker->cusum_neg, monitor.options().cusum_h);
}

TEST(DriftMonitorTest, ZeroMeanNoiseDoesNotTrip) {
  DriftMonitor monitor(FastOptions());
  // Alternating small residuals inside the CUSUM slack never accumulate.
  for (int i = 0; i < 200; ++i) {
    monitor.Observe("A40", 100001, (i % 2 == 0) ? 0.015 : -0.015);
  }
  const DriftTracker* tracker = monitor.Find("A40", 100001);
  ASSERT_NE(tracker, nullptr);
  EXPECT_FALSE(tracker->tripped);
  EXPECT_TRUE(monitor.Tripped().empty());
}

TEST(DriftMonitorTest, MinObservationsGatesTheTrip) {
  DriftMonitorOptions options;
  options.min_observations = 50;
  DriftMonitor monitor(options);
  for (int i = 0; i < 49; ++i) monitor.Observe("A40", 100001, kTenPercent);
  EXPECT_FALSE(monitor.Find("A40", 100001)->tripped);
  monitor.Observe("A40", 100001, kTenPercent);
  EXPECT_TRUE(monitor.Find("A40", 100001)->tripped);
}

TEST(DriftMonitorTest, PairsAreIndependent) {
  DriftMonitor monitor(FastOptions());
  for (int i = 0; i < 12; ++i) {
    monitor.Observe("A40", 100001, kTenPercent);  // drifting
    monitor.Observe("A40", 100002, 0.0);          // healthy cluster
    monitor.Observe("V100", 100001, 0.0);         // healthy GPU
  }
  EXPECT_EQ(monitor.TrackedPairs(), 3u);
  const std::vector<DriftKey> tripped = monitor.Tripped();
  ASSERT_EQ(tripped.size(), 1u);
  EXPECT_EQ(tripped[0].gpu, "A40");
  EXPECT_EQ(tripped[0].cluster_id, 100001);
}

TEST(DriftMonitorTest, TrippedOrderIsDeterministic) {
  DriftMonitor monitor(FastOptions());
  for (int i = 0; i < 12; ++i) {
    monitor.Observe("V100", 100002, kTenPercent);
    monitor.Observe("A40", 100001, kTenPercent);
    monitor.Observe("A40", 100003, kTenPercent);
  }
  const std::vector<DriftKey> tripped = monitor.Tripped();
  ASSERT_EQ(tripped.size(), 3u);
  EXPECT_EQ(tripped[0], (DriftKey{"A40", 100001}));
  EXPECT_EQ(tripped[1], (DriftKey{"A40", 100003}));
  EXPECT_EQ(tripped[2], (DriftKey{"V100", 100002}));
}

TEST(DriftMonitorTest, NonFiniteResidualsAreDropped) {
  DriftMonitor monitor(FastOptions());
  monitor.Observe("A40", 100001, std::numeric_limits<double>::quiet_NaN());
  monitor.Observe("A40", 100001, std::numeric_limits<double>::infinity());
  EXPECT_EQ(monitor.TrackedPairs(), 0u);
}

TEST(DriftMonitorTest, MeanAbsEwmaAveragesOverTheGpu) {
  DriftMonitor monitor;
  monitor.Observe("A40", 100001, 0.2);
  monitor.Observe("A40", 100002, -0.1);
  monitor.Observe("V100", 100001, 0.4);
  EXPECT_NEAR(monitor.MeanAbsEwma("A40"), (0.2 + 0.1) / 2, 1e-12);
  EXPECT_NEAR(monitor.MeanAbsEwma("V100"), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(monitor.MeanAbsEwma("GTX 1080 Ti"), 0.0);
}

TEST(DriftMonitorTest, ResetForgetsOnePair) {
  DriftMonitor monitor(FastOptions());
  for (int i = 0; i < 12; ++i) {
    monitor.Observe("A40", 100001, kTenPercent);
    monitor.Observe("A40", 100002, kTenPercent);
  }
  EXPECT_EQ(monitor.Tripped().size(), 2u);
  monitor.Reset("A40", 100001);
  EXPECT_EQ(monitor.TrackedPairs(), 1u);
  const std::vector<DriftKey> tripped = monitor.Tripped();
  ASSERT_EQ(tripped.size(), 1u);
  EXPECT_EQ(tripped[0].cluster_id, 100002);
  // The reset pair starts over: one fresh observation seeds a new EWMA.
  monitor.Observe("A40", 100001, 0.0);
  const DriftTracker* tracker = monitor.Find("A40", 100001);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->observations, 1);
  EXPECT_FALSE(tracker->tripped);
}

TEST(DriftMonitorTest, ResetAllDropsEverything) {
  DriftMonitor monitor(FastOptions());
  for (int i = 0; i < 12; ++i) monitor.Observe("A40", 100001, kTenPercent);
  monitor.ResetAll();
  EXPECT_EQ(monitor.TrackedPairs(), 0u);
  EXPECT_TRUE(monitor.Tripped().empty());
}

TEST(DriftMonitorTest, ReplayIsBitIdentical) {
  // The determinism contract: the same residual stream produces the
  // same tracker state, bit for bit.
  DriftMonitor a(FastOptions());
  DriftMonitor b(FastOptions());
  const double residuals[] = {0.1, -0.02, 0.07, 0.11, -0.3, 0.09, 0.08};
  for (double r : residuals) {
    a.Observe("A40", 100001, r);
    b.Observe("A40", 100001, r);
  }
  const DriftTracker* ta = a.Find("A40", 100001);
  const DriftTracker* tb = b.Find("A40", 100001);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ta->ewma, tb->ewma);
  EXPECT_EQ(ta->cusum_pos, tb->cusum_pos);
  EXPECT_EQ(ta->cusum_neg, tb->cusum_neg);
  EXPECT_EQ(ta->tripped, tb->tripped);
}

}  // namespace
}  // namespace gpuperf::models
