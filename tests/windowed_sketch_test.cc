#include "obs/windowed_sketch.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace gpuperf::obs {
namespace {

TEST(WindowedSketchTest, EmptyWindowIsAllZeroes) {
  WindowedSketch sketch({1.0, 10.0});
  const SketchWindow window = sketch.current();
  EXPECT_EQ(window.count, 0u);
  EXPECT_EQ(window.sum_fp, 0);
  EXPECT_EQ(window.buckets, (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(WindowedSketch::WindowSum(window), 0.0);
  // An empty window has no quantile to interpolate; the sketch pins it
  // to 0 rather than guessing.
  EXPECT_EQ(sketch.WindowQuantile(window, 50.0), 0.0);
  EXPECT_EQ(sketch.WindowQuantile(window, 99.0), 0.0);
}

TEST(WindowedSketchTest, SingleSampleWindow) {
  WindowedSketch sketch({1.0, 10.0, 100.0});
  sketch.Observe(4.0);
  const SketchWindow window = sketch.TakeWindow();
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.buckets, (std::vector<std::uint64_t>{0, 1, 0, 0}));
  EXPECT_EQ(WindowedSketch::WindowSum(window), 4.0);
  // With one sample, every quantile lands in its bucket.
  EXPECT_LE(sketch.WindowQuantile(window, 50.0), 10.0);
  EXPECT_GT(sketch.WindowQuantile(window, 50.0), 1.0);
}

TEST(WindowedSketchTest, BoundaryValueUsesLeSemantics) {
  // v <= bound lands in that bucket — exactly obs::Histogram's rule, so
  // windowed and cumulative exports of the same stream agree.
  WindowedSketch sketch({1.0, 10.0});
  sketch.Observe(1.0);   // == first bound: bucket 0
  sketch.Observe(10.0);  // == last bound: bucket 1
  const SketchWindow window = sketch.TakeWindow();
  EXPECT_EQ(window.buckets, (std::vector<std::uint64_t>{1, 1, 0}));
}

TEST(WindowedSketchTest, OverflowBucketCatchesEverythingAboveLastBound) {
  WindowedSketch sketch({1.0, 10.0});
  sketch.Observe(10.0001);
  sketch.Observe(1e12);
  const SketchWindow window = sketch.TakeWindow();
  EXPECT_EQ(window.buckets, (std::vector<std::uint64_t>{0, 0, 2}));
  EXPECT_EQ(window.count, 2u);
  // p99 of an all-overflow window clamps to the last finite bound (the
  // +Inf bucket has no finite upper edge to interpolate into).
  EXPECT_EQ(sketch.WindowQuantile(window, 99.0), 10.0);
}

TEST(WindowedSketchTest, TakeWindowStartsAFreshWindow) {
  WindowedSketch sketch({1.0});
  sketch.Observe(0.5);
  const SketchWindow first = sketch.TakeWindow();
  EXPECT_EQ(first.count, 1u);
  const SketchWindow second = sketch.TakeWindow();
  EXPECT_EQ(second.count, 0u);
  EXPECT_EQ(second.sum_fp, 0);
  EXPECT_EQ(second.buckets, (std::vector<std::uint64_t>{0, 0}));
}

TEST(WindowedSketchTest, MergeIsCommutativeByteForByte) {
  WindowedSketch sa({1.0, 10.0}), sb({1.0, 10.0});
  sa.Observe(0.5);
  sa.Observe(4.0);
  sb.Observe(20.0);
  sb.Observe(0.25);
  const SketchWindow a = sa.TakeWindow();
  const SketchWindow b = sb.TakeWindow();
  // Integer state + element-wise adds: merge(A,B) and merge(B,A) are
  // the same bytes, not merely numerically close.
  EXPECT_TRUE(WindowedSketch::Merge(a, b) == WindowedSketch::Merge(b, a));
}

TEST(WindowedSketchTest, MergeIsAssociativeByteForByte) {
  WindowedSketch s({1.0, 10.0});
  std::vector<SketchWindow> windows;
  for (double v : {0.5, 4.0, 20.0}) {
    s.Observe(v);
    windows.push_back(s.TakeWindow());
  }
  const SketchWindow left = WindowedSketch::Merge(
      WindowedSketch::Merge(windows[0], windows[1]), windows[2]);
  const SketchWindow right = WindowedSketch::Merge(
      windows[0], WindowedSketch::Merge(windows[1], windows[2]));
  EXPECT_TRUE(left == right);
  EXPECT_EQ(left.count, 3u);
  EXPECT_EQ(left.buckets, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(WindowedSketchTest, MergeWithEmptyIsIdentity) {
  WindowedSketch s({1.0});
  s.Observe(0.5);
  const SketchWindow a = s.TakeWindow();
  const SketchWindow empty = s.TakeWindow();
  EXPECT_TRUE(WindowedSketch::Merge(a, empty) == a);
  EXPECT_TRUE(WindowedSketch::Merge(empty, a) == a);
}

TEST(WindowedSketchTest, FixedPointSumIsOrderIndependent) {
  // Values on the 2^-20 grid accumulate exactly; any observation order
  // yields the same sum_fp integer.
  WindowedSketch forward({100.0}), backward({100.0});
  const std::vector<double> values = {0.25, 1.5, 3.75, 90.0625};
  for (double v : values) forward.Observe(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.Observe(*it);
  }
  const SketchWindow f = forward.TakeWindow();
  const SketchWindow b = backward.TakeWindow();
  EXPECT_EQ(f.sum_fp, b.sum_fp);
  EXPECT_EQ(WindowedSketch::WindowSum(f), 95.5625);
}

TEST(WindowedSketchDeathTest, RejectsBadBoundsAndObservations) {
  EXPECT_DEATH(WindowedSketch({}), "at least one bucket");
  EXPECT_DEATH(WindowedSketch({2.0, 1.0}), "strictly ascending");
  EXPECT_DEATH(WindowedSketch({1.0 / 0.0}), "not finite");
  WindowedSketch sketch({1.0});
  EXPECT_DEATH(sketch.Observe(std::nan("")), "must be finite");
}

TEST(WindowedSketchDeathTest, MergeRejectsMismatchedBounds) {
  WindowedSketch two({1.0, 2.0}), one({1.0});
  const SketchWindow a = two.TakeWindow();
  const SketchWindow b = one.TakeWindow();
  EXPECT_DEATH(WindowedSketch::Merge(a, b), "different bounds");
}

}  // namespace
}  // namespace gpuperf::obs
