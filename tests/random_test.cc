#include "common/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

TEST(StableHashTest, IsDeterministic) {
  EXPECT_EQ(StableHash("kernel_a"), StableHash("kernel_a"));
  EXPECT_NE(StableHash("kernel_a"), StableHash("kernel_b"));
}

TEST(StableHashTest, EmptyStringHashesToFnvOffset) {
  EXPECT_EQ(StableHash(""), 0xcbf29ce484222325ULL);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextRange(-3.5, 12.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 12.25);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.NextBelow(8);
    EXPECT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngDeathTest, NextBelowZeroIsError) {
  Rng rng(10);
  EXPECT_DEATH(rng.NextBelow(0), "check failed");
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

class LogNormalSigmaTest : public ::testing::TestWithParam<double> {};

TEST_P(LogNormalSigmaTest, LogMomentsMatchSigma) {
  const double sigma = GetParam();
  Rng rng(12);
  double log_sum = 0, log_sum_sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextLogNormal(sigma);
    EXPECT_GT(v, 0.0);
    const double lv = std::log(v);
    log_sum += lv;
    log_sum_sq += lv * lv;
  }
  EXPECT_NEAR(log_sum / kN, 0.0, 4 * sigma / std::sqrt(kN) + 1e-12);
  EXPECT_NEAR(std::sqrt(log_sum_sq / kN), sigma, 0.05 * sigma + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, LogNormalSigmaTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5));

TEST(KeyedTest, KeyedLogNormalDeterministicPerKey) {
  EXPECT_DOUBLE_EQ(KeyedLogNormal(5, "gpu/kernel", 0.1),
                   KeyedLogNormal(5, "gpu/kernel", 0.1));
  EXPECT_NE(KeyedLogNormal(5, "gpu/kernel", 0.1),
            KeyedLogNormal(5, "gpu/other", 0.1));
  EXPECT_NE(KeyedLogNormal(5, "gpu/kernel", 0.1),
            KeyedLogNormal(6, "gpu/kernel", 0.1));
}

TEST(KeyedTest, KeyedUniformWithinBounds) {
  for (int i = 0; i < 200; ++i) {
    double v = KeyedUniform(3, "key" + std::to_string(i), 2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace gpuperf
