#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace gpuperf {
namespace {

TEST(MeanTest, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StdDevTest, KnownValue) {
  // Sample std dev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0),
              1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(GeoMeanTest, KnownValue) {
  EXPECT_NEAR(GeoMean({1, 4, 16}), 4.0, 1e-12);
}

TEST(GeoMeanDeathTest, NonPositiveIsError) {
  EXPECT_DEATH(GeoMean({1.0, 0.0}), "check failed");
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25);
  EXPECT_NEAR(Percentile(v, 25), 17.5, 1e-12);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({30, 10, 20}, 50), 20);
}

TEST(PercentileTest, SingleElementIsEveryPercentile) {
  EXPECT_DOUBLE_EQ(Percentile({42}, 0), 42);
  EXPECT_DOUBLE_EQ(Percentile({42}, 50), 42);
  EXPECT_DOUBLE_EQ(Percentile({42}, 100), 42);
}

TEST(PercentileDeathTest, EmptyInputIsError) {
  EXPECT_DEATH(Percentile({}, 50), "check failed");
}

TEST(PercentileDeathTest, NanInputIsError) {
  EXPECT_DEATH(Percentile({1.0, std::nan(""), 3.0}, 50), "NaN");
}

TEST(HistogramQuantileTest, InterpolatesInsideABucket) {
  // 4 observations in (0, 10]: p50 sits at rank 2 of 4 -> half-way.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {4, 0, 0}, 50), 5.0);
  // rank 1 of 4 -> a quarter of the way through the first bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {4, 0, 0}, 25), 2.5);
}

TEST(HistogramQuantileTest, BucketBoundaries) {
  // Rank exactly on a bucket's cumulative edge returns its upper bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {2, 2, 0}, 50), 10.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {2, 2, 0}, 100), 20.0);
  // p=0 lands in the first non-empty bucket at its lower edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {0, 3, 0}, 0), 10.0);
}

TEST(HistogramQuantileTest, OverflowBucketClampsToLastBound) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {0, 0, 5}, 50), 20.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {1, 0, 3}, 99), 20.0);
}

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {0, 0, 0}, 50), 0.0);
}

TEST(HistogramQuantileDeathTest, ShapeAndRangeAreChecked) {
  EXPECT_DEATH(HistogramQuantile({}, {1}, 50), "check failed");
  EXPECT_DEATH(HistogramQuantile({10.0}, {1}, 50), "check failed");
  EXPECT_DEATH(HistogramQuantile({10.0}, {1, 1}, -1), "check failed");
  EXPECT_DEATH(HistogramQuantile({10.0}, {1, 1}, 101), "check failed");
  EXPECT_DEATH(HistogramQuantile({20.0, 10.0}, {1, 1, 1}, 50),
               "check failed");
}

TEST(RelativeErrorTest, Symmetric) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
}

TEST(MapeTest, KnownValue) {
  EXPECT_NEAR(Mape({110, 80}, {100, 100}), 0.15, 1e-12);
}

TEST(MapeDeathTest, SizeMismatchIsError) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_DEATH(Mape(a, b), "check failed");
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideYieldsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SCurveTest, SortedAscendingWithPercentEndpoints) {
  auto curve = SCurve({50, 200, 100}, {100, 100, 100});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].ratio, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].ratio, 1.0);
  EXPECT_DOUBLE_EQ(curve[2].ratio, 2.0);
  EXPECT_DOUBLE_EQ(curve.front().percent, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().percent, 100.0);
}

TEST(FractionWithinTest, CountsBelowThreshold) {
  EXPECT_DOUBLE_EQ(
      FractionWithin({105, 90, 200}, {100, 100, 100}, 0.15), 2.0 / 3.0);
}

// Property: MAPE is invariant under common positive scaling.
class MapeScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(MapeScaleTest, ScaleInvariant) {
  const double k = GetParam();
  std::vector<double> pred{110, 85, 130}, meas{100, 100, 120};
  std::vector<double> pred_k, meas_k;
  for (double v : pred) pred_k.push_back(v * k);
  for (double v : meas) meas_k.push_back(v * k);
  EXPECT_NEAR(Mape(pred, meas), Mape(pred_k, meas_k), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, MapeScaleTest,
                         ::testing::Values(0.001, 0.5, 3.0, 1e6));

// Property: percentile is monotone in p.
TEST(PercentileTest, MonotoneInP) {
  Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.NextRange(-5, 5));
  double previous = Percentile(values, 0);
  for (double p = 5; p <= 100; p += 5) {
    double current = Percentile(values, p);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

}  // namespace
}  // namespace gpuperf
