#include "regression/linreg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace gpuperf::regression {
namespace {

TEST(FitLinearTest, ExactLineRecovered) {
  LinearFit fit = FitLinear({1, 2, 3, 4}, {5, 7, 9, 11});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 4u);
}

TEST(FitLinearTest, PredictEvaluatesLine) {
  LinearFit fit;
  fit.slope = 2.0;
  fit.intercept = 1.0;
  EXPECT_DOUBLE_EQ(fit.Predict(10.0), 21.0);
}

TEST(FitLinearTest, EmptyAndSinglePoint) {
  LinearFit empty = FitLinear({}, {});
  EXPECT_DOUBLE_EQ(empty.slope, 0.0);
  LinearFit single = FitLinear({5}, {42});
  EXPECT_DOUBLE_EQ(single.intercept, 42.0);
  EXPECT_DOUBLE_EQ(single.slope, 0.0);
}

TEST(FitLinearTest, ConstantXGivesMeanIntercept) {
  LinearFit fit = FitLinear({3, 3, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(FitLinearTest, ConstantYIsPerfectlyExplained) {
  LinearFit fit = FitLinear({1, 2, 3}, {7, 7, 7});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 7.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(FitLinearTest, R2ReflectsNoise) {
  Rng rng(3);
  std::vector<double> x, y_clean, y_noisy;
  for (int i = 0; i < 500; ++i) {
    double xi = rng.NextRange(0, 100);
    x.push_back(xi);
    y_clean.push_back(3 * xi + 10);
    y_noisy.push_back(3 * xi + 10 + 40 * rng.NextGaussian());
  }
  EXPECT_GT(FitLinear(x, y_clean).r2, 0.9999);
  const double noisy_r2 = FitLinear(x, y_noisy).r2;
  EXPECT_GT(noisy_r2, 0.7);
  EXPECT_LT(noisy_r2, 0.999);
}

TEST(FitLinearTest, NoiseRobustSlopeRecovery) {
  Rng rng(4);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    double xi = rng.NextRange(0, 1000);
    x.push_back(xi);
    y.push_back(0.5 * xi + 20 + 5 * rng.NextGaussian());
  }
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 20, 1.0);
}

TEST(FitLinearDeathTest, SizeMismatchAborts) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_DEATH(FitLinear(x, y), "check failed");
}

// Multivariate: recover planted coefficients for several dimensions.
class FitMultiDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(FitMultiDimsTest, RecoversPlantedBetas) {
  const int dims = GetParam();
  Rng rng(100 + dims);
  std::vector<double> beta(dims + 1);
  for (int d = 0; d <= dims; ++d) beta[d] = rng.NextRange(-3, 3);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200 * dims; ++i) {
    std::vector<double> row(dims);
    double value = beta[0];
    for (int d = 0; d < dims; ++d) {
      row[d] = rng.NextRange(-10, 10);
      value += beta[d + 1] * row[d];
    }
    rows.push_back(std::move(row));
    y.push_back(value);
  }
  MultiFit fit = FitMulti(rows, y);
  ASSERT_EQ(fit.beta.size(), static_cast<std::size_t>(dims + 1));
  for (int d = 0; d <= dims; ++d) {
    EXPECT_NEAR(fit.beta[d], beta[d], 1e-8) << "beta " << d;
  }
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, FitMultiDimsTest, ::testing::Values(1, 2, 3, 5));

TEST(FitMultiTest, MatchesFitLinearInOneDimension) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 4.5, 7, 8, 11};
  LinearFit simple = FitLinear(x, y);
  std::vector<std::vector<double>> rows;
  for (double xi : x) rows.push_back({xi});
  MultiFit multi = FitMulti(rows, y);
  EXPECT_NEAR(multi.beta[0], simple.intercept, 1e-9);
  EXPECT_NEAR(multi.beta[1], simple.slope, 1e-9);
  EXPECT_NEAR(multi.r2, simple.r2, 1e-9);
}

TEST(FitMultiTest, CollinearFeatureDropped) {
  // Second feature identical to the first: system is singular; the fit
  // must not produce NaNs and must still predict well.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    rows.push_back({static_cast<double>(i), static_cast<double>(i)});
    y.push_back(2.0 * i + 1.0);
  }
  MultiFit fit = FitMulti(rows, y);
  for (double b : fit.beta) EXPECT_TRUE(std::isfinite(b));
  EXPECT_NEAR(fit.Predict({10, 10}), 21.0, 1e-6);
}

TEST(MultiFitDeathTest, WrongFeatureCountAborts) {
  MultiFit fit;
  fit.beta = {1.0, 2.0};
  std::vector<double> two_features{1.0, 2.0};
  EXPECT_DEATH(fit.Predict(two_features), "check failed");
}

}  // namespace
}  // namespace gpuperf::regression
