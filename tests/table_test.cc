#include "common/table.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace gpuperf {
namespace {

TEST(TextTableTest, RendersHeaderSeparatorAndRows) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1.5"});
  table.AddRow({"b", "20"});
  const std::string out = table.Render();
  const std::vector<std::string> lines = Split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[0].find("name"), std::string::npos);
  EXPECT_NE(lines[1].find("---"), std::string::npos);
  EXPECT_NE(lines[2].find("alpha"), std::string::npos);
}

TEST(TextTableTest, NumericCellsRightAligned) {
  TextTable table;
  table.SetHeader({"col"});
  table.AddRow({"1234"});
  table.AddRow({"5"});
  const std::vector<std::string> lines = Split(table.Render(), '\n');
  // "5" should be padded from the left to align with "1234".
  EXPECT_EQ(lines[3], "   5");
}

TEST(TextTableTest, TextCellsLeftAligned) {
  TextTable table;
  table.SetHeader({"col", "x"});
  table.AddRow({"long-name", "1"});
  table.AddRow({"s", "2"});
  const std::vector<std::string> lines = Split(table.Render(), '\n');
  EXPECT_EQ(lines[3].rfind("s", 0), 0u);  // starts at column 0
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_FATAL_FAILURE(table.Render());
}

TEST(TextTableTest, NoHeaderNoSeparator) {
  TextTable table;
  table.AddRow({"x", "y"});
  const std::string out = table.Render();
  EXPECT_EQ(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace gpuperf
