#include "common/fault_injection.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

FaultPlanConfig Config(double mtbf_s, double mttr_s, std::uint64_t seed) {
  FaultPlanConfig config;
  config.mtbf_s = mtbf_s;
  config.mttr_s = mttr_s;
  config.seed = seed;
  return config;
}

constexpr double kHorizonUs = 60e6;  // one simulated minute

TEST(FaultPlanTest, DisabledPlanHasNoOutages) {
  FaultPlan plan(4, kHorizonUs, Config(0, 2, 1));
  EXPECT_EQ(plan.resources(), 4u);
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    EXPECT_TRUE(plan.Outages(r).empty());
    EXPECT_DOUBLE_EQ(plan.Availability(r), 1.0);
    EXPECT_FALSE(plan.IsDownAt(r, kHorizonUs / 2));
    EXPECT_EQ(plan.FirstOutageIn(r, 0, kHorizonUs), nullptr);
  }
}

TEST(FaultPlanTest, DisabledPlanIgnoresNonPositiveMttr) {
  // mttr is only meaningful when faults are on; a disabled config with a
  // zero mttr must not abort (the CLI default is --mtbf 0).
  FaultPlan plan(2, kHorizonUs, Config(0, 0, 1));
  EXPECT_TRUE(plan.Outages(0).empty());
}

TEST(FaultPlanTest, SameSeedIsBitIdentical) {
  FaultPlan a(3, kHorizonUs, Config(5, 1, 42));
  FaultPlan b(3, kHorizonUs, Config(5, 1, 42));
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& oa = a.Outages(r);
    const auto& ob = b.Outages(r);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].down_us, ob[i].down_us);
      EXPECT_EQ(oa[i].up_us, ob[i].up_us);
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentPlans) {
  FaultPlan a(1, kHorizonUs, Config(5, 1, 1));
  FaultPlan b(1, kHorizonUs, Config(5, 1, 2));
  ASSERT_FALSE(a.Outages(0).empty());
  ASSERT_FALSE(b.Outages(0).empty());
  EXPECT_NE(a.Outages(0)[0].down_us, b.Outages(0)[0].down_us);
}

TEST(FaultPlanTest, OutagesAreSortedAndDisjoint) {
  FaultPlan plan(4, kHorizonUs, Config(3, 0.5, 7));
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    const auto& outages = plan.Outages(r);
    double previous_up = 0;
    for (const DownInterval& o : outages) {
      EXPECT_GE(o.down_us, previous_up);
      EXPECT_GT(o.up_us, o.down_us);
      EXPECT_LT(o.down_us, kHorizonUs);
      previous_up = o.up_us;
    }
  }
}

TEST(FaultPlanTest, AvailabilityMatchesIntervalSum) {
  FaultPlan plan(2, kHorizonUs, Config(4, 1, 13));
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    double down_total = 0;
    for (const DownInterval& o : plan.Outages(r)) {
      down_total += std::min(o.up_us, kHorizonUs) - o.down_us;
    }
    EXPECT_NEAR(plan.Availability(r), 1.0 - down_total / kHorizonUs, 1e-12);
    EXPECT_GT(plan.Availability(r), 0.0);
    EXPECT_LT(plan.Availability(r), 1.0);
  }
}

TEST(FaultPlanTest, IsDownAtAndFirstOutageInAgree) {
  FaultPlan plan(1, kHorizonUs, Config(5, 1, 3));
  const auto& outages = plan.Outages(0);
  ASSERT_FALSE(outages.empty());
  const DownInterval& first = outages[0];

  EXPECT_FALSE(plan.IsDownAt(0, first.down_us / 2));
  EXPECT_TRUE(plan.IsDownAt(0, first.down_us));
  EXPECT_TRUE(plan.IsDownAt(0, (first.down_us + first.up_us) / 2));
  EXPECT_FALSE(plan.IsDownAt(0, first.up_us));  // half-open [down, up)

  // A window entirely before the first outage sees nothing.
  EXPECT_EQ(plan.FirstOutageIn(0, 0, first.down_us), nullptr);
  // A window straddling the start finds it.
  const DownInterval* found =
      plan.FirstOutageIn(0, first.down_us / 2, first.down_us + 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->down_us, first.down_us);
  // A window inside the outage finds it too (job running when GPU died).
  found = plan.FirstOutageIn(0, (first.down_us + first.up_us) / 2,
                             first.up_us + 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->down_us, first.down_us);
}

TEST(FaultPlanTest, ResourceStreamsAreIndependentOfPoolSize) {
  // Per-resource streams are keyed on (seed, index), so growing the pool
  // never perturbs the timeline of the resources already in it.
  FaultPlan small(1, kHorizonUs, Config(5, 1, 21));
  FaultPlan large(6, kHorizonUs, Config(5, 1, 21));
  const auto& a = small.Outages(0);
  const auto& b = large.Outages(0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].down_us, b[i].down_us);
    EXPECT_EQ(a[i].up_us, b[i].up_us);
  }
  // And distinct resources get distinct timelines.
  ASSERT_FALSE(large.Outages(1).empty());
  EXPECT_NE(large.Outages(0)[0].down_us, large.Outages(1)[0].down_us);
}

TEST(FaultPlanTest, DefaultConstructedPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_EQ(plan.resources(), 0u);
  EXPECT_DOUBLE_EQ(plan.horizon_us(), 0.0);
}

TEST(FaultPlanTest, MttrZeroYieldsInstantRepairBlips) {
  // MTTR 0 is instant repair: outages are zero-length blips that still
  // exist on the timeline (they fail jobs in flight across them) but
  // consume no downtime.
  FaultPlan plan(2, kHorizonUs, Config(5, 0, 9));
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    const auto& outages = plan.Outages(r);
    ASSERT_FALSE(outages.empty());
    double previous = 0;
    for (const DownInterval& o : outages) {
      EXPECT_EQ(o.up_us, o.down_us);  // zero-length
      EXPECT_GE(o.down_us, previous);
      previous = o.up_us;
    }
    EXPECT_DOUBLE_EQ(plan.Availability(r), 1.0);
    // Half-open [down, down): no instant is "down", but a window
    // straddling the blip still reports the outage.
    const DownInterval& first = outages[0];
    EXPECT_FALSE(plan.IsDownAt(r, first.down_us));
    const DownInterval* found =
        plan.FirstOutageIn(r, first.down_us - 1, first.down_us + 1);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->down_us, first.down_us);
  }
}

TEST(FaultPlanTest, SubTickMtbfTerminatesAndStaysSorted) {
  // MTBF far below one microsecond (the sim's time unit): generation
  // must terminate, produce a dense but still sorted/disjoint timeline,
  // and keep availability in [0, 1].
  const double horizon_us = 1'000.0;
  FaultPlan plan(1, horizon_us, Config(1e-7, 1e-7, 5));
  const auto& outages = plan.Outages(0);
  EXPECT_GT(outages.size(), 100u);
  double previous_up = 0;
  for (const DownInterval& o : outages) {
    EXPECT_GE(o.down_us, previous_up);
    EXPECT_GE(o.up_us, o.down_us);
    EXPECT_LT(o.down_us, horizon_us);
    previous_up = o.up_us;
  }
  EXPECT_GE(plan.Availability(0), 0.0);
  EXPECT_LE(plan.Availability(0), 1.0);
}

ChaosPlanConfig GrayOnly(double mtbf_s, double mttr_s, double factor,
                         std::uint64_t seed) {
  ChaosPlanConfig config;
  config.seed = seed;
  config.gray_mtbf_s = mtbf_s;
  config.gray_mttr_s = mttr_s;
  config.gray_factor = factor;
  return config;
}

TEST(ChaosPlanTest, EmptyConfigIsEmptyPlan) {
  ChaosPlan plan(4, kHorizonUs, ChaosPlanConfig{}, nullptr);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.resources(), 4u);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_TRUE(plan.outage_plan().Outages(g).empty());
    EXPECT_TRUE(plan.Slowdowns(g).empty());
    EXPECT_DOUBLE_EQ(plan.SlowdownAt(g, kHorizonUs / 2), 1.0);
  }
}

TEST(ChaosPlanTest, GrayEpisodesSlowWithoutOutaging) {
  ChaosPlan plan(2, kHorizonUs, GrayOnly(5, 2, 3.0, 11), nullptr);
  EXPECT_FALSE(plan.empty());
  for (std::size_t g = 0; g < 2; ++g) {
    EXPECT_TRUE(plan.outage_plan().Outages(g).empty());
    const auto& slow = plan.Slowdowns(g);
    ASSERT_FALSE(slow.empty());
    for (const SlowInterval& s : slow) {
      EXPECT_GT(s.end_us, s.start_us);
      EXPECT_DOUBLE_EQ(s.factor, 3.0);
    }
    const SlowInterval& first = slow[0];
    EXPECT_DOUBLE_EQ(plan.SlowdownAt(g, first.start_us / 2), 1.0);
    EXPECT_DOUBLE_EQ(
        plan.SlowdownAt(g, (first.start_us + first.end_us) / 2), 3.0);
  }
}

TEST(ChaosPlanTest, SameSeedIsBitIdentical) {
  ChaosPlanConfig config = GrayOnly(5, 2, 2.5, 42);
  config.flap_mtbf_s = 10;
  config.host.size = 2;
  config.host.mtbf_s = 20;
  ChaosPlan a(4, kHorizonUs, config, nullptr);
  ChaosPlan b(4, kHorizonUs, config, nullptr);
  for (std::size_t g = 0; g < 4; ++g) {
    const auto& oa = a.outage_plan().Outages(g);
    const auto& ob = b.outage_plan().Outages(g);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].down_us, ob[i].down_us);
      EXPECT_EQ(oa[i].up_us, ob[i].up_us);
    }
    const auto& sa = a.Slowdowns(g);
    const auto& sb = b.Slowdowns(g);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].start_us, sb[i].start_us);
      EXPECT_EQ(sa[i].end_us, sb[i].end_us);
      EXPECT_EQ(sa[i].factor, sb[i].factor);
    }
  }
}

TEST(ChaosPlanTest, FlapBurstsProduceShortSortedBlips) {
  ChaosPlanConfig config;
  config.seed = 7;
  config.flap_mtbf_s = 5;
  config.flap_count = 4;
  config.flap_period_s = 0.2;
  config.flap_down_s = 0.05;
  ChaosPlan plan(1, kHorizonUs, config, nullptr);
  const auto& outages = plan.outage_plan().Outages(0);
  ASSERT_GE(outages.size(), 4u);
  double previous_up = 0;
  for (const DownInterval& o : outages) {
    EXPECT_GE(o.down_us, previous_up);
    EXPECT_NEAR(o.up_us - o.down_us, 0.05e6, 1e-6);
    previous_up = o.up_us;
  }
}

TEST(ChaosPlanTest, HostEventFellsAllMemberGpusTogether) {
  ChaosPlanConfig config;
  config.seed = 5;
  config.host.size = 2;
  config.host.mtbf_s = 10;
  config.host.mttr_s = 1;
  ChaosPlan plan(4, kHorizonUs, config, nullptr);
  // GPUs 0,1 share host 0; GPUs 2,3 share host 1.
  const auto& a = plan.outage_plan().Outages(0);
  const auto& b = plan.outage_plan().Outages(1);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].down_us, b[i].down_us);
    EXPECT_EQ(a[i].up_us, b[i].up_us);
  }
  // The other host's stream is independent, so its timeline differs.
  const auto& c = plan.outage_plan().Outages(2);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a[0].down_us, c[0].down_us);
}

TEST(ChaosPlanTest, RackSlowdownComposesWithGrayEpisodes) {
  ChaosPlanConfig config = GrayOnly(5, 5, 2.0, 3);
  config.host.size = 2;
  config.rack.size = 2;  // one rack of 4 GPUs
  config.rack.mtbf_s = 8;
  config.rack.mttr_s = 5;
  config.rack.factor = 4.0;
  ChaosPlan plan(4, kHorizonUs, config, nullptr);
  bool saw_composed = false;
  for (std::size_t g = 0; g < 4 && !saw_composed; ++g) {
    for (double t = 0; t < kHorizonUs; t += kHorizonUs / 4096) {
      const double factor = plan.SlowdownAt(g, t);
      // Any overlap of a gray episode (2x) and the rack event (4x)
      // multiplies; either alone never exceeds 4.
      if (factor > 4.0) {
        EXPECT_DOUBLE_EQ(factor, 8.0);
        saw_composed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_composed);
}

TEST(ChaosPlanTest, ComposesWithBaseFaultPlan) {
  FaultPlan base(2, kHorizonUs, Config(5, 1, 17));
  ChaosPlanConfig config;
  config.seed = 17;
  config.flap_mtbf_s = 10;
  ChaosPlan plan(2, kHorizonUs, config, &base);
  for (std::size_t g = 0; g < 2; ++g) {
    // Composition can only add downtime, and every base outage is
    // covered by some merged interval.
    EXPECT_LE(plan.outage_plan().Availability(g), base.Availability(g));
    for (const DownInterval& o : base.Outages(g)) {
      const DownInterval* found = plan.outage_plan().FirstOutageIn(
          g, o.down_us, std::max(o.up_us, o.down_us + 1e-9));
      ASSERT_NE(found, nullptr);
      EXPECT_LE(found->down_us, o.down_us);
      EXPECT_GE(found->up_us, o.up_us);
    }
  }
}

TEST(ChaosPlanTest, DomainEventAtTimeZeroWithMttrZeroIsZeroLengthBlip) {
  // Regression: a correlated domain event pinned at t=0 with MTTR=0
  // must enter the timeline as a zero-length blip — not an interval
  // that never repairs (which would hold breakers open forever).
  ChaosPlanConfig config;
  config.seed = 1;
  config.host.size = 2;
  config.host.mtbf_s = 0;  // only the pinned event
  config.host.mttr_s = 0;
  config.host.first_event_at_s = 0;
  ChaosPlan plan(2, kHorizonUs, config, nullptr);
  for (std::size_t g = 0; g < 2; ++g) {
    const auto& outages = plan.outage_plan().Outages(g);
    ASSERT_EQ(outages.size(), 1u);
    EXPECT_DOUBLE_EQ(outages[0].down_us, 0.0);
    EXPECT_DOUBLE_EQ(outages[0].up_us, 0.0);
    // Instant repair: no time is actually "down" and full availability
    // is preserved, exactly like the per-resource MTTR=0 blips above.
    EXPECT_FALSE(plan.outage_plan().IsDownAt(g, 0.0));
    EXPECT_DOUBLE_EQ(plan.outage_plan().Availability(g), 1.0);
  }
}

TEST(FaultPlanTest, ExplicitPlanAllowsOutageAtTimeZero) {
  // A resource that is already down when the simulation starts.
  FaultPlan plan({{{0.0, 1'000.0}}, {}}, kHorizonUs);
  EXPECT_TRUE(plan.IsDownAt(0, 0.0));
  EXPECT_TRUE(plan.IsDownAt(0, 500.0));
  EXPECT_FALSE(plan.IsDownAt(0, 1'000.0));
  EXPECT_FALSE(plan.IsDownAt(1, 0.0));
  const DownInterval* found = plan.FirstOutageIn(0, 0.0, 1.0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->down_us, 0.0);
  EXPECT_LT(plan.Availability(0), 1.0);
  EXPECT_DOUBLE_EQ(plan.Availability(1), 1.0);
}

}  // namespace
}  // namespace gpuperf
