#include "common/fault_injection.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace gpuperf {
namespace {

FaultPlanConfig Config(double mtbf_s, double mttr_s, std::uint64_t seed) {
  FaultPlanConfig config;
  config.mtbf_s = mtbf_s;
  config.mttr_s = mttr_s;
  config.seed = seed;
  return config;
}

constexpr double kHorizonUs = 60e6;  // one simulated minute

TEST(FaultPlanTest, DisabledPlanHasNoOutages) {
  FaultPlan plan(4, kHorizonUs, Config(0, 2, 1));
  EXPECT_EQ(plan.resources(), 4u);
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    EXPECT_TRUE(plan.Outages(r).empty());
    EXPECT_DOUBLE_EQ(plan.Availability(r), 1.0);
    EXPECT_FALSE(plan.IsDownAt(r, kHorizonUs / 2));
    EXPECT_EQ(plan.FirstOutageIn(r, 0, kHorizonUs), nullptr);
  }
}

TEST(FaultPlanTest, DisabledPlanIgnoresNonPositiveMttr) {
  // mttr is only meaningful when faults are on; a disabled config with a
  // zero mttr must not abort (the CLI default is --mtbf 0).
  FaultPlan plan(2, kHorizonUs, Config(0, 0, 1));
  EXPECT_TRUE(plan.Outages(0).empty());
}

TEST(FaultPlanTest, SameSeedIsBitIdentical) {
  FaultPlan a(3, kHorizonUs, Config(5, 1, 42));
  FaultPlan b(3, kHorizonUs, Config(5, 1, 42));
  for (std::size_t r = 0; r < 3; ++r) {
    const auto& oa = a.Outages(r);
    const auto& ob = b.Outages(r);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].down_us, ob[i].down_us);
      EXPECT_EQ(oa[i].up_us, ob[i].up_us);
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentPlans) {
  FaultPlan a(1, kHorizonUs, Config(5, 1, 1));
  FaultPlan b(1, kHorizonUs, Config(5, 1, 2));
  ASSERT_FALSE(a.Outages(0).empty());
  ASSERT_FALSE(b.Outages(0).empty());
  EXPECT_NE(a.Outages(0)[0].down_us, b.Outages(0)[0].down_us);
}

TEST(FaultPlanTest, OutagesAreSortedAndDisjoint) {
  FaultPlan plan(4, kHorizonUs, Config(3, 0.5, 7));
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    const auto& outages = plan.Outages(r);
    double previous_up = 0;
    for (const DownInterval& o : outages) {
      EXPECT_GE(o.down_us, previous_up);
      EXPECT_GT(o.up_us, o.down_us);
      EXPECT_LT(o.down_us, kHorizonUs);
      previous_up = o.up_us;
    }
  }
}

TEST(FaultPlanTest, AvailabilityMatchesIntervalSum) {
  FaultPlan plan(2, kHorizonUs, Config(4, 1, 13));
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    double down_total = 0;
    for (const DownInterval& o : plan.Outages(r)) {
      down_total += std::min(o.up_us, kHorizonUs) - o.down_us;
    }
    EXPECT_NEAR(plan.Availability(r), 1.0 - down_total / kHorizonUs, 1e-12);
    EXPECT_GT(plan.Availability(r), 0.0);
    EXPECT_LT(plan.Availability(r), 1.0);
  }
}

TEST(FaultPlanTest, IsDownAtAndFirstOutageInAgree) {
  FaultPlan plan(1, kHorizonUs, Config(5, 1, 3));
  const auto& outages = plan.Outages(0);
  ASSERT_FALSE(outages.empty());
  const DownInterval& first = outages[0];

  EXPECT_FALSE(plan.IsDownAt(0, first.down_us / 2));
  EXPECT_TRUE(plan.IsDownAt(0, first.down_us));
  EXPECT_TRUE(plan.IsDownAt(0, (first.down_us + first.up_us) / 2));
  EXPECT_FALSE(plan.IsDownAt(0, first.up_us));  // half-open [down, up)

  // A window entirely before the first outage sees nothing.
  EXPECT_EQ(plan.FirstOutageIn(0, 0, first.down_us), nullptr);
  // A window straddling the start finds it.
  const DownInterval* found =
      plan.FirstOutageIn(0, first.down_us / 2, first.down_us + 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->down_us, first.down_us);
  // A window inside the outage finds it too (job running when GPU died).
  found = plan.FirstOutageIn(0, (first.down_us + first.up_us) / 2,
                             first.up_us + 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->down_us, first.down_us);
}

TEST(FaultPlanTest, ResourceStreamsAreIndependentOfPoolSize) {
  // Per-resource streams are keyed on (seed, index), so growing the pool
  // never perturbs the timeline of the resources already in it.
  FaultPlan small(1, kHorizonUs, Config(5, 1, 21));
  FaultPlan large(6, kHorizonUs, Config(5, 1, 21));
  const auto& a = small.Outages(0);
  const auto& b = large.Outages(0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].down_us, b[i].down_us);
    EXPECT_EQ(a[i].up_us, b[i].up_us);
  }
  // And distinct resources get distinct timelines.
  ASSERT_FALSE(large.Outages(1).empty());
  EXPECT_NE(large.Outages(0)[0].down_us, large.Outages(1)[0].down_us);
}

TEST(FaultPlanTest, DefaultConstructedPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_EQ(plan.resources(), 0u);
  EXPECT_DOUBLE_EQ(plan.horizon_us(), 0.0);
}

TEST(FaultPlanTest, MttrZeroYieldsInstantRepairBlips) {
  // MTTR 0 is instant repair: outages are zero-length blips that still
  // exist on the timeline (they fail jobs in flight across them) but
  // consume no downtime.
  FaultPlan plan(2, kHorizonUs, Config(5, 0, 9));
  for (std::size_t r = 0; r < plan.resources(); ++r) {
    const auto& outages = plan.Outages(r);
    ASSERT_FALSE(outages.empty());
    double previous = 0;
    for (const DownInterval& o : outages) {
      EXPECT_EQ(o.up_us, o.down_us);  // zero-length
      EXPECT_GE(o.down_us, previous);
      previous = o.up_us;
    }
    EXPECT_DOUBLE_EQ(plan.Availability(r), 1.0);
    // Half-open [down, down): no instant is "down", but a window
    // straddling the blip still reports the outage.
    const DownInterval& first = outages[0];
    EXPECT_FALSE(plan.IsDownAt(r, first.down_us));
    const DownInterval* found =
        plan.FirstOutageIn(r, first.down_us - 1, first.down_us + 1);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->down_us, first.down_us);
  }
}

TEST(FaultPlanTest, SubTickMtbfTerminatesAndStaysSorted) {
  // MTBF far below one microsecond (the sim's time unit): generation
  // must terminate, produce a dense but still sorted/disjoint timeline,
  // and keep availability in [0, 1].
  const double horizon_us = 1'000.0;
  FaultPlan plan(1, horizon_us, Config(1e-7, 1e-7, 5));
  const auto& outages = plan.Outages(0);
  EXPECT_GT(outages.size(), 100u);
  double previous_up = 0;
  for (const DownInterval& o : outages) {
    EXPECT_GE(o.down_us, previous_up);
    EXPECT_GE(o.up_us, o.down_us);
    EXPECT_LT(o.down_us, horizon_us);
    previous_up = o.up_us;
  }
  EXPECT_GE(plan.Availability(0), 0.0);
  EXPECT_LE(plan.Availability(0), 1.0);
}

TEST(FaultPlanTest, ExplicitPlanAllowsOutageAtTimeZero) {
  // A resource that is already down when the simulation starts.
  FaultPlan plan({{{0.0, 1'000.0}}, {}}, kHorizonUs);
  EXPECT_TRUE(plan.IsDownAt(0, 0.0));
  EXPECT_TRUE(plan.IsDownAt(0, 500.0));
  EXPECT_FALSE(plan.IsDownAt(0, 1'000.0));
  EXPECT_FALSE(plan.IsDownAt(1, 0.0));
  const DownInterval* found = plan.FirstOutageIn(0, 0.0, 1.0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->down_us, 0.0);
  EXPECT_LT(plan.Availability(0), 1.0);
  EXPECT_DOUBLE_EQ(plan.Availability(1), 1.0);
}

}  // namespace
}  // namespace gpuperf
