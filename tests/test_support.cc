#include "test_support.h"

#include "common/logging.h"
#include "dataset/builder.h"
#include "zoo/zoo.h"

namespace gpuperf::testing {

const SmallCampaign& SmallCampaign::Get() {
  static const SmallCampaign* const kCampaign = new SmallCampaign();
  return *kCampaign;
}

SmallCampaign::SmallCampaign() : oracle_(gpuexec::OracleConfig()) {
  networks_ = zoo::SmallZoo(/*stride=*/16);
  dataset::BuildOptions options;
  options.gpu_names = {"A100", "A40", "GTX 1080 Ti", "TITAN RTX"};
  data_ = dataset::BuildDataset(networks_, options);
  split_ = dataset::SplitByNetwork(data_, 0.15, /*seed=*/99);
}

const dnn::Network& SmallCampaign::NetworkById(int network_id) const {
  const std::string& name = data_.networks().Get(network_id);
  for (const dnn::Network& network : networks_) {
    if (network.name() == name) return network;
  }
  Fatal("network id not in campaign: " + name);
}

std::vector<const dnn::Network*> SmallCampaign::TestNetworks() const {
  std::vector<const dnn::Network*> test;
  for (int id : split_.test_ids) test.push_back(&NetworkById(id));
  return test;
}

}  // namespace gpuperf::testing
