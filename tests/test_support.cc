#include "test_support.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "dataset/builder.h"
#include "models/kw_model.h"
#include "models/model_io.h"
#include "zoo/zoo.h"

namespace gpuperf::testing {

const SmallCampaign& SmallCampaign::Get() {
  static const SmallCampaign* const kCampaign = new SmallCampaign();
  return *kCampaign;
}

SmallCampaign::SmallCampaign() : oracle_(gpuexec::OracleConfig()) {
  networks_ = zoo::SmallZoo(/*stride=*/16);
  dataset::BuildOptions options;
  options.gpu_names = {"A100", "A40", "GTX 1080 Ti", "TITAN RTX"};
  data_ = dataset::BuildDataset(networks_, options);
  split_ = dataset::SplitByNetwork(data_, 0.15, /*seed=*/99);
}

const dnn::Network& SmallCampaign::NetworkById(int network_id) const {
  const std::string& name = data_.networks().Get(network_id);
  for (const dnn::Network& network : networks_) {
    if (network.name() == name) return network;
  }
  // Test harness: dying loudly on a broken fixture beats threading a
  // Status through every test. gpuperf-lint: allow(fatal-in-lib)
  Fatal("network id not in campaign: " + name);
}

std::vector<const dnn::Network*> SmallCampaign::TestNetworks() const {
  std::vector<const dnn::Network*> test;
  for (int id : split_.test_ids) test.push_back(&NetworkById(id));
  return test;
}

namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

const std::string& GoldenKwBundleDir() {
  static const std::string* const kDir = [] {
    // Per-process path: test binaries run concurrently under ctest, and
    // two processes sharing one golden dir would race remove_all/reads.
    auto* dir = new std::string(
        (std::filesystem::temp_directory_path() /
         Format("gpuperf_golden_bundle_%d", static_cast<int>(getpid())))
            .string());
    std::filesystem::remove_all(*dir);
    std::filesystem::create_directories(*dir);
    models::KwModel model;
    model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
    const Status saved = models::ModelIo::SaveKw(model, *dir);
    GP_CHECK(saved.ok()) << saved.ToString();
    return dir;
  }();
  return *kDir;
}

std::string ScratchKwBundleDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       Format("gpuperf_scratch_%s_%d", tag.c_str(),
              static_cast<int>(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const auto& entry :
       std::filesystem::directory_iterator(GoldenKwBundleDir())) {
    std::filesystem::copy(
        entry.path(), dir + "/" + entry.path().filename().string());
  }
  return dir;
}

void RemanifestKwBundle(const std::string& dir) {
  std::ofstream out(dir + "/manifest.csv", std::ios::trunc);
  out << "bundle_version,file,checksum,rows\n";
  for (const char* file :
       {"kernel_models.csv", "mapping_table.csv", "calibration.csv",
        "layer_fallback.csv"}) {
    const std::string content = ReadAll(dir + "/" + file);
    std::size_t rows = 0;
    for (char c : content) rows += c == '\n';
    out << Format("%d,%s,%016llx,%zu\n", models::kKwBundleVersion, file,
                  static_cast<unsigned long long>(StableHash(content)),
                  rows - 1);
  }
}

}  // namespace gpuperf::testing
