// Structural invariants of each zoo family: layer composition, shape
// plumbing, and kind statistics that characterize the architecture.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dnn/flops.h"
#include "zoo/resnet.h"
#include "zoo/transformer.h"
#include "zoo/zoo.h"

namespace gpuperf::zoo {
namespace {

std::map<dnn::LayerKind, int> KindCounts(const dnn::Network& net) {
  std::map<dnn::LayerKind, int> counts;
  for (const dnn::Layer& layer : net.layers()) ++counts[layer.kind];
  return counts;
}

class FamilyStructureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FamilyStructureTest, ShapesChainThroughTheNetwork) {
  dnn::Network net = BuildByName(GetParam());
  // Every layer's first input must equal some earlier output (or the
  // network input): a weak but effective dataflow sanity check.
  std::set<std::string> live{net.input().ToString()};
  for (const dnn::Layer& layer : net.layers()) {
    for (const dnn::TensorShape& input : layer.inputs) {
      EXPECT_TRUE(live.count(input.ToString()))
          << layer.name << " consumes unseen shape " << input.ToString();
    }
    live.insert(layer.output.ToString());
  }
}

TEST_P(FamilyStructureTest, EndsWithClassifierShape) {
  dnn::Network net = BuildByName(GetParam());
  const dnn::TensorShape& out = net.layers().back().output;
  // All presets classify into 1000 (ImageNet) or 2 (text) classes.
  EXPECT_TRUE(out.c == 1000 || out.c == 2) << out.ToString();
}

INSTANTIATE_TEST_SUITE_P(Presets, FamilyStructureTest,
                         ::testing::Values("resnet18", "resnet50",
                                           "resnet152", "vgg16_bn",
                                           "densenet121", "densenet201",
                                           "mobilenet_v2", "shufflenet_v1",
                                           "alexnet", "googlenet",
                                           "squeezenet1_0", "bert_base"));

TEST(FamilyStatsTest, DenseNetIsConcatHeavy) {
  auto counts = KindCounts(BuildByName("densenet121"));
  // 58 dense layers concatenate (6+12+24+16).
  EXPECT_EQ(counts[dnn::LayerKind::kConcat], 58);
  EXPECT_EQ(counts[dnn::LayerKind::kAdd], 0);
}

TEST(FamilyStatsTest, ResNetIsAddHeavy) {
  auto counts = KindCounts(BuildByName("resnet50"));
  EXPECT_EQ(counts[dnn::LayerKind::kAdd], 16);  // one per bottleneck block
  EXPECT_EQ(counts[dnn::LayerKind::kConcat], 0);
}

TEST(FamilyStatsTest, MobileNetHasDepthwiseConvEveryBlock) {
  dnn::Network net = BuildByName("mobilenet_v2");
  int depthwise = 0;
  for (const dnn::Layer& layer : net.layers()) {
    if (layer.kind == dnn::LayerKind::kConv2d &&
        layer.conv().IsDepthwise()) {
      ++depthwise;
    }
  }
  EXPECT_EQ(depthwise, 17);  // one per inverted residual block
}

TEST(FamilyStatsTest, ShuffleNetShufflesChannels) {
  auto counts = KindCounts(BuildByName("shufflenet_v1"));
  EXPECT_EQ(counts[dnn::LayerKind::kChannelShuffle], 16);  // one per unit
}

TEST(FamilyStatsTest, GoogLeNetConcatsPerInceptionModule) {
  auto counts = KindCounts(BuildByName("googlenet"));
  EXPECT_EQ(counts[dnn::LayerKind::kConcat], 9);  // nine inception modules
}

TEST(FamilyStatsTest, BertHasTwoMatMulsPerLayer) {
  auto counts = KindCounts(BuildByName("bert_base"));
  EXPECT_EQ(counts[dnn::LayerKind::kMatMul], 24);      // 12 layers x 2
  EXPECT_EQ(counts[dnn::LayerKind::kLayerNorm], 25);   // 2 per layer + emb
  EXPECT_EQ(counts[dnn::LayerKind::kGelu], 12);
  EXPECT_EQ(counts[dnn::LayerKind::kEmbedding], 1);
}

TEST(FamilyStatsTest, VggBnAlternatesConvBnRelu) {
  dnn::Network net = BuildByName("vgg16_bn");
  const auto& layers = net.layers();
  for (std::size_t i = 0; i + 2 < layers.size(); ++i) {
    if (layers[i].kind == dnn::LayerKind::kConv2d) {
      EXPECT_EQ(layers[i + 1].kind, dnn::LayerKind::kBatchNorm);
      EXPECT_EQ(layers[i + 2].kind, dnn::LayerKind::kRelu);
    }
  }
}

TEST(FamilyStatsTest, FlopsOrderingAcrossFamilies) {
  // Published MAC ordering at 224x224: mobilenet < resnet18 < resnet50
  // < vgg16.
  const std::int64_t mobilenet =
      dnn::NetworkFlops(BuildByName("mobilenet_v2"), 1);
  const std::int64_t resnet18 =
      dnn::NetworkFlops(BuildByName("resnet18"), 1);
  const std::int64_t resnet50 =
      dnn::NetworkFlops(BuildByName("resnet50"), 1);
  const std::int64_t vgg16 = dnn::NetworkFlops(BuildByName("vgg16"), 1);
  EXPECT_LT(mobilenet, resnet18);
  EXPECT_LT(resnet18, resnet50);
  EXPECT_LT(resnet50, vgg16);
}

TEST(FamilyStatsTest, ResolutionVariantsScaleSpatially) {
  // A 256-res ResNet does (256/224)^2 the conv work of the 224 one.
  dnn::Network base = zoo::BuildResNetWithBlocks(16, 64, 224);
  dnn::Network large = zoo::BuildResNetWithBlocks(16, 64, 256);
  const double ratio =
      static_cast<double>(dnn::NetworkFlops(large, 1)) /
      static_cast<double>(dnn::NetworkFlops(base, 1));
  EXPECT_NEAR(ratio, (256.0 * 256.0) / (224.0 * 224.0), 0.1);
}

TEST(FamilyStatsTest, ResNextMatchesTorchvisionParamCount) {
  // torchvision resnext50_32x4d: 25.0M params; wide_resnet50_2: 68.9M.
  EXPECT_NEAR(static_cast<double>(
                  BuildByName("resnext50_32x4d").ParameterCount()) / 1e6,
              25.0, 0.8);
  EXPECT_NEAR(static_cast<double>(
                  BuildByName("wide_resnet50_2").ParameterCount()) / 1e6,
              68.9, 1.5);
}

TEST(FamilyStatsTest, ResNextUsesGroupedMiddleConvs) {
  dnn::Network net = BuildByName("resnext50_32x4d");
  int grouped = 0;
  for (const dnn::Layer& layer : net.layers()) {
    if (layer.kind == dnn::LayerKind::kConv2d &&
        layer.conv().groups == 32) {
      ++grouped;
    }
  }
  EXPECT_EQ(grouped, 16);  // one grouped 3x3 per bottleneck block
}

TEST(FamilyStatsTest, WideResNetHasWiderMiddleThanPlain) {
  // Wide ResNet doubles the bottleneck 3x3 width but keeps the expansion.
  const std::int64_t wide =
      dnn::NetworkFlops(BuildByName("wide_resnet50_2"), 1);
  const std::int64_t plain = dnn::NetworkFlops(BuildByName("resnet50"), 1);
  EXPECT_GT(wide, 2 * plain);
  EXPECT_LT(wide, 4 * plain);
}

TEST(FamilyStatsTest, Gpt2ParameterCounts) {
  // GPT-2 small: 124M body + ~39M (untied) vocabulary head.
  const double millions =
      static_cast<double>(BuildByName("gpt2").ParameterCount()) / 1e6;
  EXPECT_NEAR(millions, 163.0, 8.0);
  EXPECT_GT(BuildByName("gpt2_medium").ParameterCount(),
            2 * BuildByName("gpt2").ParameterCount());
}

TEST(FamilyStatsTest, Gpt2AttentionIsQuadraticInContext) {
  dnn::Network short_ctx = BuildGpt2("gpt2", 256);
  dnn::Network long_ctx = BuildGpt2("gpt2", 1024);
  std::int64_t short_matmul = 0, long_matmul = 0;
  for (const dnn::Layer& layer : short_ctx.layers()) {
    if (layer.kind == dnn::LayerKind::kMatMul) {
      short_matmul += dnn::LayerFlops(layer, 1);
    }
  }
  for (const dnn::Layer& layer : long_ctx.layers()) {
    if (layer.kind == dnn::LayerKind::kMatMul) {
      long_matmul += dnn::LayerFlops(layer, 1);
    }
  }
  // 4x the context -> 16x the attention matmul work.
  EXPECT_NEAR(static_cast<double>(long_matmul) /
                  static_cast<double>(short_matmul),
              16.0, 0.5);
}

}  // namespace
}  // namespace gpuperf::zoo
