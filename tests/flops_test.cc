#include "dnn/flops.h"

#include <gtest/gtest.h>

#include "dnn/builder.h"
#include "zoo/zoo.h"

namespace gpuperf::dnn {
namespace {

Layer MakeConvLayer() {
  NetworkBuilder b("t", "Test", Chw(3, 224, 224));
  b.Conv(64, 7, 2, 3);
  return b.Build().layers()[0];
}

TEST(LayerFlopsTest, ConvFollowsThopFormula) {
  // Cout * H' * W' * (Cin/groups) * Kh * Kw per image (multiplications).
  Layer conv = MakeConvLayer();
  EXPECT_EQ(LayerFlops(conv, 1),
            64LL * 112 * 112 * 3 * 7 * 7);
}

TEST(LayerFlopsTest, GroupedConvDividesReduction) {
  NetworkBuilder b("t", "Test", Chw(32, 16, 16));
  b.Conv(64, 3, 1, 1, /*groups=*/4);
  Layer conv = b.Build().layers()[0];
  EXPECT_EQ(LayerFlops(conv, 1), 64LL * 16 * 16 * (32 / 4) * 3 * 3);
}

TEST(LayerFlopsTest, LinearIsInTimesOut) {
  NetworkBuilder b("t", "Test", Chw(2048, 1, 1));
  b.Linear(1000);
  EXPECT_EQ(LayerFlops(b.Build().layers()[0], 1), 2048LL * 1000);
}

TEST(LayerFlopsTest, LinearPerTokenMultiplies) {
  NetworkBuilder b("t", "Test", Chw(768, 128, 1));
  b.Linear(3072);
  EXPECT_EQ(LayerFlops(b.Build().layers()[0], 1), 128LL * 768 * 3072);
}

TEST(LayerFlopsTest, ZeroFlopKinds) {
  NetworkBuilder b("t", "Test", Chw(16, 8, 8));
  int a = b.Mark();
  b.Conv(16, 1, 1, 0);
  int c = b.Mark();
  b.Concat({a, c});
  b.Flatten();
  b.Dropout();
  Network net = b.Build();
  for (const Layer& layer : net.layers()) {
    if (layer.kind == LayerKind::kConcat ||
        layer.kind == LayerKind::kFlatten ||
        layer.kind == LayerKind::kDropout) {
      EXPECT_EQ(LayerFlops(layer, 4), 0) << layer.name;
    }
  }
}

// O3 property: FLOPs are exactly linear in batch size for every layer of
// a real network.
class BatchLinearityTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BatchLinearityTest, FlopsScaleWithBatch) {
  const std::int64_t batch = GetParam();
  Network net = zoo::BuildByName("resnet18");
  for (const Layer& layer : net.layers()) {
    EXPECT_EQ(LayerFlops(layer, batch), batch * LayerFlops(layer, 1))
        << layer.name;
  }
  EXPECT_EQ(NetworkFlops(net, batch), batch * NetworkFlops(net, 1));
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchLinearityTest,
                         ::testing::Values(2, 7, 64, 512));

TEST(NetworkFlopsTest, ResNet50MatchesPublishedMacs) {
  // torchvision/thop reports ~4.1 GMACs for ResNet-50 at 224x224.
  Network net = zoo::BuildByName("resnet50");
  const double gmacs = static_cast<double>(NetworkFlops(net, 1)) / 1e9;
  EXPECT_GT(gmacs, 3.7);
  EXPECT_LT(gmacs, 4.5);
}

TEST(NetworkFlopsTest, Vgg16MatchesPublishedMacs) {
  // thop reports ~15.5 GMACs for VGG-16.
  Network net = zoo::BuildByName("vgg16");
  const double gmacs = static_cast<double>(NetworkFlops(net, 1)) / 1e9;
  EXPECT_GT(gmacs, 14.5);
  EXPECT_LT(gmacs, 16.5);
}

TEST(ParameterCountTest, MatchesPublishedCounts) {
  // torchvision: resnet50 25.6M, vgg16 138.4M, mobilenet_v2 3.5M,
  // densenet121 8.0M, alexnet 61.1M (within a small tolerance; our
  // builders omit a few negligible buffers).
  struct Expectation {
    const char* name;
    double millions;
    double tolerance;
  };
  const Expectation kExpectations[] = {
      {"resnet50", 25.6, 0.5},   {"vgg16", 138.4, 1.0},
      {"mobilenet_v2", 3.5, 0.2}, {"densenet121", 8.0, 0.3},
      {"alexnet", 61.1, 0.5},    {"resnet18", 11.7, 0.3},
  };
  for (const Expectation& expectation : kExpectations) {
    Network net = zoo::BuildByName(expectation.name);
    const double millions =
        static_cast<double>(net.ParameterCount()) / 1e6;
    EXPECT_NEAR(millions, expectation.millions, expectation.tolerance)
        << expectation.name;
  }
}

TEST(BytesTest, InputOutputWeightAccounting) {
  Layer conv = MakeConvLayer();
  EXPECT_EQ(LayerInputBytes(conv, 2), 2LL * 3 * 224 * 224 * 4);
  EXPECT_EQ(LayerOutputBytes(conv, 2), 2LL * 64 * 112 * 112 * 4);
  EXPECT_EQ(LayerWeightBytes(conv), 64LL * 3 * 7 * 7 * 4);
}

TEST(WeightBytesTest, NetworkWeightBytesIsFourBytesPerParam) {
  Network net = zoo::BuildByName("resnet18");
  EXPECT_EQ(NetworkWeightBytes(net), net.ParameterCount() * 4);
}

TEST(NetworkTest, SummaryMentionsLayersAndName) {
  Network net = zoo::BuildByName("alexnet");
  const std::string summary = net.Summary();
  EXPECT_NE(summary.find("alexnet"), std::string::npos);
  EXPECT_NE(summary.find("CONV_0"), std::string::npos);
}

}  // namespace
}  // namespace gpuperf::dnn
