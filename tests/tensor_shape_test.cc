#include "dnn/tensor_shape.h"

#include <gtest/gtest.h>

namespace gpuperf::dnn {
namespace {

TEST(TensorShapeTest, ElementCounts) {
  TensorShape shape = Chw(3, 224, 224);
  EXPECT_EQ(shape.Elements(), 3 * 224 * 224);
  EXPECT_EQ(shape.ElementsForBatch(8), 8 * 3 * 224 * 224);
}

TEST(TensorShapeTest, ToStringFormat) {
  EXPECT_EQ(Chw(64, 56, 56).ToString(), "64x56x56");
}

TEST(TensorShapeTest, Equality) {
  EXPECT_EQ(Chw(1, 2, 3), Chw(1, 2, 3));
  EXPECT_NE(Chw(1, 2, 3), Chw(1, 2, 4));
}

TEST(ConvOutDimTest, KnownConfigurations) {
  EXPECT_EQ(ConvOutDim(224, 7, 2, 3), 112);  // ResNet stem
  EXPECT_EQ(ConvOutDim(112, 3, 2, 1), 56);   // ResNet maxpool
  EXPECT_EQ(ConvOutDim(56, 3, 1, 1), 56);    // same-padding 3x3
  EXPECT_EQ(ConvOutDim(56, 1, 1, 0), 56);    // 1x1
  EXPECT_EQ(ConvOutDim(224, 11, 4, 2), 55);  // AlexNet conv1
}

struct ConvDimCase {
  std::int64_t in, kernel, stride, pad;
};

class ConvOutDimPropertyTest : public ::testing::TestWithParam<ConvDimCase> {
};

// Property: output positions tile the padded input without overrun.
TEST_P(ConvOutDimPropertyTest, WindowsStayInsidePaddedInput) {
  const ConvDimCase c = GetParam();
  const std::int64_t out = ConvOutDim(c.in, c.kernel, c.stride, c.pad);
  EXPECT_GT(out, 0);
  const std::int64_t last_start = (out - 1) * c.stride;
  EXPECT_LE(last_start + c.kernel, c.in + 2 * c.pad);
  // One more output would overrun.
  EXPECT_GT(out * c.stride + c.kernel, c.in + 2 * c.pad);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvOutDimPropertyTest,
    ::testing::Values(ConvDimCase{224, 3, 1, 1}, ConvDimCase{224, 3, 2, 1},
                      ConvDimCase{224, 5, 1, 2}, ConvDimCase{224, 7, 2, 3},
                      ConvDimCase{32, 3, 2, 1}, ConvDimCase{7, 7, 1, 0},
                      ConvDimCase{96, 11, 4, 2}, ConvDimCase{17, 2, 2, 0}));

TEST(ConvOutDimDeathTest, OversizedWindowIsError) {
  EXPECT_DEATH(ConvOutDim(4, 7, 1, 0), "window larger");
}

TEST(ConvOutDimDeathTest, ZeroStrideIsError) {
  EXPECT_DEATH(ConvOutDim(8, 3, 0, 1), "check failed");
}

}  // namespace
}  // namespace gpuperf::dnn
