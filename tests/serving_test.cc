#include "simsys/serving.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "gpuexec/oracle.h"

namespace gpuperf::simsys {
namespace {

// Two job types on two GPUs; gpu 0 is fast for job 0, gpu 1 for job 1.
std::vector<std::vector<double>> AffinityTimes() {
  return {{1'000.0, 8'000.0}, {8'000.0, 1'000.0}};
}

ServingConfig Config(DispatchPolicy policy, double rate = 100,
                     double duration = 20) {
  ServingConfig config;
  config.policy = policy;
  config.arrival_rate_per_s = rate;
  config.duration_s = duration;
  config.seed = 7;
  return config;
}

ServingConfig FaultyConfig(DispatchPolicy policy, double mtbf_s,
                           double mttr_s = 1, double rate = 100,
                           double duration = 20) {
  ServingConfig config = Config(policy, rate, duration);
  config.faults.mtbf_s = mtbf_s;
  config.faults.mttr_s = mttr_s;
  config.faults.seed = 11;
  return config;
}

TEST(ServingTest, CompletesAllArrivalsEventually) {
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kRoundRobin, 50, 10))
          .value();
  // ~50/s for 10s with some Poisson variance.
  EXPECT_GT(result.completed, 350);
  EXPECT_LT(result.completed, 650);
  EXPECT_EQ(result.dropped, 0);
  EXPECT_EQ(result.retries, 0);
}

TEST(ServingTest, LatencyPercentilesAreOrdered) {
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kLeastOutstanding))
          .value();
  EXPECT_LE(result.p50_ms, result.p95_ms);
  EXPECT_LE(result.p95_ms, result.p99_ms);
  EXPECT_GT(result.p50_ms, 0.0);
}

TEST(ServingTest, PredictionAwareDispatchExploitsAffinity) {
  // With strong per-job GPU affinity, the model-driven policy must
  // clearly beat round-robin on tail latency.
  ServingResult blind =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kRoundRobin, 300))
          .value();
  ServingResult aware =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 300))
          .value();
  EXPECT_LT(aware.p99_ms, blind.p99_ms);
  EXPECT_LT(aware.mean_ms, blind.mean_ms);
}

TEST(ServingTest, ImperfectPredictionsStillWork) {
  // Predictions off by a constant factor preserve the ordering, so the
  // policy should not collapse.
  auto predicted = AffinityTimes();
  for (auto& row : predicted) {
    for (double& v : row) v *= 1.3;
  }
  ServingResult result =
      SimulateServing(AffinityTimes(), predicted, {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 300))
          .value();
  ServingResult blind =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kRoundRobin, 300))
          .value();
  EXPECT_LT(result.p99_ms, blind.p99_ms);
}

TEST(ServingTest, UtilizationIsSane) {
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 100))
          .value();
  ASSERT_EQ(result.gpu_utilization.size(), 2u);
  for (double u : result.gpu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  ASSERT_EQ(result.gpu_availability.size(), 2u);
  for (double a : result.gpu_availability) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(ServingTest, DeterministicPerSeed) {
  ServingResult a = SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                                    Config(DispatchPolicy::kRoundRobin))
                        .value();
  ServingResult b = SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                                    Config(DispatchPolicy::kRoundRobin))
                        .value();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
}

TEST(ServingTest, JobMixWeightsAreRespected) {
  // Job 1 never arrives; only gpu-0-friendly jobs exist, so with the
  // aware policy gpu 0 should absorb nearly all the work.
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 0},
                      Config(DispatchPolicy::kPredictedLeastLoad, 50))
          .value();
  EXPECT_GT(result.gpu_utilization[0], result.gpu_utilization[1]);
}

TEST(ServingTest, PolicyNamesAreStable) {
  EXPECT_EQ(DispatchPolicyName(DispatchPolicy::kRoundRobin), "round-robin");
  EXPECT_EQ(DispatchPolicyName(DispatchPolicy::kPredictedLeastLoad),
            "predicted-least-load");
}

// --- Recoverable input validation (previously aborts).

TEST(ServingTest, BadInputsAreInvalidArgument) {
  EXPECT_EQ(SimulateServing({}, {}, {}, Config(DispatchPolicy::kRoundRobin))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SimulateServing(AffinityTimes(), AffinityTimes(), {0, 0},
                            Config(DispatchPolicy::kRoundRobin))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Ragged truth matrix.
  EXPECT_FALSE(SimulateServing({{1.0, 2.0}, {3.0}}, {}, {1, 1},
                               Config(DispatchPolicy::kRoundRobin))
                   .ok());
  // Non-finite service time.
  EXPECT_FALSE(
      SimulateServing({{1.0, std::nan("")}}, {}, {1},
                      Config(DispatchPolicy::kRoundRobin))
          .ok());
  // Shape-mismatched predictions.
  EXPECT_FALSE(SimulateServing(AffinityTimes(), {{1.0}}, {1, 1},
                               Config(DispatchPolicy::kRoundRobin))
                   .ok());
  // Bad rate / retry / fault knobs.
  ServingConfig bad_rate = Config(DispatchPolicy::kRoundRobin);
  bad_rate.arrival_rate_per_s = 0;
  EXPECT_FALSE(
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, bad_rate)
          .ok());
  ServingConfig bad_retry = Config(DispatchPolicy::kRoundRobin);
  bad_retry.retry.max_retries = -1;
  EXPECT_FALSE(
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, bad_retry)
          .ok());
  // mttr_s == 0 is legal (instant-repair blips); negative is not.
  ServingConfig bad_mttr = FaultyConfig(DispatchPolicy::kRoundRobin, 5, -1);
  EXPECT_FALSE(
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, bad_mttr)
          .ok());
}

TEST(ServingTest, ErrorMessagesNameTheField) {
  Status status = SimulateServing(AffinityTimes(), {{1.0}}, {1, 1},
                                  Config(DispatchPolicy::kRoundRobin))
                      .status();
  EXPECT_NE(status.message().find("predicted_service_us"), std::string::npos)
      << status.message();
}

// --- Graceful degradation without a model.

TEST(ServingTest, EmptyPredictionsDegradeToLeastOutstanding) {
  ServingResult degraded =
      SimulateServing(AffinityTimes(), {}, {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 300))
          .value();
  ServingResult least =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kLeastOutstanding, 300))
          .value();
  // Every decision degraded, and the degraded runs match the
  // least-outstanding policy exactly (same seed, same decisions).
  EXPECT_EQ(degraded.degraded_dispatches, degraded.dispatches);
  EXPECT_DOUBLE_EQ(degraded.degraded_dispatch_fraction, 1.0);
  EXPECT_EQ(degraded.completed, least.completed);
  EXPECT_DOUBLE_EQ(degraded.p99_ms, least.p99_ms);
}

TEST(ServingTest, NonFinitePredictionsDegradeOnlyAffectedDecisions) {
  auto predicted = AffinityTimes();
  predicted[1][0] = std::nan("");  // job 1's predictions unusable on gpu 0
  ServingResult result =
      SimulateServing(AffinityTimes(), predicted, {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 100))
          .value();
  EXPECT_GT(result.degraded_dispatches, 0);
  EXPECT_LT(result.degraded_dispatches, result.dispatches);
  ServingResult clean =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 100))
          .value();
  EXPECT_EQ(clean.degraded_dispatches, 0);
}

// --- Fault injection.

TEST(ServingTest, FaultsCauseRetriesAndReduceAvailability) {
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      FaultyConfig(DispatchPolicy::kLeastOutstanding,
                                   /*mtbf_s=*/3, /*mttr_s=*/1))
          .value();
  EXPECT_GT(result.retries, 0);
  double mean_avail = 0;
  for (double a : result.gpu_availability) mean_avail += a;
  mean_avail /= static_cast<double>(result.gpu_availability.size());
  EXPECT_LT(mean_avail, 1.0);
  EXPECT_GT(mean_avail, 0.3);
  // Accounting closes: every arrival either completed or was dropped.
  EXPECT_GT(result.completed, 0);
}

TEST(ServingTest, ZeroRetriesDropsInterruptedJobs) {
  ServingConfig config =
      FaultyConfig(DispatchPolicy::kRoundRobin, /*mtbf_s=*/2, /*mttr_s=*/2);
  config.retry.max_retries = 0;
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  EXPECT_EQ(result.retries, 0);
  EXPECT_GT(result.dropped, 0);
}

TEST(ServingTest, FaultFreeResultsUnchangedByFaultPlumbing) {
  // mtbf 0 must be byte-for-byte the old fault-free behavior.
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kPredictedLeastLoad, 100))
          .value();
  EXPECT_EQ(result.retries + result.dropped + result.degraded_dispatches, 0);
  EXPECT_EQ(result.completed, result.dispatches);
}

TEST(ServingTest, FaultInjectionIsBitIdenticalPerSeed) {
  const ServingConfig config =
      FaultyConfig(DispatchPolicy::kPredictedLeastLoad, 4, 1);
  ServingResult a =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  ServingResult b =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.p99_ms, b.p99_ms);  // bit-identical, not approximately
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  ASSERT_EQ(a.gpu_availability.size(), b.gpu_availability.size());
  for (std::size_t g = 0; g < a.gpu_availability.size(); ++g) {
    EXPECT_EQ(a.gpu_availability[g], b.gpu_availability[g]);
  }
}

/** One seed-sweep cell, run under `pool` into pre-sized slots. */
std::vector<ServingResult> SweepSeeds(int jobs) {
  constexpr int kSeeds = 8;
  std::vector<ServingResult> results(kSeeds);
  ThreadPool pool(jobs);
  pool.ParallelFor(kSeeds, [&](std::size_t i) {
    ServingConfig config =
        FaultyConfig(DispatchPolicy::kPredictedLeastLoad, 4, 1, 100, 10);
    config.seed = 100 + i;
    config.faults.seed = 200 + i;
    results[i] =
        SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
            .value();
  });
  return results;
}

TEST(ServingTest, GridMatchesPerCellRunsForEveryJobCount) {
  std::vector<ServingGridCell> cells;
  for (DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastOutstanding,
        DispatchPolicy::kPredictedLeastLoad}) {
    for (std::uint64_t seed : {3u, 17u}) cells.push_back({policy, seed});
  }
  const ServingConfig base = FaultyConfig(DispatchPolicy::kRoundRobin, 40);

  std::vector<ServingResult> expected;
  for (const ServingGridCell& cell : cells) {
    ServingConfig config = base;
    config.policy = cell.policy;
    config.seed = cell.seed;
    config.faults.seed = cell.seed;
    expected.push_back(
        SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
            .value());
  }

  for (int jobs : {1, 4}) {
    std::vector<StatusOr<ServingResult>> grid = SimulateServingGrid(
        AffinityTimes(), AffinityTimes(), {1, 1}, base, cells, jobs);
    ASSERT_EQ(grid.size(), cells.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      ASSERT_TRUE(grid[i].ok()) << grid[i].status().message();
      EXPECT_EQ(grid[i].value().completed, expected[i].completed);
      EXPECT_EQ(grid[i].value().retries, expected[i].retries);
      EXPECT_EQ(grid[i].value().dropped, expected[i].dropped);
      EXPECT_DOUBLE_EQ(grid[i].value().p99_ms, expected[i].p99_ms);
    }
  }
}

TEST(ServingTest, GridReportsPerCellErrorsWithoutPoisoningTheRest) {
  const std::vector<ServingGridCell> cells = {{DispatchPolicy::kRoundRobin, 1},
                                              {DispatchPolicy::kRoundRobin, 2}};
  ServingConfig bad = Config(DispatchPolicy::kRoundRobin);
  bad.arrival_rate_per_s = -1;  // every cell inherits the invalid rate
  std::vector<StatusOr<ServingResult>> grid = SimulateServingGrid(
      AffinityTimes(), AffinityTimes(), {1, 1}, bad, cells, 2);
  ASSERT_EQ(grid.size(), 2u);
  for (const StatusOr<ServingResult>& cell : grid) {
    ASSERT_FALSE(cell.ok());
    EXPECT_EQ(cell.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServingTest, CountersAccumulateAcrossSimulations) {
  ResetServingCounters();
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      FaultyConfig(DispatchPolicy::kRoundRobin, 40))
          .value();
  ServingCounters after_one = SnapshotServingCounters();
  EXPECT_EQ(after_one.simulations, 1u);
  EXPECT_EQ(after_one.jobs_completed,
            static_cast<std::uint64_t>(result.completed));
  EXPECT_EQ(after_one.jobs_dropped,
            static_cast<std::uint64_t>(result.dropped));
  EXPECT_EQ(after_one.retries, static_cast<std::uint64_t>(result.retries));

  // A grid of 4 cells adds 4 more simulations, even when run in parallel.
  const std::vector<ServingGridCell> cells = {
      {DispatchPolicy::kRoundRobin, 1},
      {DispatchPolicy::kRoundRobin, 2},
      {DispatchPolicy::kLeastOutstanding, 1},
      {DispatchPolicy::kLeastOutstanding, 2}};
  (void)SimulateServingGrid(AffinityTimes(), AffinityTimes(), {1, 1},
                            Config(DispatchPolicy::kRoundRobin), cells, 4);
  EXPECT_EQ(SnapshotServingCounters().simulations, 5u);
  ResetServingCounters();
  EXPECT_EQ(SnapshotServingCounters().simulations, 0u);
}

// --- Overload resilience: admission control, SLO deadlines, breakers.

/** FaultyConfig plus all three overload mechanisms switched on. */
ServingConfig OverloadConfig(DispatchPolicy policy, double rate = 400,
                             double mtbf_s = 3) {
  ServingConfig config = FaultyConfig(policy, mtbf_s, 1, rate, 10);
  config.queue_cap = 4;
  config.slo_ms = 15;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown_ms = 500;
  return config;
}

TEST(ServingTest, OverloadFeaturesOffLeavesResultsByteIdentical) {
  // The back-compat guarantee: default (all-off) overload knobs must
  // reproduce the pre-overload simulator exactly, with zeroed counters.
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      FaultyConfig(DispatchPolicy::kPredictedLeastLoad, 4))
          .value();
  EXPECT_EQ(result.shed_on_admission, 0);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.breaker_opens, 0);
  // With no SLO every completion is "within SLO"; only drops miss.
  const int arrivals = result.completed + result.dropped;
  EXPECT_DOUBLE_EQ(result.slo_attainment,
                   static_cast<double>(result.completed) / arrivals);
}

TEST(ServingTest, BoundedQueuesShedInsteadOfGrowingLatency) {
  // 1000/s onto a pool whose blind-routing capacity is ~450/s: a 4-deep
  // cap must shed and keep p99 bounded, where the unbounded queue grows
  // for the whole horizon.
  ServingConfig capped = Config(DispatchPolicy::kLeastOutstanding, 1000, 10);
  capped.queue_cap = 4;
  ServingResult with_cap =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, capped)
          .value();
  ServingResult unbounded =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1},
                      Config(DispatchPolicy::kLeastOutstanding, 1000, 10))
          .value();
  EXPECT_GT(with_cap.shed_on_admission, 0);
  EXPECT_LT(with_cap.p99_ms, unbounded.p99_ms);
  // Fault-free accounting closes: every admitted job completed, every
  // other arrival was shed.
  EXPECT_EQ(with_cap.dispatches, with_cap.completed);
  EXPECT_EQ(with_cap.dropped, 0);
}

TEST(ServingTest, PredictionDrivenSheddingBeatsBlindOverload) {
  // With an SLO that queued-behind jobs cannot meet, the predictor sheds
  // them on admission instead of completing them late: its goodput
  // (completions inside the SLO) must beat a model-free dispatcher that
  // admits everything and completes almost everything late.
  ServingConfig slo =
      Config(DispatchPolicy::kPredictedLeastLoad, 3000, 5);
  slo.slo_ms = 10;
  ServingResult with_predictions =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, slo)
          .value();
  EXPECT_GT(with_predictions.shed_on_admission, 0);
  ServingConfig blind_config =
      Config(DispatchPolicy::kLeastOutstanding, 3000, 5);
  blind_config.slo_ms = 10;
  ServingResult blind =
      SimulateServing(AffinityTimes(), {}, {1, 1}, blind_config).value();
  EXPECT_EQ(blind.shed_on_admission, 0);  // no model, nothing to shed on
  EXPECT_GT(with_predictions.completed - with_predictions.deadline_misses,
            blind.completed - blind.deadline_misses);
}

TEST(ServingTest, DeadlineMissesAreCountedWithoutShedding) {
  // A model-free overloaded dispatcher completes jobs late: they count
  // as deadline misses, and attainment reflects exactly the on-time
  // completions over all arrivals.
  ServingConfig slo = Config(DispatchPolicy::kLeastOutstanding, 1000, 10);
  slo.slo_ms = 10;
  ServingResult result =
      SimulateServing(AffinityTimes(), {}, {1, 1}, slo).value();
  EXPECT_GT(result.deadline_misses, 0);
  EXPECT_GT(result.slo_attainment, 0.0);
  EXPECT_LT(result.slo_attainment, 1.0);
  const int arrivals = result.completed + result.dropped;
  EXPECT_DOUBLE_EQ(
      result.slo_attainment,
      static_cast<double>(result.completed - result.deadline_misses) /
          arrivals);
}

TEST(ServingTest, BreakersOpenUnderFaultsAndKeepAccountingClosed) {
  ServingConfig flaky =
      FaultyConfig(DispatchPolicy::kLeastOutstanding, /*mtbf_s=*/2,
                   /*mttr_s=*/2, 100, 20);
  flaky.retry.max_retries = 1;
  ServingConfig with_breakers = flaky;
  with_breakers.breaker.failure_threshold = 1;
  with_breakers.breaker.cooldown_ms = 1000;
  ServingResult off = SimulateServing(AffinityTimes(), AffinityTimes(),
                                      {1, 1}, flaky)
                          .value();
  ServingResult on = SimulateServing(AffinityTimes(), AffinityTimes(),
                                     {1, 1}, with_breakers)
                         .value();
  EXPECT_EQ(off.breaker_opens, 0);
  EXPECT_GT(on.breaker_opens, 0);
  // Same seed, same Poisson stream: every arrival still terminates
  // exactly once whether or not breakers reroute it.
  EXPECT_EQ(on.completed + on.dropped, off.completed + off.dropped);
}

TEST(ServingTest, OverloadKnobValidationNamesTheField) {
  const struct {
    const char* field;
    void (*set)(ServingConfig*);
  } cases[] = {
      {"queue_cap", [](ServingConfig* c) { c->queue_cap = -1; }},
      {"slo_ms", [](ServingConfig* c) { c->slo_ms = -5; }},
      {"slo_ms", [](ServingConfig* c) { c->slo_ms = std::nan(""); }},
      {"breaker.failure_threshold",
       [](ServingConfig* c) { c->breaker.failure_threshold = -2; }},
      {"breaker.cooldown_ms",
       [](ServingConfig* c) {
         c->breaker.failure_threshold = 1;
         c->breaker.cooldown_ms = -1;
       }},
      {"breaker.half_open_probes",
       [](ServingConfig* c) {
         c->breaker.failure_threshold = 1;
         c->breaker.half_open_probes = 0;
       }},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(test_case.field);
    ServingConfig config = Config(DispatchPolicy::kRoundRobin);
    test_case.set(&config);
    Status status =
        SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
            .status();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find(test_case.field), std::string::npos)
        << status.message();
  }
}

TEST(ServingTest, OverloadGridIsBitIdenticalAcrossJobCounts) {
  // The acceptance criterion: shedding, deadlines, and breakers all
  // enabled, and every grid cell bit-identical for every --jobs value.
  std::vector<ServingGridCell> cells;
  for (DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastOutstanding,
        DispatchPolicy::kPredictedLeastLoad}) {
    for (std::uint64_t seed : {5u, 23u}) cells.push_back({policy, seed});
  }
  const ServingConfig base = OverloadConfig(DispatchPolicy::kRoundRobin);
  // Optimistic predictions (70% of truth): realistic model error, and the
  // reason deadline *misses* occur at all — a perfectly predicted job is
  // either shed or on time, never late.
  std::vector<std::vector<double>> optimistic = AffinityTimes();
  for (auto& row : optimistic) {
    for (double& v : row) v *= 0.7;
  }

  std::vector<StatusOr<ServingResult>> one = SimulateServingGrid(
      AffinityTimes(), optimistic, {1, 1}, base, cells, 1);
  for (int jobs : {2, 4}) {
    std::vector<StatusOr<ServingResult>> many = SimulateServingGrid(
        AffinityTimes(), optimistic, {1, 1}, base, cells, jobs);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_TRUE(one[i].ok());
      ASSERT_TRUE(many[i].ok());
      EXPECT_EQ(one[i]->completed, many[i]->completed) << i;
      EXPECT_EQ(one[i]->shed_on_admission, many[i]->shed_on_admission) << i;
      EXPECT_EQ(one[i]->deadline_misses, many[i]->deadline_misses) << i;
      EXPECT_EQ(one[i]->breaker_opens, many[i]->breaker_opens) << i;
      EXPECT_EQ(one[i]->slo_attainment, many[i]->slo_attainment) << i;
      EXPECT_EQ(one[i]->p99_ms, many[i]->p99_ms) << i;
    }
  }
  // And at least one cell actually exercised each mechanism, so the
  // bit-identical claim is not vacuous.
  int shed = 0, opens = 0, misses = 0;
  for (const StatusOr<ServingResult>& cell : one) {
    shed += cell->shed_on_admission;
    opens += cell->breaker_opens;
    misses += cell->deadline_misses;
  }
  EXPECT_GT(shed, 0);
  EXPECT_GT(opens, 0);
  EXPECT_GT(misses, 0);
}

TEST(ServingTest, ShedJobsCountInGlobalCounters) {
  ResetServingCounters();
  ServingConfig config = OverloadConfig(DispatchPolicy::kLeastOutstanding);
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  ServingCounters counters = SnapshotServingCounters();
  EXPECT_EQ(counters.jobs_shed,
            static_cast<std::uint64_t>(result.shed_on_admission));
  EXPECT_EQ(counters.breaker_opens,
            static_cast<std::uint64_t>(result.breaker_opens));
  ResetServingCounters();
}

TEST(ServingTest, EveryArrivalIsAccountedFor) {
  // The observability smoke-check invariant: every job that arrives is
  // either completed, dropped, or shed — under faults, retries, bounded
  // queues, and breakers all at once.
  ResetServingCounters();
  ServingConfig config = OverloadConfig(DispatchPolicy::kLeastOutstanding);
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  ServingCounters counters = SnapshotServingCounters();
  EXPECT_GT(counters.jobs_arrived, 0u);
  EXPECT_EQ(counters.jobs_arrived, counters.jobs_completed +
                                       counters.jobs_dropped +
                                       counters.jobs_shed);
  EXPECT_EQ(counters.jobs_arrived,
            static_cast<std::uint64_t>(result.completed + result.dropped +
                                       result.shed_on_admission));
  ResetServingCounters();
}

// Runs one simulation and asserts the conservation invariant both on
// the global counters and the per-run result: every arrival is exactly
// one of completed / dropped / shed.
ServingResult RunAndCheckAccounting(const ServingConfig& config) {
  ResetServingCounters();
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  ServingCounters counters = SnapshotServingCounters();
  EXPECT_GT(counters.jobs_arrived, 0u);
  EXPECT_EQ(counters.jobs_arrived, counters.jobs_completed +
                                       counters.jobs_dropped +
                                       counters.jobs_shed);
  EXPECT_EQ(counters.jobs_arrived,
            static_cast<std::uint64_t>(result.completed + result.dropped +
                                       result.shed_on_admission));
  ResetServingCounters();
  return result;
}

TEST(ServingTest, MttrZeroFaultsKeepAccounting) {
  // Instant repair: zero-length outage blips still interrupt jobs in
  // flight, and every interrupted job must end up completed or dropped.
  ServingConfig config =
      FaultyConfig(DispatchPolicy::kLeastOutstanding, /*mtbf_s=*/2,
                   /*mttr_s=*/0);
  ServingResult result = RunAndCheckAccounting(config);
  EXPECT_GT(result.completed, 0);
  for (double a : result.gpu_availability) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(ServingTest, SubTickMtbfKeepsAccounting) {
  // MTBF below one sim tick: GPUs fail essentially continuously, so
  // most jobs burn their whole retry budget — but nothing may leak.
  ServingConfig config = FaultyConfig(DispatchPolicy::kLeastOutstanding,
                                      /*mtbf_s=*/5e-7, /*mttr_s=*/5e-7,
                                      /*rate=*/2000, /*duration=*/0.05);
  ServingResult result = RunAndCheckAccounting(config);
  EXPECT_GT(result.retries, 0);
}

TEST(ServingTest, ExplicitPlanOutageAtTimeZeroKeepsAccounting) {
  // GPU 0 is already down at t=0 (explicit-plan override): arrivals
  // route to GPU 1 until repair, and the books still balance.
  FaultPlan plan({{{0.0, 5e6}}, {}}, /*horizon_us=*/20e6);
  ServingConfig config = Config(DispatchPolicy::kLeastOutstanding, 100, 20);
  config.fault_plan = &plan;
  ServingResult result = RunAndCheckAccounting(config);
  EXPECT_GT(result.completed, 0);
  ASSERT_EQ(result.gpu_availability.size(), 2u);
  EXPECT_LT(result.gpu_availability[0], 1.0);
  EXPECT_DOUBLE_EQ(result.gpu_availability[1], 1.0);
}

TEST(ServingTest, FaultSweepIsBitIdenticalAcrossJobCounts) {
  // The satellite determinism guarantee: a sweep of fault-injected
  // simulations produces bit-identical results whether run on 1 thread
  // or 4 — randomness lives in the per-cell seeds, never in scheduling.
  std::vector<ServingResult> serial = SweepSeeds(1);
  std::vector<ServingResult> parallel = SweepSeeds(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].completed, parallel[i].completed) << i;
    EXPECT_EQ(serial[i].dropped, parallel[i].dropped) << i;
    EXPECT_EQ(serial[i].retries, parallel[i].retries) << i;
    EXPECT_EQ(serial[i].p50_ms, parallel[i].p50_ms) << i;
    EXPECT_EQ(serial[i].p99_ms, parallel[i].p99_ms) << i;
    EXPECT_EQ(serial[i].mean_ms, parallel[i].mean_ms) << i;
    EXPECT_EQ(serial[i].degraded_dispatch_fraction,
              parallel[i].degraded_dispatch_fraction)
        << i;
  }
}

TEST(ServingTest, DriftPlumbingOffLeavesResultsByteIdentical) {
  // The back-compat guarantee of the drift/observation plumbing: an
  // empty schedule plus observation recording must reproduce the
  // pre-drift simulator bit for bit — recording is purely additive.
  const ServingConfig base = Config(DispatchPolicy::kPredictedLeastLoad);
  ServingResult off =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, base)
          .value();
  gpuexec::DriftSchedule empty_schedule(2, std::vector<gpuexec::DriftEvent>{});
  ServingConfig plumbed = base;
  plumbed.drift = &empty_schedule;
  plumbed.record_observations = true;
  ServingResult on =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, plumbed)
          .value();
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.p50_ms, on.p50_ms);
  EXPECT_EQ(off.p99_ms, on.p99_ms);
  EXPECT_EQ(off.mean_ms, on.mean_ms);
  EXPECT_EQ(off.gpu_utilization, on.gpu_utilization);
  EXPECT_TRUE(off.observations.empty());
  EXPECT_EQ(on.observations.size(), static_cast<std::size_t>(on.completed));
}

TEST(ServingTest, DriftScalesObservedServiceTimes) {
  // A +50% step on GPU 0 from t=0: every completed job on GPU 0 runs
  // exactly 1.5x its truth cell, GPU 1 stays nominal, and predictions
  // (the model's undrifted view) are recorded untouched.
  gpuexec::DriftSchedule drift(
      2, {{/*resource=*/0, /*at_us=*/0, /*ramp_us=*/0, /*factor=*/1.5,
           gpuexec::DriftScope::kAll}});
  ServingConfig config = Config(DispatchPolicy::kPredictedLeastLoad);
  config.drift = &drift;
  config.record_observations = true;
  ServingResult result =
      SimulateServing(AffinityTimes(), AffinityTimes(), {1, 1}, config)
          .value();
  ASSERT_GT(result.observations.size(), 0u);
  bool saw_gpu0 = false;
  for (const ServingObservation& obs : result.observations) {
    const double truth = AffinityTimes()[obs.job][obs.gpu];
    const double factor = obs.gpu == 0 ? 1.5 : 1.0;
    EXPECT_DOUBLE_EQ(obs.observed_us, factor * truth);
    EXPECT_DOUBLE_EQ(obs.predicted_us, truth);
    saw_gpu0 = saw_gpu0 || obs.gpu == 0;
  }
  EXPECT_TRUE(saw_gpu0);
}

TEST(ServingTest, DriftedGridIsBitIdenticalAcrossJobCounts) {
  // The drift determinism guarantee: a mid-horizon ramp changes what
  // happens, but never differently across --jobs values — the schedule
  // is precomputed, so thread count cannot perturb it.
  gpuexec::DriftSchedule drift(
      2, {{/*resource=*/0, /*at_us=*/5e6, /*ramp_us=*/5e6, /*factor=*/1.4,
           gpuexec::DriftScope::kAll}});
  ServingConfig base = Config(DispatchPolicy::kPredictedLeastLoad);
  base.drift = &drift;
  std::vector<ServingGridCell> cells;
  for (DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastOutstanding,
        DispatchPolicy::kPredictedLeastLoad}) {
    for (std::uint64_t seed : {5u, 23u}) cells.push_back({policy, seed});
  }
  std::vector<StatusOr<ServingResult>> one = SimulateServingGrid(
      AffinityTimes(), AffinityTimes(), {1, 1}, base, cells, 1);
  std::vector<StatusOr<ServingResult>> many = SimulateServingGrid(
      AffinityTimes(), AffinityTimes(), {1, 1}, base, cells, 4);
  ASSERT_EQ(many.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_TRUE(one[i].ok());
    ASSERT_TRUE(many[i].ok());
    EXPECT_EQ(one[i]->completed, many[i]->completed) << i;
    EXPECT_EQ(one[i]->p50_ms, many[i]->p50_ms) << i;
    EXPECT_EQ(one[i]->p99_ms, many[i]->p99_ms) << i;
    EXPECT_EQ(one[i]->mean_ms, many[i]->mean_ms) << i;
    EXPECT_EQ(one[i]->gpu_utilization, many[i]->gpu_utilization) << i;
  }
  // The ramp actually bit: the same grid without drift runs faster.
  std::vector<StatusOr<ServingResult>> undrifted = SimulateServingGrid(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kPredictedLeastLoad), cells, 1);
  bool slower_somewhere = false;
  for (std::size_t i = 0; i < one.size(); ++i) {
    slower_somewhere =
        slower_somewhere || one[i]->mean_ms > undrifted[i]->mean_ms;
  }
  EXPECT_TRUE(slower_somewhere);
}

// --- Gray-failure resilience: chaos plans, hedging, retry budgets.

TEST(ServingTest, HedgingRescuesJobsStuckOnAGrayGpu) {
  // GPU 1 is secretly 50x slower than the model believes. Without
  // hedging, every job routed there eats the full gray service time;
  // with hedging, the duplicate lands on the healthy GPU and wins.
  const std::vector<std::vector<double>> truth = {{1'000.0, 50'000.0}};
  const std::vector<std::vector<double>> predicted = {{1'000.0, 1'000.0}};
  ServingConfig config = Config(DispatchPolicy::kPredictedLeastLoad, 50, 10);
  ServingResult unhedged =
      SimulateServing(truth, predicted, {1}, config).value();
  config.hedge_trigger_factor = 2;
  ServingResult hedged =
      SimulateServing(truth, predicted, {1}, config).value();
  EXPECT_GT(hedged.hedges_issued, 0);
  EXPECT_GT(hedged.hedges_won, 0);
  EXPECT_LE(hedged.hedges_won, hedged.hedges_issued);
  EXPECT_LT(hedged.p99_ms, unhedged.p99_ms);
  // Hedging changes latencies, never the conservation of jobs.
  EXPECT_EQ(hedged.completed + hedged.dropped + hedged.shed_on_admission,
            unhedged.completed + unhedged.dropped +
                unhedged.shed_on_admission);
}

TEST(ServingTest, HedgingUnderFaultsKeepsAccounting) {
  // Hedge legs interleaved with outages: failed primaries rescued by
  // hedges, failed hedges absorbed by primaries, double failures
  // retried exactly once — and every arrival still lands in exactly
  // one of completed / dropped / shed.
  ServingConfig config = OverloadConfig(DispatchPolicy::kPredictedLeastLoad);
  config.hedge_trigger_factor = 1.5;
  // Optimistic predictions (half of truth): real jobs overshoot their
  // prediction, so the hedge trigger actually fires.
  std::vector<std::vector<double>> optimistic = AffinityTimes();
  for (auto& row : optimistic) {
    for (double& v : row) v *= 0.5;
  }
  ResetServingCounters();
  ServingResult result =
      SimulateServing(AffinityTimes(), optimistic, {1, 1}, config).value();
  ServingCounters counters = SnapshotServingCounters();
  EXPECT_EQ(counters.jobs_arrived, counters.jobs_completed +
                                       counters.jobs_dropped +
                                       counters.jobs_shed);
  ResetServingCounters();
  EXPECT_GT(result.hedges_issued, 0);
}

TEST(ServingTest, RetryBudgetBoundsRetriesUnderMassFailure) {
  // Sub-tick MTBF: GPUs fail continuously, the classic retry-storm
  // trigger. The token bucket must cap retries at
  // burst + budget x completions, with the excess suppressed.
  ServingConfig config = FaultyConfig(DispatchPolicy::kLeastOutstanding,
                                      /*mtbf_s=*/5e-7, /*mttr_s=*/5e-7,
                                      /*rate=*/2000, /*duration=*/0.05);
  ServingResult unbounded = RunAndCheckAccounting(config);
  config.retry_budget = 0.1;
  config.retry_budget_burst = 5;
  ServingResult bounded = RunAndCheckAccounting(config);
  EXPECT_GT(bounded.retries_suppressed, 0);
  EXPECT_LT(bounded.retries, unbounded.retries);
  EXPECT_LE(bounded.retries,
            5 + static_cast<int>(0.1 * bounded.completed) + 1);
  EXPECT_EQ(unbounded.retries_suppressed, 0);
}

TEST(ServingTest, AdaptiveDetectTimeoutIsDeterministic) {
  // The adaptive timeout is derived from observed (sim-time) service
  // quantiles only, so two identical runs must agree bit-for-bit.
  ServingConfig config = FaultyConfig(DispatchPolicy::kLeastOutstanding, 2);
  config.adaptive_detect_quantile = 0.95;
  config.adaptive_detect_multiplier = 3;
  ServingResult a = RunAndCheckAccounting(config);
  ServingResult b = RunAndCheckAccounting(config);
  EXPECT_GT(a.retries, 0);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
}

TEST(ServingTest, ChaosGraySlowdownInflatesLatencyWithoutOutages) {
  ServingConfig config = Config(DispatchPolicy::kLeastOutstanding, 100, 20);
  ServingResult clean = RunAndCheckAccounting(config);
  config.chaos.gray_mtbf_s = 3;
  config.chaos.gray_mttr_s = 2;
  config.chaos.gray_factor = 5;
  ServingResult gray = RunAndCheckAccounting(config);
  // Gray failures slow service without killing it: latency inflates,
  // availability stays perfect, nothing is dropped to faults.
  EXPECT_GT(gray.mean_ms, clean.mean_ms);
  for (double a : gray.gpu_availability) EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_EQ(gray.retries, 0);
}

TEST(ServingTest, ChaosDomainOutageTakesCorrelatedGpusDown) {
  ServingConfig config = Config(DispatchPolicy::kLeastOutstanding, 100, 20);
  config.chaos.host.size = 2;
  config.chaos.host.mtbf_s = 8;
  config.chaos.host.mttr_s = 1;
  ServingResult result = RunAndCheckAccounting(config);
  // Both GPUs share one host, so their availability dips identically.
  ASSERT_EQ(result.gpu_availability.size(), 2u);
  EXPECT_LT(result.gpu_availability[0], 1.0);
  EXPECT_DOUBLE_EQ(result.gpu_availability[0], result.gpu_availability[1]);
}

TEST(ServingTest, DomainEventAtTimeZeroMttrZeroLeavesBreakersClosed) {
  // Regression (ISSUE 9 satellite): a correlated domain event at t=0
  // with MTTR=0 is a zero-length blip. It must not wedge breakers
  // open — the pool serves normally and every breaker ends closed.
  ServingConfig config = Config(DispatchPolicy::kLeastOutstanding, 100, 10);
  config.chaos.host.size = 2;
  config.chaos.host.mtbf_s = 0;
  config.chaos.host.mttr_s = 0;
  config.chaos.host.first_event_at_s = 0;
  config.breaker.failure_threshold = 1;
  config.breaker.cooldown_ms = 500;
  ServingResult result = RunAndCheckAccounting(config);
  EXPECT_GT(result.completed, 0);
  EXPECT_EQ(result.dropped, 0);
  EXPECT_EQ(result.breakers_open_at_end, 0);
  for (double a : result.gpu_availability) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(ServingTest, ResilienceKnobValidationNamesTheField) {
  const std::vector<std::vector<double>> truth = AffinityTimes();
  ServingConfig config = Config(DispatchPolicy::kLeastOutstanding);
  config.hedge_trigger_factor = -1;
  Status status =
      SimulateServing(truth, truth, {1, 1}, config).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("hedge_trigger_factor"),
            std::string::npos);

  config = Config(DispatchPolicy::kLeastOutstanding);
  config.retry_budget = 0.5;
  config.retry_budget_burst = 0;
  status = SimulateServing(truth, truth, {1, 1}, config).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("retry_budget_burst"), std::string::npos);

  config = Config(DispatchPolicy::kLeastOutstanding);
  config.adaptive_detect_quantile = 1.5;
  status = SimulateServing(truth, truth, {1, 1}, config).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("adaptive_detect_quantile"),
            std::string::npos);

  config = Config(DispatchPolicy::kLeastOutstanding);
  config.chaos.gray_mtbf_s = 5;
  config.chaos.gray_factor = 0.5;
  status = SimulateServing(truth, truth, {1, 1}, config).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("gray_factor"), std::string::npos);

  config = Config(DispatchPolicy::kLeastOutstanding);
  config.chaos.rack.size = 1;
  config.chaos.rack.mtbf_s = 5;
  config.chaos.rack.factor = -2;
  status = SimulateServing(truth, truth, {1, 1}, config).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("rack factor"), std::string::npos);
}

TEST(ServingTest, ChaosGridWithHedgingIsBitIdenticalAcrossJobCounts) {
  // The acceptance criterion: gray slowdowns, flaps, domain events,
  // hedging, retry budgets, adaptive detection, and breakers all on —
  // and every cell, including breaker state and hedge accounting,
  // bit-identical for every --jobs value.
  ServingConfig base = OverloadConfig(DispatchPolicy::kPredictedLeastLoad);
  base.hedge_trigger_factor = 1.5;
  base.retry_budget = 0.2;
  base.retry_budget_burst = 5;
  base.adaptive_detect_quantile = 0.9;
  base.chaos.gray_mtbf_s = 4;
  base.chaos.gray_mttr_s = 1;
  base.chaos.gray_factor = 3;
  base.chaos.flap_mtbf_s = 6;
  base.chaos.host.size = 2;
  base.chaos.host.mtbf_s = 10;
  std::vector<ServingGridCell> cells;
  for (DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastOutstanding,
        DispatchPolicy::kPredictedLeastLoad}) {
    for (std::uint64_t seed : {5u, 23u}) cells.push_back({policy, seed});
  }
  std::vector<StatusOr<ServingResult>> one = SimulateServingGrid(
      AffinityTimes(), AffinityTimes(), {1, 1}, base, cells, 1);
  for (int jobs : {2, 4}) {
    std::vector<StatusOr<ServingResult>> many = SimulateServingGrid(
        AffinityTimes(), AffinityTimes(), {1, 1}, base, cells, jobs);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_TRUE(one[i].ok());
      ASSERT_TRUE(many[i].ok());
      EXPECT_EQ(one[i]->completed, many[i]->completed) << i;
      EXPECT_EQ(one[i]->retries, many[i]->retries) << i;
      EXPECT_EQ(one[i]->hedges_issued, many[i]->hedges_issued) << i;
      EXPECT_EQ(one[i]->hedges_won, many[i]->hedges_won) << i;
      EXPECT_EQ(one[i]->retries_suppressed, many[i]->retries_suppressed)
          << i;
      EXPECT_EQ(one[i]->breaker_opens, many[i]->breaker_opens) << i;
      EXPECT_EQ(one[i]->breakers_open_at_end, many[i]->breakers_open_at_end)
          << i;
      EXPECT_EQ(one[i]->p99_ms, many[i]->p99_ms) << i;
      EXPECT_EQ(one[i]->mean_ms, many[i]->mean_ms) << i;
      EXPECT_EQ(one[i]->gpu_utilization, many[i]->gpu_utilization) << i;
    }
  }
  // Non-vacuous: the hedge and breaker machinery actually ran.
  int hedges = 0, opens = 0;
  for (const StatusOr<ServingResult>& cell : one) {
    hedges += cell->hedges_issued;
    opens += cell->breaker_opens;
  }
  EXPECT_GT(hedges, 0);
  EXPECT_GT(opens, 0);
}

}  // namespace
}  // namespace gpuperf::simsys
