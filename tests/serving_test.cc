#include "simsys/serving.h"

#include <gtest/gtest.h>

namespace gpuperf::simsys {
namespace {

// Two job types on two GPUs; gpu 0 is fast for job 0, gpu 1 for job 1.
std::vector<std::vector<double>> AffinityTimes() {
  return {{1'000.0, 8'000.0}, {8'000.0, 1'000.0}};
}

ServingConfig Config(DispatchPolicy policy, double rate = 100,
                     double duration = 20) {
  ServingConfig config;
  config.policy = policy;
  config.arrival_rate_per_s = rate;
  config.duration_s = duration;
  config.seed = 7;
  return config;
}

TEST(ServingTest, CompletesAllArrivalsEventually) {
  ServingResult result = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kRoundRobin, 50, 10));
  // ~50/s for 10s with some Poisson variance.
  EXPECT_GT(result.completed, 350);
  EXPECT_LT(result.completed, 650);
}

TEST(ServingTest, LatencyPercentilesAreOrdered) {
  ServingResult result = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kLeastOutstanding));
  EXPECT_LE(result.p50_ms, result.p95_ms);
  EXPECT_LE(result.p95_ms, result.p99_ms);
  EXPECT_GT(result.p50_ms, 0.0);
}

TEST(ServingTest, PredictionAwareDispatchExploitsAffinity) {
  // With strong per-job GPU affinity, the model-driven policy must
  // clearly beat round-robin on tail latency.
  ServingResult blind = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kRoundRobin, 300));
  ServingResult aware = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kPredictedLeastLoad, 300));
  EXPECT_LT(aware.p99_ms, blind.p99_ms);
  EXPECT_LT(aware.mean_ms, blind.mean_ms);
}

TEST(ServingTest, ImperfectPredictionsStillWork) {
  // Predictions off by a constant factor preserve the ordering, so the
  // policy should not collapse.
  auto predicted = AffinityTimes();
  for (auto& row : predicted) {
    for (double& v : row) v *= 1.3;
  }
  ServingResult result = SimulateServing(
      AffinityTimes(), predicted, {1, 1},
      Config(DispatchPolicy::kPredictedLeastLoad, 300));
  ServingResult blind = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kRoundRobin, 300));
  EXPECT_LT(result.p99_ms, blind.p99_ms);
}

TEST(ServingTest, UtilizationIsSane) {
  ServingResult result = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 1},
      Config(DispatchPolicy::kPredictedLeastLoad, 100));
  ASSERT_EQ(result.gpu_utilization.size(), 2u);
  for (double u : result.gpu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ServingTest, DeterministicPerSeed) {
  ServingResult a = SimulateServing(AffinityTimes(), AffinityTimes(),
                                    {1, 1},
                                    Config(DispatchPolicy::kRoundRobin));
  ServingResult b = SimulateServing(AffinityTimes(), AffinityTimes(),
                                    {1, 1},
                                    Config(DispatchPolicy::kRoundRobin));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
}

TEST(ServingTest, JobMixWeightsAreRespected) {
  // Job 1 never arrives; only gpu-0-friendly jobs exist, so with the
  // aware policy gpu 0 should absorb nearly all the work.
  ServingResult result = SimulateServing(
      AffinityTimes(), AffinityTimes(), {1, 0},
      Config(DispatchPolicy::kPredictedLeastLoad, 50));
  EXPECT_GT(result.gpu_utilization[0], result.gpu_utilization[1]);
}

TEST(ServingTest, PolicyNamesAreStable) {
  EXPECT_EQ(DispatchPolicyName(DispatchPolicy::kRoundRobin), "round-robin");
  EXPECT_EQ(DispatchPolicyName(DispatchPolicy::kPredictedLeastLoad),
            "predicted-least-load");
}

TEST(ServingDeathTest, BadInputsAbort) {
  EXPECT_DEATH(SimulateServing({}, {}, {},
                               Config(DispatchPolicy::kRoundRobin)),
               "check failed");
  EXPECT_DEATH(SimulateServing(AffinityTimes(), AffinityTimes(), {0, 0},
                               Config(DispatchPolicy::kRoundRobin)),
               "check failed");
}

}  // namespace
}  // namespace gpuperf::simsys
