#include "models/cpu_aware_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dataset/builder.h"
#include "gpuexec/profiler.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

class CpuAwareModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& campaign = SmallCampaign::Get();
    kw_ = new KwModel();
    kw_->Train(campaign.data(), campaign.split());

    // A tiny-batch campaign exposing the launch pipeline.
    dataset::BuildOptions options;
    options.gpu_names = {"A100"};
    options.batch = 2;
    small_data_ = new dataset::Dataset(
        dataset::BuildDataset(zoo::SmallZoo(16), options));
    small_split_ = new dataset::NetworkSplit(
        dataset::SplitByNetwork(*small_data_, 0.15, 99));
    model_ = new CpuAwareModel();
    model_->Train(*kw_, *small_data_, *small_split_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete small_split_;
    delete small_data_;
    delete kw_;
  }

  static KwModel* kw_;
  static dataset::Dataset* small_data_;
  static dataset::NetworkSplit* small_split_;
  static CpuAwareModel* model_;
};

KwModel* CpuAwareModelTest::kw_ = nullptr;
dataset::Dataset* CpuAwareModelTest::small_data_ = nullptr;
dataset::NetworkSplit* CpuAwareModelTest::small_split_ = nullptr;
CpuAwareModel* CpuAwareModelTest::model_ = nullptr;

TEST_F(CpuAwareModelTest, FitsAPlausibleLaunchPipeline) {
  const CpuPipelineFit& fit = model_->FitFor("A100");
  EXPECT_GT(fit.samples, 5u);
  // The fitted per-kernel cost should be near the true issue gap (12 us).
  EXPECT_GT(fit.per_kernel_us, 5.0);
  EXPECT_LT(fit.per_kernel_us, 25.0);
}

TEST_F(CpuAwareModelTest, PredictKernelCountMatchesMappingTable) {
  const dnn::Network& net = SmallCampaign::Get().networks()[0];
  std::int64_t expected = 0;
  for (const dnn::Layer& layer : net.layers()) {
    expected += static_cast<std::int64_t>(
        kw_->KernelsForLayer(layer).size());
  }
  EXPECT_EQ(model_->PredictKernelCount(net), expected);
}

TEST_F(CpuAwareModelTest, MatchesKwAtLargeBatch) {
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const dnn::Network& net = SmallCampaign::Get().networks()[1];
  EXPECT_DOUBLE_EQ(model_->PredictUs(net, a100, 512),
                   kw_->PredictUs(net, a100, 512));
}

TEST_F(CpuAwareModelTest, RaisesPredictionsAtTinyBatch) {
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  int raised = 0, total = 0;
  for (const dnn::Network& net : SmallCampaign::Get().networks()) {
    ++total;
    if (model_->PredictUs(net, a100, 1) > kw_->PredictUs(net, a100, 1)) {
      ++raised;
    }
  }
  EXPECT_GT(raised, total / 3);
}

TEST_F(CpuAwareModelTest, ImprovesSmallBatchAccuracy) {
  const auto& campaign = SmallCampaign::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  gpuexec::Profiler profiler(campaign.oracle());
  std::vector<double> kw_pred, cpu_pred, measured;
  for (const dnn::Network* net : campaign.TestNetworks()) {
    kw_pred.push_back(kw_->PredictUs(*net, a100, 1));
    cpu_pred.push_back(model_->PredictUs(*net, a100, 1));
    measured.push_back(profiler.MeasureE2eUs(*net, a100, 1));
  }
  EXPECT_LE(Mape(cpu_pred, measured), Mape(kw_pred, measured) + 0.01);
}

TEST_F(CpuAwareModelTest, UntrainedGpuFallsBackToKw) {
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  const dnn::Network& net = SmallCampaign::Get().networks()[0];
  // The CPU law was only fit for A100; TITAN predictions must be pure KW.
  EXPECT_DOUBLE_EQ(model_->PredictUs(net, titan, 1),
                   kw_->PredictUs(net, titan, 1));
}

TEST_F(CpuAwareModelTest, NameIsStable) {
  EXPECT_EQ(model_->Name(), "KW+CPU");
}

TEST(CpuAwareModelDeathTest, ThresholdMustExceedOne) {
  const auto& campaign = SmallCampaign::Get();
  KwModel kw;
  kw.Train(campaign.data(), campaign.split());
  CpuAwareModel model;
  EXPECT_DEATH(
      model.Train(kw, campaign.data(), campaign.split(), 0.9),
      "check failed");
}

}  // namespace
}  // namespace gpuperf::models
