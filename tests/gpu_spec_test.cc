#include "gpuexec/gpu_spec.h"

#include <gtest/gtest.h>

namespace gpuperf::gpuexec {
namespace {

TEST(GpuSpecTest, AllSevenTable1GpusPresent) {
  EXPECT_EQ(AllGpus().size(), 7u);
}

struct SpecCase {
  const char* name;
  double bandwidth;
  double memory;
  double tflops;
  int tensor_cores;
};

class Table1Test : public ::testing::TestWithParam<SpecCase> {};

TEST_P(Table1Test, MatchesPaperTable1) {
  const SpecCase c = GetParam();
  const GpuSpec& gpu = GpuByName(c.name);
  EXPECT_DOUBLE_EQ(gpu.bandwidth_gbps, c.bandwidth);
  EXPECT_DOUBLE_EQ(gpu.memory_gb, c.memory);
  EXPECT_DOUBLE_EQ(gpu.fp32_tflops, c.tflops);
  EXPECT_EQ(gpu.tensor_cores, c.tensor_cores);
  EXPECT_GT(gpu.sm_count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Table1Test,
    ::testing::Values(SpecCase{"A100", 1555, 40, 19.5, 432},
                      SpecCase{"A40", 696, 48, 37.4, 336},
                      SpecCase{"GTX 1080 Ti", 484, 11, 11.3, 0},
                      SpecCase{"Quadro P620", 80, 2, 1.4, 0},
                      SpecCase{"RTX A5000", 768, 24, 27.8, 256},
                      SpecCase{"TITAN RTX", 672, 24, 16.3, 576},
                      SpecCase{"V100", 900, 16, 14.1, 640}));

TEST(GpuSpecTest, DerivedUnits) {
  const GpuSpec& a100 = GpuByName("A100");
  EXPECT_DOUBLE_EQ(a100.PeakFlops(), 19.5e12);
  EXPECT_DOUBLE_EQ(a100.BandwidthBytesPerSec(), 1555e9);
}

TEST(GpuSpecTest, WithBandwidthOnlyChangesBandwidth) {
  const GpuSpec& titan = GpuByName("TITAN RTX");
  GpuSpec modified = titan.WithBandwidth(900);
  EXPECT_DOUBLE_EQ(modified.bandwidth_gbps, 900);
  EXPECT_EQ(modified.name, titan.name);
  EXPECT_DOUBLE_EQ(modified.fp32_tflops, titan.fp32_tflops);
  EXPECT_EQ(modified.sm_count, titan.sm_count);
}

TEST(MigSliceTest, ScalesResourcesProportionally) {
  const GpuSpec& a100 = GpuByName("A100");
  GpuSpec half = a100.MigSlice(3, 6);
  EXPECT_NEAR(half.bandwidth_gbps, a100.bandwidth_gbps / 2, 1e-9);
  EXPECT_NEAR(half.fp32_tflops, a100.fp32_tflops / 2, 1e-9);
  EXPECT_NEAR(half.memory_gb, a100.memory_gb / 2, 1e-9);
  EXPECT_EQ(half.sm_count, a100.sm_count / 2);
  EXPECT_EQ(half.name, "A100-3g");
}

TEST(MigSliceTest, FullSliceKeepsSpecs) {
  const GpuSpec& a100 = GpuByName("A100");
  GpuSpec full = a100.MigSlice(7, 7);
  EXPECT_DOUBLE_EQ(full.bandwidth_gbps, a100.bandwidth_gbps);
  EXPECT_EQ(full.sm_count, a100.sm_count);
}

TEST(MigSliceTest, TinySliceKeepsAtLeastOneSm) {
  const GpuSpec& p620 = GpuByName("Quadro P620");
  EXPECT_GE(p620.MigSlice(1, 7).sm_count, 1);
}

TEST(MigSliceDeathTest, InvalidSliceCountsAbort) {
  const GpuSpec& a100 = GpuByName("A100");
  EXPECT_DEATH(a100.MigSlice(0), "check failed");
  EXPECT_DEATH(a100.MigSlice(8, 7), "check failed");
}

TEST(GpuSpecDeathTest, UnknownGpuIsFatal) {
  EXPECT_EXIT(GpuByName("H100"), ::testing::ExitedWithCode(1),
              "unknown GPU");
}

}  // namespace
}  // namespace gpuperf::gpuexec
