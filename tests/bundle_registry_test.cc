// Hot model-bundle reload: a candidate must pass integrity validation
// AND a canary prediction gate before it atomically replaces the serving
// generation; any failure leaves the registry untouched (the old
// generation keeps serving), and Rollback() restores the pre-promotion
// generation after the fact. The concurrency test at the bottom swaps
// generations under concurrent predicting readers and is the reason this
// test is in the TSan tier.

#include "models/bundle_registry.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "gpuexec/gpu_spec.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::GoldenKwBundleDir;
using testing::RemanifestKwBundle;
using testing::ScratchKwBundleDir;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GP_CHECK(out.good()) << path;
  out << content;
}

/** Multiplies every calibration factor by `scale` and re-manifests, so
 * the bundle passes integrity but predicts `scale`x the golden times. */
void ScaleCalibration(const std::string& dir, double scale) {
  std::vector<std::string> lines =
      Split(ReadAll(dir + "/calibration.csv"), '\n');
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> fields = Split(lines[i], ',');
    GP_CHECK_GE(fields.size(), 2u);
    fields[1] = Format("%.17g", ParseFiniteDouble(fields[1]).value() * scale);
    lines[i] = Join(fields, ",");
  }
  WriteAll(dir + "/calibration.csv", Join(lines, "\n"));
  RemanifestKwBundle(dir);
}

CanaryOptions Probes() {
  CanaryOptions options;
  options.probe_networks = {zoo::BuildByName("resnet18"),
                            zoo::BuildByName("mobilenet_v2")};
  options.batch = 16;
  options.tolerance = 0.5;
  return options;
}

TEST(BundleRegistryTest, EmptyRegistryServesNothing) {
  BundleRegistry registry;
  EXPECT_EQ(registry.Snapshot(), nullptr);
  const BundleRegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.generation, 0u);
  EXPECT_EQ(counters.promotions, 0u);
}

TEST(BundleRegistryTest, ValidBundlePromotes) {
  BundleRegistry registry;
  ASSERT_TRUE(registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const KwModel> model = registry.Snapshot();
  ASSERT_NE(model, nullptr);
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName("A40");
  EXPECT_GT(model->PredictUs(zoo::BuildByName("resnet18"), gpu, 16), 0);
  const BundleRegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.generation, 1u);
  EXPECT_EQ(counters.promotions, 1u);
  EXPECT_EQ(counters.rejections, 0u);
}

TEST(BundleRegistryTest, CorruptCandidateIsRejectedAndOldKeepsServing) {
  BundleRegistry registry;
  ASSERT_TRUE(registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const KwModel> before = registry.Snapshot();

  const std::string dir = ScratchKwBundleDir("reg_corrupt");
  std::string content = ReadAll(dir + "/kernel_models.csv");
  content[content.size() / 2] ^= 0x20;  // no re-manifest: checksum gate
  WriteAll(dir + "/kernel_models.csv", content);

  const Status status = registry.TryPromote(dir, Probes());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("rejected"), std::string::npos);
  // The serving generation is untouched — same object, not a reload.
  EXPECT_EQ(registry.Snapshot(), before);
  const BundleRegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.generation, 1u);
  EXPECT_EQ(counters.rejections, 1u);
  std::filesystem::remove_all(dir);
}

TEST(BundleRegistryTest, CanaryRejectsDriftingCandidate) {
  BundleRegistry registry;
  ASSERT_TRUE(registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const KwModel> before = registry.Snapshot();

  // Integrity-clean (re-manifested) but 10x the golden predictions:
  // only the canary gate can catch this.
  const std::string dir = ScratchKwBundleDir("reg_drift");
  ScaleCalibration(dir, 10.0);

  const Status status = registry.TryPromote(dir, Probes());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("canary"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("drifts"), std::string::npos);
  EXPECT_EQ(registry.Snapshot(), before);
  EXPECT_EQ(registry.counters().rejections, 1u);
  std::filesystem::remove_all(dir);
}

TEST(BundleRegistryTest, FirstGenerationHasNoDriftBaseline) {
  // The same 10x bundle is *accepted* into an empty registry: with no
  // serving generation there is nothing to drift from, and its
  // predictions are finite and positive.
  const std::string dir = ScratchKwBundleDir("reg_first");
  ScaleCalibration(dir, 10.0);
  BundleRegistry registry;
  EXPECT_TRUE(registry.TryPromote(dir, Probes()).ok());
  std::filesystem::remove_all(dir);
}

TEST(BundleRegistryTest, RollbackRestoresThePreviousGeneration) {
  BundleRegistry registry;
  ASSERT_TRUE(registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const KwModel> first = registry.Snapshot();

  // A second, slightly-recalibrated generation inside the tolerance.
  const std::string dir = ScratchKwBundleDir("reg_rollback");
  ScaleCalibration(dir, 1.2);
  ASSERT_TRUE(registry.TryPromote(dir, Probes()).ok());
  EXPECT_NE(registry.Snapshot(), first);

  ASSERT_TRUE(registry.Rollback().ok());
  EXPECT_EQ(registry.Snapshot(), first);
  const BundleRegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.promotions, 2u);
  EXPECT_EQ(counters.rollbacks, 1u);
  // One level of history: a second rollback has nothing to restore.
  const Status again = registry.Rollback();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

TEST(BundleRegistryTest, InFlightSnapshotSurvivesPromoteAndRollback) {
  BundleRegistry registry;
  ASSERT_TRUE(registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());
  std::shared_ptr<const KwModel> held = registry.Snapshot();
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName("A40");
  const dnn::Network net = zoo::BuildByName("resnet18");
  const double before = held->PredictUs(net, gpu, 16);

  const std::string dir = ScratchKwBundleDir("reg_inflight");
  ScaleCalibration(dir, 1.2);
  ASSERT_TRUE(registry.TryPromote(dir, Probes()).ok());
  ASSERT_TRUE(registry.Rollback().ok());

  // The held generation kept answering identically throughout.
  EXPECT_EQ(held->PredictUs(net, gpu, 16), before);
  std::filesystem::remove_all(dir);
}

// The acceptance-criterion concurrency test: one writer alternately
// promotes two valid generations while reader threads keep predicting
// from snapshots. Run under -DGPUPERF_SANITIZE=thread this must be
// data-race-free; unsynchronized access to the swapped pointer or to a
// freed generation is exactly what TSan would flag.
TEST(BundleRegistryTest, SwappingGenerationsUnderConcurrentReadersIsClean) {
  const std::string recalibrated = ScratchKwBundleDir("reg_tsan");
  ScaleCalibration(recalibrated, 1.2);

  BundleRegistry registry;
  ASSERT_TRUE(registry.TryPromote(GoldenKwBundleDir(), Probes()).ok());

  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName("A40");
  const dnn::Network net = zoo::BuildByName("resnet18");
  constexpr int kReaders = 3;
  constexpr int kSwaps = 6;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};  // gpuperf-lint: allow(raw-counter)

  ThreadPool pool(kReaders + 1);
  pool.ParallelFor(kReaders + 1, [&](std::size_t task) {
    if (task == 0) {  // the writer
      for (int i = 0; i < kSwaps; ++i) {
        const std::string& dir =
            (i % 2 == 0) ? recalibrated : GoldenKwBundleDir();
        if (!registry.TryPromote(dir, Probes()).ok()) failures.fetch_add(1);
      }
      done.store(true);
    } else {  // a predicting reader
      while (!done.load()) {
        std::shared_ptr<const KwModel> model = registry.Snapshot();
        if (model == nullptr || model->PredictUs(net, gpu, 16) <= 0) {
          failures.fetch_add(1);
          return;
        }
      }
    }
  });

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.counters().promotions,
            static_cast<std::uint64_t>(kSwaps) + 1);
  std::filesystem::remove_all(recalibrated);
}

}  // namespace
}  // namespace gpuperf::models
