#include "lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace gpuperf::lint {
namespace {

// The fixture directory is baked in by CMake (tests/lint_fixtures); each
// known-bad file documents its expected `file:line: rule` lines at the
// top, and this test pins them exactly.
#ifndef GPUPERF_LINT_FIXTURE_DIR
#error "GPUPERF_LINT_FIXTURE_DIR must be defined by the build"
#endif
const char kFixtureDir[] = GPUPERF_LINT_FIXTURE_DIR;

std::vector<std::string> LintFixture(const std::string& name) {
  std::vector<Violation> violations;
  std::string error;
  const std::string path = std::string(kFixtureDir) + "/" + name;
  EXPECT_TRUE(LintPaths({path}, &violations, &error)) << error;
  std::vector<std::string> lines;
  for (const Violation& violation : violations) {
    // The exact `file:line: rule` prefix — the part scripts match on.
    lines.push_back(violation.file + ":" + std::to_string(violation.line) +
                    ": " + violation.rule);
  }
  return lines;
}

std::string Prefix(const std::string& name, int line,
                   const std::string& rule) {
  return std::string(kFixtureDir) + "/" + name + ":" + std::to_string(line) +
         ": " + rule;
}

TEST(LintTest, RawRandomFixture) {
  EXPECT_EQ(LintFixture("raw_random_bad.cc"),
            (std::vector<std::string>{
                Prefix("raw_random_bad.cc", 7, "raw-random"),
                Prefix("raw_random_bad.cc", 8, "raw-random"),
                Prefix("raw_random_bad.cc", 10, "raw-random"),
                Prefix("raw_random_bad.cc", 12, "raw-random"),
            }));
}

TEST(LintTest, FatalFixture) {
  EXPECT_EQ(LintFixture("fatal_bad.cc"),
            (std::vector<std::string>{
                Prefix("fatal_bad.cc", 8, "fatal-in-lib"),
            }));
}

TEST(LintTest, UnorderedOrderFixture) {
  EXPECT_EQ(LintFixture("unordered_bad.cc"),
            (std::vector<std::string>{
                Prefix("unordered_bad.cc", 11, "unordered-order"),
                Prefix("unordered_bad.cc", 17, "unordered-order"),
            }));
}

TEST(LintTest, RawMutexFixture) {
  EXPECT_EQ(LintFixture("raw_mutex_bad.cc"),
            (std::vector<std::string>{
                Prefix("raw_mutex_bad.cc", 8, "raw-mutex"),
                Prefix("raw_mutex_bad.cc", 9, "raw-mutex"),
                Prefix("raw_mutex_bad.cc", 11, "raw-mutex"),
                Prefix("raw_mutex_bad.cc", 11, "raw-mutex"),
            }));
}

TEST(LintTest, RawCounterFixture) {
  EXPECT_EQ(LintFixture("raw_counter_bad.cc"),
            (std::vector<std::string>{
                Prefix("raw_counter_bad.cc", 8, "raw-counter"),
                Prefix("raw_counter_bad.cc", 9, "raw-counter"),
                Prefix("raw_counter_bad.cc", 10, "raw-counter"),
                Prefix("raw_counter_bad.cc", 11, "raw-counter"),
            }));
}

TEST(LintTest, BundleLifecycleFixture) {
  EXPECT_EQ(LintFixture("bundle_lifecycle_bad.cc"),
            (std::vector<std::string>{
                Prefix("bundle_lifecycle_bad.cc", 8, "bundle-lifecycle"),
                Prefix("bundle_lifecycle_bad.cc", 9, "bundle-lifecycle"),
                Prefix("bundle_lifecycle_bad.cc", 10, "bundle-lifecycle"),
            }));
}

TEST(LintTest, MetricNameFixture) {
  EXPECT_EQ(LintFixture("metric_name_bad.cc"),
            (std::vector<std::string>{
                Prefix("metric_name_bad.cc", 9, "metric-name"),
                Prefix("metric_name_bad.cc", 10, "metric-name"),
                Prefix("metric_name_bad.cc", 11, "metric-name"),
                Prefix("metric_name_bad.cc", 12, "metric-name"),
                Prefix("metric_name_bad.cc", 13, "metric-name"),
            }));
}

TEST(LintTest, WallClockFixture) {
  EXPECT_EQ(LintFixture("src/wall_clock_bad.cc"),
            (std::vector<std::string>{
                Prefix("src/wall_clock_bad.cc", 7, "wall-clock"),
                Prefix("src/wall_clock_bad.cc", 8, "wall-clock"),
            }));
}

TEST(LintTest, SplitDeclarationUsesPairedHeader) {
  EXPECT_EQ(LintFixture("split_decl_bad.cc"),
            (std::vector<std::string>{
                Prefix("split_decl_bad.cc", 7, "unordered-order"),
            }));
  // The header alone declares but never iterates: clean.
  EXPECT_EQ(LintFixture("split_decl_bad.h"), std::vector<std::string>{});
}

TEST(LintTest, AllowCommentsSuppressEveryRule) {
  EXPECT_EQ(LintFixture("allow_ok.cc"), std::vector<std::string>{});
}

TEST(LintTest, WholeFixtureDirectoryIsDeterministic) {
  std::vector<Violation> first, second;
  std::string error;
  ASSERT_TRUE(LintPaths({kFixtureDir}, &first, &error)) << error;
  ASSERT_TRUE(LintPaths({kFixtureDir}, &second, &error)) << error;
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(FormatViolation(first[i]), FormatViolation(second[i]));
  }
  // 4 + 1 + 2 + 4 + 4 + 1 + 3 + 5 + 2 known-bad findings; the allow,
  // raw-string, and whole-program fixtures are all clean under the
  // per-file rules.
  EXPECT_EQ(first.size(), 26u);
}

TEST(LintTest, OutputIsByteIdenticalForAnyPathOrdering) {
  // The same tree reached via different argument orders — and with a
  // file repeated both directly and through its directory — must
  // produce one identical, deduplicated report.
  const std::string file =
      std::string(kFixtureDir) + "/raw_random_bad.cc";
  const std::vector<std::vector<std::string>> orderings = {
      {kFixtureDir},
      {file, kFixtureDir},
      {kFixtureDir, file, file},
  };
  std::vector<std::string> reference;
  for (const std::vector<std::string>& paths : orderings) {
    std::vector<Violation> violations;
    std::string error;
    ASSERT_TRUE(LintPaths(paths, &violations, &error)) << error;
    std::vector<std::string> lines;
    for (const Violation& violation : violations) {
      lines.push_back(FormatViolation(violation));
    }
    if (reference.empty()) {
      reference = lines;
    } else {
      EXPECT_EQ(lines, reference);
    }
  }
  EXPECT_EQ(reference.size(), 26u);
}

TEST(LintTest, FormatIsMachineReadable) {
  const Violation violation{"src/foo.cc", 12, "raw-random", "message"};
  EXPECT_EQ(FormatViolation(violation), "src/foo.cc:12: raw-random: message");
}

TEST(LintTest, RuleNamesAreStable) {
  EXPECT_EQ(RuleNames(),
            (std::vector<std::string>{
                "raw-random", "fatal-in-lib", "unordered-order", "raw-mutex",
                "raw-counter", "bundle-lifecycle", "wall-clock", "metric-name",
                "layering", "lock-order", "determinism-taint"}));
}

TEST(LintTest, EveryRuleHasCatalogMetadata) {
  for (const RuleInfo& rule : Rules()) {
    EXPECT_EQ(FindRule(rule.id), &rule);
    EXPECT_FALSE(std::string(rule.summary).empty()) << rule.id;
    EXPECT_FALSE(std::string(rule.rationale).empty()) << rule.id;
    EXPECT_FALSE(std::string(rule.escape).empty()) << rule.id;
  }
  EXPECT_EQ(FindRule("no-such-rule"), nullptr);
}

TEST(LintTest, StringsAndCommentsAreInvisible) {
  const std::string code =
      "const char* a = \"std::mutex rand() Fatal(\";\n"
      "// Fatal( rand() std::random_device\n"
      "/* std::lock_guard<std::mutex> lock(mu); */\n"
      "const char* raw = R\"(Fatal(\"boom\") std::mutex)\";\n";
  EXPECT_TRUE(LintContent("probe.cc", code).empty());
}

TEST(LintTest, RawStringFixtureIsClean) {
  EXPECT_EQ(LintFixture("raw_string_ok.cc"), std::vector<std::string>{});
}

TEST(LintTest, CodeAfterRawStringIsLive) {
  // The lexer must resume at the closing )delim" — a violation right
  // after the literal proves the rest of the line is code again.
  const std::string code =
      "const char* a = R\"(rand() in here is data)\"; int b = rand();\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "raw-random");
  EXPECT_EQ(violations[0].line, 1);
}

TEST(LintTest, RawStringEncodingPrefixesAreData) {
  const std::string code =
      "const wchar_t* a = LR\"(std::mutex mu; rand())\";\n"
      "const char* b = u8R\"(Fatal(\"boom\") srand(7))\";\n"
      "const char16_t* c = uR\"(std::random_device rd;)\";\n"
      "const char32_t* d = UR\"(time(nullptr))\";\n";
  EXPECT_TRUE(LintContent("src/models/probe.cc", code).empty());
}

TEST(LintTest, RawStringCustomDelimiterHonored) {
  // `)"` inside the literal must not close it — only `)gp"` does; the
  // rand() after the real close must still be seen as code.
  const std::string code =
      "const char* a = R\"gp(quote )\" not the end)gp\"; int b = rand();\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "raw-random");
}

TEST(LintTest, IdentifierEndingInRIsNotARawStringPrefix) {
  // `FooR"(a)b"` is an identifier then an ordinary string (a user
  // literal suffix shape) — misread as a raw string, the lexer would
  // hunt for `)"`, swallow the rest of the line, and hide the rand().
  const std::string code =
      "const char* x = FooR\"(a)b\"; int y = rand();\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "raw-random");
}

TEST(LintTest, MalformedRawDelimiterFallsBackToOrdinaryString) {
  // A "delimiter" with spaces is invalid; the lexer must degrade to an
  // ordinary string instead of scanning for an impossible close.
  const std::string code =
      "const char* s = R\"not a valid delimiter(x)\";\n"
      "int b = rand();\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 2);
}

TEST(LintTest, MultiLineRawStringStaysData) {
  const std::string code =
      "const char* s = R\"(first\n"
      "Fatal(\"second line is still data\")\n"
      "rand() on the third)\";\n"
      "int live = rand();\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 4);
}

TEST(LintTest, AllowDirectiveAfterRawStringStillParses) {
  // A raw string earlier on the line must not eat the trailing allow
  // comment (this breaks if the lexer loses sync at the close).
  const std::string code =
      "const char* s = R\"(data)\"; int b = rand();  "
      "// gpuperf-lint: allow(raw-random)\n";
  EXPECT_TRUE(LintContent("probe.cc", code).empty());
}

TEST(LintTest, EscapedQuoteInsideStringStaysAString) {
  const std::string code =
      "const char* a = \"quote \\\" then Fatal(\";\n"
      "int b = 0;\n";
  EXPECT_TRUE(LintContent("probe.cc", code).empty());
}

TEST(LintTest, AllowOnWrongRuleDoesNotSuppress) {
  const std::string code =
      "int Roll() { return rand(); }  // gpuperf-lint: allow(raw-mutex)\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "raw-random");
  EXPECT_EQ(violations[0].line, 1);
}

TEST(LintTest, StandaloneAllowGuardsOnlyTheNextLine) {
  const std::string code =
      "// gpuperf-lint: allow(raw-random)\n"
      "int a = rand();\n"
      "int b = rand();\n";
  const std::vector<Violation> violations = LintContent("probe.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 3);
}

TEST(LintTest, SynchronizationHeaderItselfIsExempt) {
  const std::string code = "std::mutex mu_;\n";
  EXPECT_TRUE(
      LintContent("src/common/synchronization.h", code).empty());
  EXPECT_EQ(LintContent("src/other.h", code).size(), 1u);
}

TEST(LintTest, FatalAllowlistCoversLegacyFiles) {
  const std::string code = "void F() { Fatal(\"x\"); }\n";
  EXPECT_TRUE(LintContent("src/common/csv.cc", code).empty());
  EXPECT_EQ(LintContent("src/simsys/serving.cc", code).size(), 1u);
}

TEST(LintTest, MissingPathIsAnErrorNotAViolation) {
  std::vector<Violation> violations;
  std::string error;
  EXPECT_FALSE(LintPaths({"/nonexistent/gpuperf"}, &violations, &error));
  EXPECT_NE(error.find("/nonexistent/gpuperf"), std::string::npos);
  EXPECT_TRUE(violations.empty());
}

TEST(LintTest, ObsModuleIsExemptFromRawCounter) {
  const std::string code = "std::atomic<std::uint64_t> value_{0};\n";
  EXPECT_TRUE(LintContent("src/obs/metrics_registry.h", code).empty());
  const std::vector<Violation> violations =
      LintContent("src/simsys/serving.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "raw-counter");
}

TEST(LintTest, RawCounterExemptionMatchesObsComponentNotSubstring) {
  const std::string code = "std::atomic<std::uint64_t> value_{0};\n";
  // "jobs/" contains the substring "obs/" — only the exact "obs"
  // directory component is exempt.
  for (const char* path : {"src/jobs/worker.cc", "blobs/cache.cc"}) {
    const std::vector<Violation> violations = LintContent(path, code);
    ASSERT_EQ(violations.size(), 1u) << path;
    EXPECT_EQ(violations[0].rule, "raw-counter");
  }
  EXPECT_TRUE(LintContent("/abs/path/src/obs/cells.h", code).empty());
}

TEST(LintTest, NonIntegralAtomicsAreNotCounters) {
  const std::string code =
      "std::atomic<bool> flag{false};\n"
      "std::atomic<double> level{0.0};\n"
      "std::atomic<Node*> head{nullptr};\n"
      "std::atomic<void (*)(long long)> observer{nullptr};\n";
  EXPECT_TRUE(LintContent("src/simsys/serving.cc", code).empty());
}

TEST(LintTest, BundleLifecycleExemptsModelsAndCli) {
  const std::string code = "void F(R* r) { r->TryPromote(\"d\"); }\n";
  EXPECT_TRUE(LintContent("src/models/refit.cc", code).empty());
  EXPECT_TRUE(LintContent("tools/gpuperf_cli.cc", code).empty());
  // "models" must be a directory component, not a file-name substring.
  const std::vector<Violation> violations =
      LintContent("src/simsys/models_glue.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "bundle-lifecycle");
}

TEST(LintTest, BundleLifecycleIgnoresFreeFunctions) {
  const std::string code =
      "void Rollback();\n"
      "void F() { Rollback(); }\n"
      "void G(R* r) { r->RollbackLog(); }\n";
  EXPECT_TRUE(LintContent("src/simsys/serving.cc", code).empty());
}

TEST(LintTest, WallClockScopeAndAllowlist) {
  const std::string code =
      "void F() { auto t = std::chrono::steady_clock::now(); }\n";
  // The audited readers stay clean.
  EXPECT_TRUE(LintContent("src/common/logging.cc", code).empty());
  EXPECT_TRUE(LintContent("src/lint/program.cc", code).empty());
  EXPECT_TRUE(LintContent("src/baselines/pka.cc", code).empty());
  // Outside a src/ directory component the rule does not apply: leaf
  // tools, tests, and benchmarks may time things.
  EXPECT_TRUE(LintContent("tools/gpuperf_cli.cc", code).empty());
  EXPECT_TRUE(LintContent("tests/probe_test.cc", code).empty());
  EXPECT_TRUE(LintContent("bench/exp_probe.cc", code).empty());
  // Everything else in src/ is flagged.
  const std::vector<Violation> violations =
      LintContent("src/simsys/serving.cc", code);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "wall-clock");
}

TEST(LintTest, WallClockMatchesQualifiedNowCallsOnly) {
  // A ::now() split across whitespace is still a read...
  const std::vector<Violation> spaced = LintContent(
      "src/simsys/serving.cc",
      "auto t = std::chrono::steady_clock::\n    now();\n");
  ASSERT_EQ(spaced.size(), 1u);
  EXPECT_EQ(spaced[0].rule, "wall-clock");
  EXPECT_EQ(spaced[0].line, 1);
  // ...but merely naming the clock type (aliases, time_points) is not,
  // and now-prefixed members are different names.
  EXPECT_TRUE(LintContent("src/simsys/serving.cc",
                          "using Clock = std::chrono::steady_clock;\n"
                          "Clock::time_point start;\n"
                          "auto f = steady_clock::nowish();\n")
                  .empty());
}

TEST(LintTest, MemberAccessNamedLikeClockIsNotFlagged) {
  const std::string code =
      "double t = queue.time();\n"
      "double u = sim->clock();\n";
  EXPECT_TRUE(LintContent("probe.cc", code).empty());
}

}  // namespace
}  // namespace gpuperf::lint
