#include "gpuexec/lowering_cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "gpuexec/lowering.h"
#include "gpuexec/training.h"
#include "zoo/zoo.h"

namespace gpuperf::gpuexec {
namespace {

void ExpectLaunchesEqual(const std::vector<KernelLaunch>& a,
                         const std::vector<KernelLaunch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].driver, b[i].driver);
    EXPECT_EQ(a[i].flops, b[i].flops);
    EXPECT_EQ(a[i].bytes_in, b[i].bytes_in);
    EXPECT_EQ(a[i].bytes_out, b[i].bytes_out);
    EXPECT_EQ(a[i].blocks, b[i].blocks);
    EXPECT_EQ(a[i].layer_flops, b[i].layer_flops);
    EXPECT_EQ(a[i].input_elems, b[i].input_elems);
    EXPECT_EQ(a[i].output_elems, b[i].output_elems);
  }
}

TEST(LoweringCacheTest, MatchesUncachedLowering) {
  LoweringCache cache;
  const dnn::Network net = zoo::BuildByName("resnet18");
  for (const dnn::Layer& layer : net.layers()) {
    ExpectLaunchesEqual(*cache.Lower(layer, 64, Workload::kInference),
                        LowerLayer(layer, 64));
  }
}

TEST(LoweringCacheTest, TrainingEntriesAppendBackwardKernels) {
  LoweringCache cache;
  const dnn::Network net = zoo::BuildByName("alexnet");
  for (const dnn::Layer& layer : net.layers()) {
    std::vector<KernelLaunch> expected = LowerLayer(layer, 32);
    const std::vector<KernelLaunch> backward = LowerLayerBackward(layer, 32);
    expected.insert(expected.end(), backward.begin(), backward.end());
    ExpectLaunchesEqual(*cache.Lower(layer, 32, Workload::kTraining),
                        expected);
  }
}

TEST(LoweringCacheTest, RepeatedLayersShareOneEntry) {
  LoweringCache cache;
  const dnn::Network net = zoo::BuildByName("resnet18");
  const auto first = cache.Lower(net.layers()[0], 64, Workload::kInference);
  const std::size_t size_after_first = cache.size();
  const auto second = cache.Lower(net.layers()[0], 64, Workload::kInference);
  EXPECT_EQ(first.get(), second.get());  // aliased, not copied
  EXPECT_EQ(cache.size(), size_after_first);
}

TEST(LoweringCacheTest, DistinctBatchesAndWorkloadsAreDistinctEntries) {
  LoweringCache cache;
  const dnn::Network net = zoo::BuildByName("alexnet");
  const dnn::Layer& layer = net.layers()[0];
  cache.Lower(layer, 32, Workload::kInference);
  cache.Lower(layer, 64, Workload::kInference);
  cache.Lower(layer, 32, Workload::kTraining);
  EXPECT_EQ(cache.size(), 3u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LoweringCacheTest, CachedNetworkLoweringMatchesWorkloadLowering) {
  LoweringCache cache;
  const dnn::Network net = zoo::BuildByName("vgg11");
  const auto expected =
      LowerNetworkWorkload(net, 16, Workload::kTraining);
  const auto cached =
      CachedLowerNetworkWorkload(net, 16, Workload::kTraining, &cache);
  ASSERT_EQ(cached.size(), expected.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    ExpectLaunchesEqual(*cached[i], expected[i]);
  }
}

TEST(LoweringCacheTest, ConcurrentLookupsAgree) {
  LoweringCache cache;
  const dnn::Network net = zoo::BuildByName("resnet18");
  const auto expected = LowerNetworkWorkload(net, 8, Workload::kInference);
  ThreadPool pool(4);
  pool.ParallelFor(32, [&](std::size_t) {
    const auto cached =
        CachedLowerNetworkWorkload(net, 8, Workload::kInference, &cache);
    ASSERT_EQ(cached.size(), expected.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
      ExpectLaunchesEqual(*cached[i], expected[i]);
    }
  });
}

}  // namespace
}  // namespace gpuexec
