#include "gpuexec/profiler.h"

#include <gtest/gtest.h>

#include "dnn/flops.h"
#include "gpuexec/lowering.h"
#include "zoo/zoo.h"

namespace gpuperf::gpuexec {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  HardwareOracle oracle_;
  Profiler profiler_{oracle_};
  dnn::Network net_ = zoo::BuildByName("resnet18");
  const GpuSpec& a100_ = GpuByName("A100");
};

TEST_F(ProfilerTest, TraceMatchesLowering) {
  NetworkProfile profile = profiler_.Profile(net_, a100_, 32);
  auto lowered = LowerNetwork(net_, 32);
  std::size_t launches = 0;
  for (const auto& layer : lowered) launches += layer.size();
  EXPECT_EQ(profile.kernels.size(), launches);
  // Kernel names and layer indices line up one-to-one with the lowering.
  std::size_t i = 0;
  for (std::size_t layer = 0; layer < lowered.size(); ++layer) {
    for (const KernelLaunch& launch : lowered[layer]) {
      EXPECT_EQ(profile.kernels[i].kernel_name, launch.name);
      EXPECT_EQ(profile.kernels[i].layer_index, static_cast<int>(layer));
      ++i;
    }
  }
}

TEST_F(ProfilerTest, MetadataIsFilledIn) {
  NetworkProfile profile = profiler_.Profile(net_, a100_, 16);
  EXPECT_EQ(profile.network_name, "resnet18");
  EXPECT_EQ(profile.network_family, "ResNet");
  EXPECT_EQ(profile.gpu_name, "A100");
  EXPECT_EQ(profile.batch, 16);
  EXPECT_EQ(profile.total_flops, dnn::NetworkFlops(net_, 16));
}

TEST_F(ProfilerTest, BusyTimeIsSumOfKernelTimes) {
  NetworkProfile profile = profiler_.Profile(net_, a100_, 32);
  double sum = 0;
  for (const KernelRecord& record : profile.kernels) sum += record.time_us;
  EXPECT_NEAR(profile.gpu_busy_us, sum, 1e-6 * sum);
}

TEST_F(ProfilerTest, LayerTimesSumToBusy) {
  NetworkProfile profile = profiler_.Profile(net_, a100_, 32);
  std::vector<double> layer_times =
      profile.LayerTimesUs(net_.layers().size());
  double sum = 0;
  for (double t : layer_times) sum += t;
  EXPECT_NEAR(sum, profile.gpu_busy_us, 1e-6 * sum);
}

TEST_F(ProfilerTest, E2eWithinWallJitterOfBusy) {
  // e2e = timeline end (>= busy) times a small wall factor; it can be a
  // few percent either side of busy but never wildly below it.
  NetworkProfile profile = profiler_.Profile(net_, a100_, 256);
  EXPECT_GT(profile.e2e_time_us, 0.75 * profile.gpu_busy_us);
  EXPECT_LT(profile.e2e_time_us, 1.5 * profile.gpu_busy_us);
}

TEST_F(ProfilerTest, ProfileIsDeterministic) {
  NetworkProfile a = profiler_.Profile(net_, a100_, 32);
  NetworkProfile b = profiler_.Profile(net_, a100_, 32);
  EXPECT_DOUBLE_EQ(a.e2e_time_us, b.e2e_time_us);
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.kernels[i].time_us, b.kernels[i].time_us);
  }
}

TEST_F(ProfilerTest, MeasureE2eAgreesWithProfile) {
  NetworkProfile profile = profiler_.Profile(net_, a100_, 64);
  EXPECT_DOUBLE_EQ(profiler_.MeasureE2eUs(net_, a100_, 64),
                   profile.e2e_time_us);
}

TEST_F(ProfilerTest, SmallBatchIsLaunchBound) {
  // At batch 1 the CPU issue rate dominates: e2e must clearly exceed
  // what linear scaling from a saturated batch would give (O1's
  // small-FLOPs deviation in Figure 3).
  const double at_1 = profiler_.MeasureE2eUs(net_, a100_, 1);
  const double at_256 = profiler_.MeasureE2eUs(net_, a100_, 256);
  EXPECT_GT(at_1, at_256 / 256 * 2);
}

TEST_F(ProfilerTest, MoreMeasuredBatchesReducesKernelVariance) {
  // Averaging over more batches tightens each kernel's time estimate
  // (the paper measures batches 21..50 for this reason).
  OracleConfig noisy;
  noisy.measurement_sigma = 0.2;
  HardwareOracle oracle(noisy);
  auto mean_abs_error = [&](int reps) {
    Profiler profiler(oracle, reps);
    NetworkProfile profile = profiler.Profile(net_, a100_, 64);
    auto lowered = LowerNetwork(net_, 64);
    double total = 0;
    int count = 0;
    std::size_t i = 0;
    for (const auto& layer : lowered) {
      for (const KernelLaunch& launch : layer) {
        const double expected = oracle.ExpectedKernelTimeUs(launch, a100_);
        total += std::abs(profile.kernels[i].time_us - expected) / expected;
        ++count;
        ++i;
      }
    }
    return total / count;
  };
  EXPECT_LT(mean_abs_error(100), mean_abs_error(2));
}

TEST_F(ProfilerTest, EfficiencyReportIsPositiveAndBelowOne) {
  NetworkProfile profile = profiler_.Profile(net_, a100_, 256);
  EfficiencyReport report = ComputeEfficiency(net_, profile, a100_);
  EXPECT_GT(report.bandwidth_efficiency, 0.0);
  EXPECT_LT(report.bandwidth_efficiency, 1.0);
  EXPECT_GT(report.compute_efficiency, 0.0);
  EXPECT_LT(report.compute_efficiency, 1.0);
}

TEST_F(ProfilerTest, FasterGpuRunsFaster) {
  const double on_a100 = profiler_.MeasureE2eUs(net_, a100_, 256);
  const double on_p620 =
      profiler_.MeasureE2eUs(net_, GpuByName("Quadro P620"), 256);
  EXPECT_GT(on_p620, 3 * on_a100);
}

TEST(ProfilerDeathTest, ZeroMeasuredBatchesIsError) {
  HardwareOracle oracle;
  EXPECT_DEATH(Profiler(oracle, 0), "check failed");
}

}  // namespace
}  // namespace gpuperf::gpuexec
