#!/usr/bin/env bash
# Observability smoke check: run a real serve-sim with --metrics-out and
# --trace-out, then assert both artifacts are well-formed and the
# accounting invariant holds (every arrival completed, dropped, or shed).
#
# Usage: scripts/obs_smoke.sh <path-to-gpuperf-binary>
set -euo pipefail

GPUPERF="${1:?usage: obs_smoke.sh <path-to-gpuperf-binary>}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

METRICS="$OUT/metrics.csv"
TRACE="$OUT/trace.json"

"$GPUPERF" serve-sim --duration 2 --rate 150 --queue-cap 4 --slo-ms 50 \
  --mtbf 3 --breaker-failures 2 --networks resnet18 \
  --metrics-out "$METRICS" --trace-out "$TRACE" >/dev/null

[ -s "$METRICS" ] || { echo "obs_smoke: empty metrics snapshot"; exit 1; }
[ -s "$TRACE" ] || { echo "obs_smoke: empty trace"; exit 1; }

head -1 "$METRICS" | grep -q '^metric,type,field,value$' \
  || { echo "obs_smoke: bad CSV header"; exit 1; }

for family in gpuperf_serving_simulations gpuperf_serving_jobs_arrived \
              gpuperf_serving_jobs_completed gpuperf_serving_latency_ms \
              gpuperf_threadpool_queue_depth; do
  grep -q "^$family," "$METRICS" \
    || { echo "obs_smoke: metrics snapshot is missing $family"; exit 1; }
done

# Accounting invariant: arrivals = completed + dropped + shed.
awk -F, '
  $1 == "gpuperf_serving_jobs_arrived" { arrived = $4 }
  $1 == "gpuperf_serving_jobs_completed" { completed = $4 }
  $1 == "gpuperf_serving_jobs_dropped" { dropped = $4 }
  $1 == "gpuperf_serving_jobs_shed" { shed = $4 }
  END {
    if (arrived == 0 || arrived != completed + dropped + shed) {
      printf "obs_smoke: accounting broken: %d arrived vs %d+%d+%d\n",
             arrived, completed, dropped, shed
      exit 1
    }
  }' "$METRICS"

if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json, sys
with open('$TRACE') as f:
    doc = json.load(f)
events = doc['traceEvents']
assert events, 'trace has no events'
assert doc['displayTimeUnit'] == 'ms'
assert any(e['ph'] == 'X' for e in events), 'no complete spans'
"
else
  grep -q '"traceEvents":\[' "$TRACE" \
    || { echo "obs_smoke: trace is not a trace document"; exit 1; }
fi

echo "obs_smoke: OK"
