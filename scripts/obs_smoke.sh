#!/usr/bin/env bash
# Observability smoke check: run a real serve-sim with --metrics-out,
# --trace-out, and --timeline-out, then assert the artifacts are
# well-formed, the accounting invariant holds (every arrival completed,
# dropped, or shed), the flight-recorder timeline is monotone and
# consistent with the final metrics snapshot, and timeline + trace are
# byte-identical across --jobs values.
#
# Usage: scripts/obs_smoke.sh <path-to-gpuperf-binary>
# Set OBS_SMOKE_ARTIFACT_DIR to keep the timeline CSV and Chrome trace
# (CI uploads them as workflow artifacts).
set -euo pipefail

GPUPERF="${1:?usage: obs_smoke.sh <path-to-gpuperf-binary>}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

METRICS="$OUT/metrics.csv"
TRACE="$OUT/trace.json"
TIMELINE="$OUT/timeline.csv"

"$GPUPERF" serve-sim --duration 2 --rate 150 --queue-cap 4 --slo-ms 50 \
  --mtbf 3 --breaker-failures 2 --networks resnet18 --jobs 1 \
  --metrics-out "$METRICS" --trace-out "$TRACE" \
  --timeline-out "$TIMELINE" >/dev/null

[ -s "$METRICS" ] || { echo "obs_smoke: empty metrics snapshot"; exit 1; }
[ -s "$TRACE" ] || { echo "obs_smoke: empty trace"; exit 1; }

head -1 "$METRICS" | grep -q '^metric,type,field,value$' \
  || { echo "obs_smoke: bad CSV header"; exit 1; }

for family in gpuperf_serving_simulations gpuperf_serving_jobs_arrived \
              gpuperf_serving_jobs_completed gpuperf_serving_latency_ms \
              gpuperf_threadpool_queue_depth; do
  grep -q "^$family," "$METRICS" \
    || { echo "obs_smoke: metrics snapshot is missing $family"; exit 1; }
done

# Accounting invariant: arrivals = completed + dropped + shed.
awk -F, '
  $1 == "gpuperf_serving_jobs_arrived" { arrived = $4 }
  $1 == "gpuperf_serving_jobs_completed" { completed = $4 }
  $1 == "gpuperf_serving_jobs_dropped" { dropped = $4 }
  $1 == "gpuperf_serving_jobs_shed" { shed = $4 }
  END {
    if (arrived == 0 || arrived != completed + dropped + shed) {
      printf "obs_smoke: accounting broken: %d arrived vs %d+%d+%d\n",
             arrived, completed, dropped, shed
      exit 1
    }
  }' "$METRICS"

if command -v python3 >/dev/null 2>&1; then
  python3 -c "
import json, sys
with open('$TRACE') as f:
    doc = json.load(f)
events = doc['traceEvents']
assert events, 'trace has no events'
assert doc['displayTimeUnit'] == 'ms'
assert any(e['ph'] == 'X' for e in events), 'no complete spans'
"
else
  grep -q '"traceEvents":\[' "$TRACE" \
    || { echo "obs_smoke: trace is not a trace document"; exit 1; }
fi

# --- Flight-recorder timeline ----------------------------------------------

[ -s "$TIMELINE" ] || { echo "obs_smoke: empty timeline"; exit 1; }
head -1 "$TIMELINE" | grep -q '^t_us,source,metric,kind,field,value$' \
  || { echo "obs_smoke: bad timeline header"; exit 1; }

# Sim time must be monotone within every source (cells append serially,
# each cell's windows close in ascending order).
awk -F, 'NR > 1 {
    if ($2 in last && $1 + 0 < last[$2] + 0) {
      printf "obs_smoke: timeline not monotone for %s: %s after %s\n",
             $2, $1, last[$2]
      exit 1
    }
    last[$2] = $1
  }' "$TIMELINE"

# Per-window counter deltas must sum to the counter totals — within
# each (source, metric) against its last total row, and summed across
# sources against the final registry snapshot of the same run.
awk -F, '
  FNR == 1 { next }
  NR == FNR {
    if ($4 == "counter" && $5 == "delta") deltas[$2 "," $3] += $6
    if ($4 == "counter" && $5 == "total") totals[$2 "," $3] = $6
    next
  }
  $2 == "counter" && $3 == "value" { registry[$1] = $4 }
  END {
    for (key in totals) {
      if (deltas[key] + 0 != totals[key] + 0) {
        printf "obs_smoke: deltas do not sum to total for %s: %d vs %d\n",
               key, deltas[key], totals[key]
        exit 1
      }
      split(key, parts, ",")
      grand[parts[2]] += totals[key]
      seen_metric[parts[2]] = 1
    }
    checked = 0
    for (metric in seen_metric) {
      if (metric in registry) {
        ++checked
        if (grand[metric] + 0 != registry[metric] + 0) {
          printf "obs_smoke: timeline total %d != snapshot %d for %s\n",
                 grand[metric], registry[metric], metric
          exit 1
        }
      }
    }
    if (checked == 0) {
      print "obs_smoke: no counter family shared by timeline and snapshot"
      exit 1
    }
  }' "$TIMELINE" "$METRICS"

# Determinism: the timeline and trace must be byte-identical for any
# --jobs value (per-cell recorders, merged serially in cell order).
"$GPUPERF" serve-sim --duration 2 --rate 150 --queue-cap 4 --slo-ms 50 \
  --mtbf 3 --breaker-failures 2 --networks resnet18 --jobs 7 \
  --trace-out "$OUT/trace_jobs7.json" \
  --timeline-out "$OUT/timeline_jobs7.csv" >/dev/null
cmp -s "$TIMELINE" "$OUT/timeline_jobs7.csv" \
  || { echo "obs_smoke: timeline differs between --jobs 1 and --jobs 7"; \
       exit 1; }
cmp -s "$TRACE" "$OUT/trace_jobs7.json" \
  || { echo "obs_smoke: trace differs between --jobs 1 and --jobs 7"; \
       exit 1; }

if [ -n "${OBS_SMOKE_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$OBS_SMOKE_ARTIFACT_DIR"
  cp "$TIMELINE" "$TRACE" "$OBS_SMOKE_ARTIFACT_DIR/"
fi

echo "obs_smoke: OK"
