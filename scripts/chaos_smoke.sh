#!/usr/bin/env bash
# Gray-failure resilience smoke check, both halves of the story:
#
#  1. Chaos sweep: `gpuperf chaos` runs every scenario x policy cell,
#     checks its own invariants (arrivals accounting, availability
#     floor, retry-budget bound, breaker re-close), and must produce a
#     bit-identical table for any --jobs value; the metrics + trace
#     artifacts must land.
#  2. Crash-consistent bundles: every interrupted-swap shape SaveKw()
#     can leave behind (staged sidecar, torn staging, displaced old
#     generation) must recover to exactly one committed generation —
#     bundle-check goes through LoadKwRecovering(), so a pass means the
#     bundle loaded, validated, and served canary predictions.
#
# Usage: scripts/chaos_smoke.sh <path-to-gpuperf-binary>
set -euo pipefail

GPUPERF="${1:?usage: chaos_smoke.sh <path-to-gpuperf-binary>}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# --- 1. the chaos sweep holds its invariants, deterministically -------

run_chaos() {  # run_chaos <jobs> <table-out>
  "$GPUPERF" chaos --pool "A40,TITAN RTX" --networks resnet18 \
    --batch 16 --rate 40 --duration 3 --policy least-outstanding \
    --runs 2 --jobs "$1" \
    --metrics-out "$OUT/chaos_metrics_$1.csv" \
    --trace-out "$OUT/chaos_trace_$1.json" >"$2"
}

run_chaos 1 "$OUT/chaos_jobs1.txt"
run_chaos 7 "$OUT/chaos_jobs7.txt"

grep -q 'all invariants held' "$OUT/chaos_jobs1.txt" \
  || { echo "chaos_smoke: sweep did not report its invariants held"; \
       cat "$OUT/chaos_jobs1.txt"; exit 1; }
cmp -s "$OUT/chaos_jobs1.txt" "$OUT/chaos_jobs7.txt" \
  || { echo "chaos_smoke: chaos table differs between --jobs 1 and 7"; \
       diff "$OUT/chaos_jobs1.txt" "$OUT/chaos_jobs7.txt" || true; exit 1; }
for artifact in chaos_metrics_1.csv chaos_trace_1.json; do
  [ -s "$OUT/$artifact" ] \
    || { echo "chaos_smoke: $artifact is missing or empty"; exit 1; }
done
# The resilience counters surface in the snapshot, and the gray
# scenario actually exercised hedging.
grep -q '^gpuperf_serving_hedges_issued,' "$OUT/chaos_metrics_1.csv" \
  || { echo "chaos_smoke: metrics snapshot lacks hedge counters"; exit 1; }

# An impossible availability floor must fail closed: exit 1 and a
# one-line located error naming the first violating cell.
if "$GPUPERF" chaos --pool A40 --networks resnet18 --batch 16 --rate 40 \
    --duration 3 --scenarios outage --policy least-outstanding \
    --min-avail 1 >"$OUT/violation.txt" 2>"$OUT/violation.err"; then
  echo "chaos_smoke: --min-avail 1 should have tripped the invariant"
  exit 1
fi
grep -q 'chaos invariant violated: scenario=outage' "$OUT/violation.err" \
  || { echo "chaos_smoke: violation error line missing or unlocated"; \
       cat "$OUT/violation.err"; exit 1; }

# --- 2. every interrupted bundle swap recovers to one generation ------

"$GPUPERF" dataset --out "$OUT/data" --gpus "A40,TITAN RTX" \
  --batch 16 --stride 16 >/dev/null
"$GPUPERF" train --dataset "$OUT/data" --out "$OUT/model" >/dev/null

check_recovers() {  # check_recovers <crash-shape description>
  "$GPUPERF" bundle-check --candidate "$OUT/model" \
    --networks resnet18 --gpus A40 >/dev/null \
    || { echo "chaos_smoke: recovery failed after $1"; exit 1; }
  for sidecar in "$OUT/model.saving" "$OUT/model.stale"; do
    [ ! -e "$sidecar" ] \
      || { echo "chaos_smoke: $1 left sidecar $sidecar behind"; exit 1; }
  done
  [ -f "$OUT/model/manifest.csv" ] \
    || { echo "chaos_smoke: no committed generation after $1"; exit 1; }
}

# Crash after staging, before the swap: full .saving next to the old dir.
cp -r "$OUT/model" "$OUT/model.saving"
check_recovers "a fully-staged sidecar"

# Crash mid-staging: torn manifest (its last bytes never made it).
cp -r "$OUT/model" "$OUT/model.saving"
head -c -7 "$OUT/model/manifest.csv" > "$OUT/model.saving/manifest.csv"
check_recovers "a torn staging manifest"

# Crash mid-swap: old generation displaced to .stale, staging not yet
# renamed in — the only shape with no committed dir at all.
cp -r "$OUT/model" "$OUT/model.saving"
mv "$OUT/model" "$OUT/model.stale"
check_recovers "an interrupted rename swap"

# Crash after the swap, before cleanup: committed dir plus stale copy.
cp -r "$OUT/model" "$OUT/model.stale"
check_recovers "a leftover stale generation"

echo "chaos_smoke: OK"
