#!/usr/bin/env bash
# Perf regression gate on the serving hot path: runs the
# BM_PredictManyResnet50 microbenchmark (512 queries answered by one
# compiled-plan PredictMany sweep) in a Release build and fails when the
# amortized cost exceeds 2x the checked-in baseline
# (bench/predict_many_baseline.txt).
#
# The baseline is deliberately loose — it is a regression tripwire for
# "someone put a hash lookup / allocation back into the per-query loop"
# (a >=10x slip), not a precision benchmark. Machine-to-machine noise of
# tens of percent passes; reverting the plan compilation does not.
#
# Every failure mode is a single actionable line on stderr + exit 1:
# missing bench binary, missing/corrupt baseline file, or a regression.
#
# Usage: scripts/perf_gate.sh [build_dir]
# Override the threshold (ns/query) with GPUPERF_PERF_GATE_MAX_NS.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BASELINE_FILE="bench/predict_many_baseline.txt"
BENCH="./$BUILD/bench/bench_speed_predictor"

if [ ! -f "$BASELINE_FILE" ]; then
  echo "perf_gate: FAIL — baseline file '$BASELINE_FILE' is missing;" \
       "restore it from git (it pins the ns/query reference)" >&2
  exit 1
fi
# First non-comment token; the file carries the reference ns/query.
BASELINE_NS_PER_QUERY="$(grep -v '^#' "$BASELINE_FILE" | awk 'NF {print $1; exit}')"
case "$BASELINE_NS_PER_QUERY" in
  ''|*[!0-9]*)
    echo "perf_gate: FAIL — baseline file '$BASELINE_FILE' must contain a" \
         "positive integer ns/query value, got '$BASELINE_NS_PER_QUERY'" >&2
    exit 1
    ;;
esac
MAX_NS_PER_QUERY="${GPUPERF_PERF_GATE_MAX_NS:-$((BASELINE_NS_PER_QUERY * 2))}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target bench_speed_predictor >/dev/null || true
if [ ! -x "$BENCH" ]; then
  echo "perf_gate: FAIL — Release bench binary '$BENCH' is missing;" \
       "build it with: cmake --build $BUILD --target bench_speed_predictor" >&2
  exit 1
fi

ROW="$("$BENCH" \
  --benchmark_filter='^BM_PredictManyResnet50$' \
  --benchmark_min_time=0.5 \
  --benchmark_format=csv 2>/dev/null | grep '^"BM_PredictManyResnet50"')"

# CSV columns: name,iterations,real_time,cpu_time,time_unit,
# bytes_per_second,items_per_second,... items_per_second is queries/s.
NS_PER_QUERY="$(echo "$ROW" | awk -F, '{printf "%.0f", 1e9 / $7}')"
RATIO="$(awk -v m="$NS_PER_QUERY" -v b="$BASELINE_NS_PER_QUERY" \
             'BEGIN {printf "%.2f", m / b}')"

echo "perf_gate: BM_PredictManyResnet50 ${NS_PER_QUERY} ns/query —" \
     "${RATIO}x the checked-in baseline (${BASELINE_NS_PER_QUERY} ns," \
     "max ${MAX_NS_PER_QUERY} ns)"
if [ "$NS_PER_QUERY" -gt "$MAX_NS_PER_QUERY" ]; then
  echo "perf_gate: FAIL — PredictMany at ${NS_PER_QUERY} ns/query is" \
       "${RATIO}x baseline (limit ${MAX_NS_PER_QUERY} ns)" >&2
  exit 1
fi
echo "perf_gate: OK"
