#!/usr/bin/env bash
# Perf regression gate on the serving hot path: runs the
# BM_PredictManyResnet50 microbenchmark (512 queries answered by one
# compiled-plan PredictMany sweep) in a Release build and fails when the
# amortized cost exceeds 2x the checked-in baseline.
#
# The baseline is deliberately loose — it is a regression tripwire for
# "someone put a hash lookup / allocation back into the per-query loop"
# (a >=10x slip), not a precision benchmark. Machine-to-machine noise of
# tens of percent passes; reverting the plan compilation does not.
#
# Usage: scripts/perf_gate.sh [build_dir]
# Override the threshold (ns/query) with GPUPERF_PERF_GATE_MAX_NS.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# Reference: ~366 ns/query (Release, idle 8-core container). Gate at 2x.
BASELINE_NS_PER_QUERY=400
MAX_NS_PER_QUERY="${GPUPERF_PERF_GATE_MAX_NS:-$((BASELINE_NS_PER_QUERY * 2))}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target bench_speed_predictor >/dev/null

ROW="$("./$BUILD/bench/bench_speed_predictor" \
  --benchmark_filter='^BM_PredictManyResnet50$' \
  --benchmark_min_time=0.5 \
  --benchmark_format=csv 2>/dev/null | grep '^"BM_PredictManyResnet50"')"

# CSV columns: name,iterations,real_time,cpu_time,time_unit,
# bytes_per_second,items_per_second,... items_per_second is queries/s.
NS_PER_QUERY="$(echo "$ROW" | awk -F, '{printf "%.0f", 1e9 / $7}')"

echo "perf_gate: BM_PredictManyResnet50 ${NS_PER_QUERY} ns/query" \
     "(baseline ${BASELINE_NS_PER_QUERY}, max ${MAX_NS_PER_QUERY})"
if [ "$NS_PER_QUERY" -gt "$MAX_NS_PER_QUERY" ]; then
  echo "perf_gate: FAIL — PredictMany regressed past 2x baseline" >&2
  exit 1
fi
echo "perf_gate: OK"
