#!/usr/bin/env bash
# Self-healing lifecycle smoke check: train a tiny bundle, serve it with
# a deterministic +12% drift step on one GPU, and assert the full loop
# closed — the monitor tripped, a refit candidate was promoted through
# shadow + canary, and the drifted GPU's residual collapsed, all visible
# in the parseable drift-report summary and the metrics snapshot.
#
# Usage: scripts/drift_smoke.sh <path-to-gpuperf-binary>
set -euo pipefail

GPUPERF="${1:?usage: drift_smoke.sh <path-to-gpuperf-binary>}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# A tiny two-GPU campaign at the serving batch: training and serving at
# the same batch keeps the baseline residual well below the drift
# signal, so the injected step is the only thing the monitor can trip on.
"$GPUPERF" dataset --out "$OUT/data" --gpus "A40,TITAN RTX" \
  --batch 16 --stride 16 >/dev/null
"$GPUPERF" train --dataset "$OUT/data" --out "$OUT/model" >/dev/null

REPORT="$OUT/report.txt"
"$GPUPERF" drift-report --model "$OUT/model" --pool "A40,TITAN RTX" \
  --networks resnet18,mobilenet_v2 --batch 16 --rate 120 \
  --epochs 8 --epoch-seconds 8 --drift-gpu A40 --drift-factor 1.12 \
  --metrics-out "$OUT/metrics.csv" >"$REPORT" 2>"$OUT/stderr.log"

# The drifted GPU saw the step and healed: peak residual at least the
# injected log(1.12) ~ 0.113, final epoch an order of magnitude lower.
awk '
  /^drift-report: gpu=A40 / {
    for (i = 1; i <= NF; ++i) {
      if ($i ~ /^peak=/)  { sub("peak=", "", $i);  peak = $i + 0 }
      if ($i ~ /^final=/) { sub("final=", "", $i); final = $i + 0 }
    }
    seen = 1
  }
  END {
    if (!seen) { print "drift_smoke: no drift-report line for A40"; exit 1 }
    if (peak < 0.10) {
      printf "drift_smoke: injected drift not observed: peak=%.4f\n", peak
      exit 1
    }
    if (final >= peak / 2) {
      printf "drift_smoke: residual did not heal: peak=%.4f final=%.4f\n",
             peak, final
      exit 1
    }
  }' "$REPORT"

# The lifecycle verdict: at least one refit promoted, nothing rolled back.
grep -q '^drift-report: final_state=' "$REPORT" \
  || { echo "drift_smoke: missing lifecycle summary line"; exit 1; }
grep '^drift-report: final_state=' "$REPORT" \
  | grep -q ' rollbacks=0 ' \
  || { echo "drift_smoke: lifecycle rolled back"; cat "$REPORT"; exit 1; }
grep '^drift-report: final_state=' "$REPORT" \
  | grep -Eq ' promotions=[1-9]' \
  || { echo "drift_smoke: no promotion happened"; cat "$REPORT"; exit 1; }

# Every transition is a structured log line; the promote must be there.
grep 'lifecycle transition' "$OUT/stderr.log" | grep -q 'to=promoted' \
  || { echo "drift_smoke: no to=promoted transition logged"; exit 1; }

# And the observability surface agrees with the report.
for family in gpuperf_drift_observations gpuperf_drift_trips \
              gpuperf_lifecycle_promotions; do
  grep -q "^$family," "$OUT/metrics.csv" \
    || { echo "drift_smoke: metrics snapshot is missing $family"; exit 1; }
done
awk -F, '
  $1 == "gpuperf_drift_trips" && $4 + 0 == 0 {
    print "drift_smoke: gpuperf_drift_trips is zero"; bad = 1
  }
  $1 == "gpuperf_lifecycle_promotions" && $4 + 0 == 0 {
    print "drift_smoke: gpuperf_lifecycle_promotions is zero"; bad = 1
  }
  END { exit bad }' "$OUT/metrics.csv"

echo "drift_smoke: OK"
