#!/usr/bin/env bash
# Full verification: regular build + tests, then the concurrency tests
# under ThreadSanitizer (GPUPERF_SANITIZE=thread).
#
# Usage: scripts/verify.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier 1: build + full test suite =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

echo "== tier 2: concurrency tests under ThreadSanitizer =="
TSAN_BUILD="${BUILD}-tsan"
cmake -B "$TSAN_BUILD" -S . -DGPUPERF_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j --target \
  thread_pool_test parallel_build_test lowering_cache_test
"./$TSAN_BUILD/tests/thread_pool_test"
"./$TSAN_BUILD/tests/parallel_build_test"
"./$TSAN_BUILD/tests/lowering_cache_test"

echo "verify: OK"
