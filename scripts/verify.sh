#!/usr/bin/env bash
# Full verification: regular build + tests, then the concurrency tests
# under ThreadSanitizer (GPUPERF_SANITIZE=thread), then the robustness
# tests under ASan+UBSan (GPUPERF_SANITIZE=address).
#
# Usage: scripts/verify.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier 1: build + full test suite =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

echo "== tier 2: concurrency tests under ThreadSanitizer =="
TSAN_BUILD="${BUILD}-tsan"
cmake -B "$TSAN_BUILD" -S . -DGPUPERF_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j --target \
  thread_pool_test parallel_build_test lowering_cache_test
"./$TSAN_BUILD/tests/thread_pool_test"
"./$TSAN_BUILD/tests/parallel_build_test"
"./$TSAN_BUILD/tests/lowering_cache_test"

echo "== tier 3: robustness tests under ASan+UBSan =="
# The error-path tests exercise corrupt bundles, malformed CSVs, and
# fault-injected serving — exactly where a stray read or overflow would
# hide. Death tests fork, which ASan tolerates but LeakSanitizer does
# not always; keep leak detection on for everything else.
ASAN_BUILD="${BUILD}-asan"
cmake -B "$ASAN_BUILD" -S . -DGPUPERF_SANITIZE=address
cmake --build "$ASAN_BUILD" -j --target \
  status_test csv_test model_io_test fault_injection_test \
  predictor_stack_test serving_test
"./$ASAN_BUILD/tests/status_test"
"./$ASAN_BUILD/tests/csv_test"
"./$ASAN_BUILD/tests/model_io_test"
"./$ASAN_BUILD/tests/fault_injection_test"
"./$ASAN_BUILD/tests/predictor_stack_test"
"./$ASAN_BUILD/tests/serving_test"

echo "verify: OK"
