#!/usr/bin/env bash
# Full verification, cheapest gate first:
#
#   tier 0  gpuperf_lint project invariants, then clang-tidy and
#           clang-format when installed (both skip cleanly otherwise)
#   tier 1  build with -Werror (GPUPERF_WERROR=ON) + full test suite
#   tier 2  concurrency tests under ThreadSanitizer
#   tier 3  robustness tests under ASan+UBSan
#
# Usage: scripts/verify.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier 0: lint + static analysis =="
# GPUPERF_WERROR promotes -Wall -Wextra -Wshadow (and, under Clang,
# -Wthread-safety) to errors; compile_commands.json feeds clang-tidy.
cmake -B "$BUILD" -S . -DGPUPERF_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD" -j --target gpuperf_lint
# Whole tree (tests and bench included), all whole-program passes, the
# checked-in debt baseline (which may only shrink), and per-pass timing
# so the <1s whole-tree budget stays visible. The known-bad fixture
# corpus is excluded — it exists to be lint-dirty.
"./$BUILD/tools/gpuperf_lint" \
  --exclude=lint_fixtures \
  --baseline=src/lint/lint_baseline.txt \
  --timings \
  src tools tests bench

if command -v clang-tidy >/dev/null 2>&1; then
  # Every first-party translation unit in the compilation database;
  # checks and per-check severity live in .clang-tidy.
  mapfile -t TIDY_SOURCES < <(find src tools -name '*.cc' | sort)
  clang-tidy -p "$BUILD" --quiet "${TIDY_SOURCES[@]}"
else
  echo "clang-tidy: skipped (not installed)"
fi

if command -v clang-format >/dev/null 2>&1; then
  find src tools tests bench examples \
      \( -name '*.cc' -o -name '*.h' \) -not -path 'tests/lint_fixtures/*' \
    | sort | xargs clang-format --dry-run -Werror
else
  echo "clang-format: skipped (not installed)"
fi

echo "== tier 1: build + full test suite =="
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")
# Observability artifacts end to end: serve-sim writes a metrics
# snapshot + Chrome trace, and the accounting invariant holds.
scripts/obs_smoke.sh "./$BUILD/tools/gpuperf"
# The serving hot path stays fast: PredictMany must hold 2x of the
# checked-in ns/query baseline (catches reintroduced per-query lookups).
scripts/perf_gate.sh "$BUILD"
# The self-healing lifecycle end to end: injected drift must trip the
# monitor, refit, promote through shadow + canary, and heal the residual.
scripts/drift_smoke.sh "./$BUILD/tools/gpuperf"
# Gray-failure resilience end to end: the chaos sweep holds its
# invariants bit-identically across --jobs, and every interrupted
# bundle-swap shape recovers to exactly one generation.
scripts/chaos_smoke.sh "./$BUILD/tools/gpuperf"

echo "== tier 2: concurrency tests under ThreadSanitizer =="
TSAN_BUILD="${BUILD}-tsan"
cmake -B "$TSAN_BUILD" -S . -DGPUPERF_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j --target \
  thread_pool_test parallel_build_test lowering_cache_test \
  bundle_registry_test metrics_registry_test span_tracer_test \
  prediction_plan_test drift_monitor_test refit_test self_healing_test \
  serving_test fault_injection_test
"./$TSAN_BUILD/tests/thread_pool_test"
"./$TSAN_BUILD/tests/parallel_build_test"
"./$TSAN_BUILD/tests/lowering_cache_test"
# Generation hot-swap under concurrent predicting readers.
"./$TSAN_BUILD/tests/bundle_registry_test"
# Registry hot path under concurrent writers + live snapshots.
"./$TSAN_BUILD/tests/metrics_registry_test"
# Parallel grid tracing merged into one deterministic trace.
"./$TSAN_BUILD/tests/span_tracer_test"
# Concurrent PredictMany sweeps racing through plan-cache compiles.
"./$TSAN_BUILD/tests/prediction_plan_test"
# The drift/refit/promotion lifecycle over the hot-swapping registry:
# the e2e heal must be data-race-free alongside concurrent readers.
"./$TSAN_BUILD/tests/drift_monitor_test"
"./$TSAN_BUILD/tests/refit_test"
"./$TSAN_BUILD/tests/self_healing_test"
# Chaos plans + hedged dispatch across the parallel serving grid: the
# hedge/retry/breaker paths must be data-race-free at any --jobs.
"./$TSAN_BUILD/tests/serving_test"
"./$TSAN_BUILD/tests/fault_injection_test"

echo "== tier 3: robustness tests under ASan+UBSan =="
# The error-path tests exercise corrupt bundles, malformed CSVs, and
# fault-injected serving — exactly where a stray read or overflow would
# hide. Death tests fork, which ASan tolerates but LeakSanitizer does
# not always; keep leak detection on for everything else.
ASAN_BUILD="${BUILD}-asan"
cmake -B "$ASAN_BUILD" -S . -DGPUPERF_SANITIZE=address
cmake --build "$ASAN_BUILD" -j --target \
  status_test csv_test model_io_test fault_injection_test \
  predictor_stack_test serving_test circuit_breaker_test \
  bundle_registry_test cli_test
"./$ASAN_BUILD/tests/status_test"
"./$ASAN_BUILD/tests/csv_test"
"./$ASAN_BUILD/tests/model_io_test"
"./$ASAN_BUILD/tests/fault_injection_test"
"./$ASAN_BUILD/tests/predictor_stack_test"
"./$ASAN_BUILD/tests/serving_test"
"./$ASAN_BUILD/tests/circuit_breaker_test"
"./$ASAN_BUILD/tests/bundle_registry_test"
"./$ASAN_BUILD/tests/cli_test"

echo "verify: OK"
