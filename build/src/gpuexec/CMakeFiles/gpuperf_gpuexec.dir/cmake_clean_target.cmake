file(REMOVE_RECURSE
  "libgpuperf_gpuexec.a"
)
