file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_gpuexec.dir/gpu_spec.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/gpu_spec.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/kernel.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/kernel.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/lowering.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/lowering.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/oracle.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/oracle.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/profiler.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/profiler.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/roofline.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/roofline.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/trace_export.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/trace_export.cc.o.d"
  "CMakeFiles/gpuperf_gpuexec.dir/training.cc.o"
  "CMakeFiles/gpuperf_gpuexec.dir/training.cc.o.d"
  "libgpuperf_gpuexec.a"
  "libgpuperf_gpuexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_gpuexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
