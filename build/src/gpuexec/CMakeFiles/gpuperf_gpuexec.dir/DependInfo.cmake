
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpuexec/gpu_spec.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/gpu_spec.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/gpu_spec.cc.o.d"
  "/root/repo/src/gpuexec/kernel.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/kernel.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/kernel.cc.o.d"
  "/root/repo/src/gpuexec/lowering.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/lowering.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/lowering.cc.o.d"
  "/root/repo/src/gpuexec/oracle.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/oracle.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/oracle.cc.o.d"
  "/root/repo/src/gpuexec/profiler.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/profiler.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/profiler.cc.o.d"
  "/root/repo/src/gpuexec/roofline.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/roofline.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/roofline.cc.o.d"
  "/root/repo/src/gpuexec/trace_export.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/trace_export.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/trace_export.cc.o.d"
  "/root/repo/src/gpuexec/training.cc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/training.cc.o" "gcc" "src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/gpuperf_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
