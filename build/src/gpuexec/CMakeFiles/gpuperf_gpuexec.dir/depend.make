# Empty dependencies file for gpuperf_gpuexec.
# This may be replaced when dependencies are built.
