
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/builder.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/builder.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/builder.cc.o.d"
  "/root/repo/src/dnn/flops.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/flops.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/flops.cc.o.d"
  "/root/repo/src/dnn/fusion.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/fusion.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/fusion.cc.o.d"
  "/root/repo/src/dnn/layer.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/layer.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/layer.cc.o.d"
  "/root/repo/src/dnn/memory.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/memory.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/memory.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/network.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/network.cc.o.d"
  "/root/repo/src/dnn/tensor_shape.cc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/tensor_shape.cc.o" "gcc" "src/dnn/CMakeFiles/gpuperf_dnn.dir/tensor_shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
