file(REMOVE_RECURSE
  "libgpuperf_dnn.a"
)
