# Empty dependencies file for gpuperf_dnn.
# This may be replaced when dependencies are built.
