file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_dnn.dir/builder.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/builder.cc.o.d"
  "CMakeFiles/gpuperf_dnn.dir/flops.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/flops.cc.o.d"
  "CMakeFiles/gpuperf_dnn.dir/fusion.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/fusion.cc.o.d"
  "CMakeFiles/gpuperf_dnn.dir/layer.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/layer.cc.o.d"
  "CMakeFiles/gpuperf_dnn.dir/memory.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/memory.cc.o.d"
  "CMakeFiles/gpuperf_dnn.dir/network.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/network.cc.o.d"
  "CMakeFiles/gpuperf_dnn.dir/tensor_shape.cc.o"
  "CMakeFiles/gpuperf_dnn.dir/tensor_shape.cc.o.d"
  "libgpuperf_dnn.a"
  "libgpuperf_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
