file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_sched.dir/scheduler.cc.o"
  "CMakeFiles/gpuperf_sched.dir/scheduler.cc.o.d"
  "libgpuperf_sched.a"
  "libgpuperf_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
