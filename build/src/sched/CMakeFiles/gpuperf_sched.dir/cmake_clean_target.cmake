file(REMOVE_RECURSE
  "libgpuperf_sched.a"
)
