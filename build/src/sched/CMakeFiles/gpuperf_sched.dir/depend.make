# Empty dependencies file for gpuperf_sched.
# This may be replaced when dependencies are built.
