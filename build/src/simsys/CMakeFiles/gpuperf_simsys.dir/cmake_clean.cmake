file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_simsys.dir/data_parallel.cc.o"
  "CMakeFiles/gpuperf_simsys.dir/data_parallel.cc.o.d"
  "CMakeFiles/gpuperf_simsys.dir/disagg.cc.o"
  "CMakeFiles/gpuperf_simsys.dir/disagg.cc.o.d"
  "CMakeFiles/gpuperf_simsys.dir/event_queue.cc.o"
  "CMakeFiles/gpuperf_simsys.dir/event_queue.cc.o.d"
  "CMakeFiles/gpuperf_simsys.dir/link.cc.o"
  "CMakeFiles/gpuperf_simsys.dir/link.cc.o.d"
  "CMakeFiles/gpuperf_simsys.dir/pipeline_parallel.cc.o"
  "CMakeFiles/gpuperf_simsys.dir/pipeline_parallel.cc.o.d"
  "CMakeFiles/gpuperf_simsys.dir/serving.cc.o"
  "CMakeFiles/gpuperf_simsys.dir/serving.cc.o.d"
  "libgpuperf_simsys.a"
  "libgpuperf_simsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_simsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
