
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simsys/data_parallel.cc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/data_parallel.cc.o" "gcc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/data_parallel.cc.o.d"
  "/root/repo/src/simsys/disagg.cc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/disagg.cc.o" "gcc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/disagg.cc.o.d"
  "/root/repo/src/simsys/event_queue.cc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/event_queue.cc.o" "gcc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/event_queue.cc.o.d"
  "/root/repo/src/simsys/link.cc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/link.cc.o" "gcc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/link.cc.o.d"
  "/root/repo/src/simsys/pipeline_parallel.cc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/pipeline_parallel.cc.o" "gcc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/pipeline_parallel.cc.o.d"
  "/root/repo/src/simsys/serving.cc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/serving.cc.o" "gcc" "src/simsys/CMakeFiles/gpuperf_simsys.dir/serving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/gpuperf_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
