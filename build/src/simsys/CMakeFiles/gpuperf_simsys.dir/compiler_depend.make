# Empty compiler generated dependencies file for gpuperf_simsys.
# This may be replaced when dependencies are built.
