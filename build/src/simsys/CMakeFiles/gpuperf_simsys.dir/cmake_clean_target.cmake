file(REMOVE_RECURSE
  "libgpuperf_simsys.a"
)
