file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_common.dir/ascii_plot.cc.o"
  "CMakeFiles/gpuperf_common.dir/ascii_plot.cc.o.d"
  "CMakeFiles/gpuperf_common.dir/csv.cc.o"
  "CMakeFiles/gpuperf_common.dir/csv.cc.o.d"
  "CMakeFiles/gpuperf_common.dir/logging.cc.o"
  "CMakeFiles/gpuperf_common.dir/logging.cc.o.d"
  "CMakeFiles/gpuperf_common.dir/random.cc.o"
  "CMakeFiles/gpuperf_common.dir/random.cc.o.d"
  "CMakeFiles/gpuperf_common.dir/stats.cc.o"
  "CMakeFiles/gpuperf_common.dir/stats.cc.o.d"
  "CMakeFiles/gpuperf_common.dir/string_util.cc.o"
  "CMakeFiles/gpuperf_common.dir/string_util.cc.o.d"
  "CMakeFiles/gpuperf_common.dir/table.cc.o"
  "CMakeFiles/gpuperf_common.dir/table.cc.o.d"
  "libgpuperf_common.a"
  "libgpuperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
