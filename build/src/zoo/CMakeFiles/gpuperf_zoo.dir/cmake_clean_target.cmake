file(REMOVE_RECURSE
  "libgpuperf_zoo.a"
)
