# Empty compiler generated dependencies file for gpuperf_zoo.
# This may be replaced when dependencies are built.
