file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_zoo.dir/classic.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/classic.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/densenet.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/densenet.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/mobilenet.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/mobilenet.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/resnet.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/resnet.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/shufflenet.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/shufflenet.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/transformer.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/transformer.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/vgg.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/vgg.cc.o.d"
  "CMakeFiles/gpuperf_zoo.dir/zoo.cc.o"
  "CMakeFiles/gpuperf_zoo.dir/zoo.cc.o.d"
  "libgpuperf_zoo.a"
  "libgpuperf_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
