
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zoo/classic.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/classic.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/classic.cc.o.d"
  "/root/repo/src/zoo/densenet.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/densenet.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/densenet.cc.o.d"
  "/root/repo/src/zoo/mobilenet.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/mobilenet.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/mobilenet.cc.o.d"
  "/root/repo/src/zoo/resnet.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/resnet.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/resnet.cc.o.d"
  "/root/repo/src/zoo/shufflenet.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/shufflenet.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/shufflenet.cc.o.d"
  "/root/repo/src/zoo/transformer.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/transformer.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/transformer.cc.o.d"
  "/root/repo/src/zoo/vgg.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/vgg.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/vgg.cc.o.d"
  "/root/repo/src/zoo/zoo.cc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/zoo.cc.o" "gcc" "src/zoo/CMakeFiles/gpuperf_zoo.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/gpuperf_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
