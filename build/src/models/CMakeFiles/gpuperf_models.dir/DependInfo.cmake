
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/cpu_aware_model.cc" "src/models/CMakeFiles/gpuperf_models.dir/cpu_aware_model.cc.o" "gcc" "src/models/CMakeFiles/gpuperf_models.dir/cpu_aware_model.cc.o.d"
  "/root/repo/src/models/e2e_model.cc" "src/models/CMakeFiles/gpuperf_models.dir/e2e_model.cc.o" "gcc" "src/models/CMakeFiles/gpuperf_models.dir/e2e_model.cc.o.d"
  "/root/repo/src/models/igkw_model.cc" "src/models/CMakeFiles/gpuperf_models.dir/igkw_model.cc.o" "gcc" "src/models/CMakeFiles/gpuperf_models.dir/igkw_model.cc.o.d"
  "/root/repo/src/models/kw_model.cc" "src/models/CMakeFiles/gpuperf_models.dir/kw_model.cc.o" "gcc" "src/models/CMakeFiles/gpuperf_models.dir/kw_model.cc.o.d"
  "/root/repo/src/models/lw_model.cc" "src/models/CMakeFiles/gpuperf_models.dir/lw_model.cc.o" "gcc" "src/models/CMakeFiles/gpuperf_models.dir/lw_model.cc.o.d"
  "/root/repo/src/models/model_io.cc" "src/models/CMakeFiles/gpuperf_models.dir/model_io.cc.o" "gcc" "src/models/CMakeFiles/gpuperf_models.dir/model_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/gpuperf_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/gpuperf_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/DependInfo.cmake"
  "/root/repo/build/src/zoo/CMakeFiles/gpuperf_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/gpuperf_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
