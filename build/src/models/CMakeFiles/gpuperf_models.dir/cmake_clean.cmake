file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_models.dir/cpu_aware_model.cc.o"
  "CMakeFiles/gpuperf_models.dir/cpu_aware_model.cc.o.d"
  "CMakeFiles/gpuperf_models.dir/e2e_model.cc.o"
  "CMakeFiles/gpuperf_models.dir/e2e_model.cc.o.d"
  "CMakeFiles/gpuperf_models.dir/igkw_model.cc.o"
  "CMakeFiles/gpuperf_models.dir/igkw_model.cc.o.d"
  "CMakeFiles/gpuperf_models.dir/kw_model.cc.o"
  "CMakeFiles/gpuperf_models.dir/kw_model.cc.o.d"
  "CMakeFiles/gpuperf_models.dir/lw_model.cc.o"
  "CMakeFiles/gpuperf_models.dir/lw_model.cc.o.d"
  "CMakeFiles/gpuperf_models.dir/model_io.cc.o"
  "CMakeFiles/gpuperf_models.dir/model_io.cc.o.d"
  "libgpuperf_models.a"
  "libgpuperf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
