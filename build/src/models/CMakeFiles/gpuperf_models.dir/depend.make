# Empty dependencies file for gpuperf_models.
# This may be replaced when dependencies are built.
