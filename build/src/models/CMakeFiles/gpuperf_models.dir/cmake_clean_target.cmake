file(REMOVE_RECURSE
  "libgpuperf_models.a"
)
