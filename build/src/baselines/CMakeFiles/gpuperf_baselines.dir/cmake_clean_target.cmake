file(REMOVE_RECURSE
  "libgpuperf_baselines.a"
)
