# Empty dependencies file for gpuperf_baselines.
# This may be replaced when dependencies are built.
