file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_baselines.dir/detailed_sim.cc.o"
  "CMakeFiles/gpuperf_baselines.dir/detailed_sim.cc.o.d"
  "CMakeFiles/gpuperf_baselines.dir/pka.cc.o"
  "CMakeFiles/gpuperf_baselines.dir/pka.cc.o.d"
  "libgpuperf_baselines.a"
  "libgpuperf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
