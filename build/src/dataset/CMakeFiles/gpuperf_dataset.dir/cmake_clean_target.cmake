file(REMOVE_RECURSE
  "libgpuperf_dataset.a"
)
