# Empty dependencies file for gpuperf_dataset.
# This may be replaced when dependencies are built.
