
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/builder.cc" "src/dataset/CMakeFiles/gpuperf_dataset.dir/builder.cc.o" "gcc" "src/dataset/CMakeFiles/gpuperf_dataset.dir/builder.cc.o.d"
  "/root/repo/src/dataset/dataset.cc" "src/dataset/CMakeFiles/gpuperf_dataset.dir/dataset.cc.o" "gcc" "src/dataset/CMakeFiles/gpuperf_dataset.dir/dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/DependInfo.cmake"
  "/root/repo/build/src/zoo/CMakeFiles/gpuperf_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/gpuperf_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
