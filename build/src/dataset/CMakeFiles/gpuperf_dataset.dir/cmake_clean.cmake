file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_dataset.dir/builder.cc.o"
  "CMakeFiles/gpuperf_dataset.dir/builder.cc.o.d"
  "CMakeFiles/gpuperf_dataset.dir/dataset.cc.o"
  "CMakeFiles/gpuperf_dataset.dir/dataset.cc.o.d"
  "libgpuperf_dataset.a"
  "libgpuperf_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
