file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_regression.dir/linreg.cc.o"
  "CMakeFiles/gpuperf_regression.dir/linreg.cc.o.d"
  "libgpuperf_regression.a"
  "libgpuperf_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
