# Empty compiler generated dependencies file for gpuperf_regression.
# This may be replaced when dependencies are built.
