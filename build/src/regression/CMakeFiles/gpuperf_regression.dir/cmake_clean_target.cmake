file(REMOVE_RECURSE
  "libgpuperf_regression.a"
)
