# Empty compiler generated dependencies file for lowering_sweep_test.
# This may be replaced when dependencies are built.
