file(REMOVE_RECURSE
  "CMakeFiles/lowering_sweep_test.dir/lowering_sweep_test.cc.o"
  "CMakeFiles/lowering_sweep_test.dir/lowering_sweep_test.cc.o.d"
  "lowering_sweep_test"
  "lowering_sweep_test.pdb"
  "lowering_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowering_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
