file(REMOVE_RECURSE
  "CMakeFiles/linreg_test.dir/linreg_test.cc.o"
  "CMakeFiles/linreg_test.dir/linreg_test.cc.o.d"
  "linreg_test"
  "linreg_test.pdb"
  "linreg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
