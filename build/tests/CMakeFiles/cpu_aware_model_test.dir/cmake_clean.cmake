file(REMOVE_RECURSE
  "CMakeFiles/cpu_aware_model_test.dir/cpu_aware_model_test.cc.o"
  "CMakeFiles/cpu_aware_model_test.dir/cpu_aware_model_test.cc.o.d"
  "cpu_aware_model_test"
  "cpu_aware_model_test.pdb"
  "cpu_aware_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_aware_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
