# Empty dependencies file for zoo_structure_test.
# This may be replaced when dependencies are built.
