file(REMOVE_RECURSE
  "CMakeFiles/zoo_structure_test.dir/zoo_structure_test.cc.o"
  "CMakeFiles/zoo_structure_test.dir/zoo_structure_test.cc.o.d"
  "zoo_structure_test"
  "zoo_structure_test.pdb"
  "zoo_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
