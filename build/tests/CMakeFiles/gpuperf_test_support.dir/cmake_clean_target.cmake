file(REMOVE_RECURSE
  "libgpuperf_test_support.a"
)
