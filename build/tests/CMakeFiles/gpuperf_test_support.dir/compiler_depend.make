# Empty compiler generated dependencies file for gpuperf_test_support.
# This may be replaced when dependencies are built.
