file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_test_support.dir/test_support.cc.o"
  "CMakeFiles/gpuperf_test_support.dir/test_support.cc.o.d"
  "libgpuperf_test_support.a"
  "libgpuperf_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
