
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/e2e_model_test.cc" "tests/CMakeFiles/e2e_model_test.dir/e2e_model_test.cc.o" "gcc" "tests/CMakeFiles/e2e_model_test.dir/e2e_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/gpuperf_test_support.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gpuperf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/gpuperf_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/zoo/CMakeFiles/gpuperf_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/gpuperf_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/simsys/CMakeFiles/gpuperf_simsys.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gpuperf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpuperf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuexec/CMakeFiles/gpuperf_gpuexec.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/gpuperf_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
