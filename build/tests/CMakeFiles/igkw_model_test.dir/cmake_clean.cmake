file(REMOVE_RECURSE
  "CMakeFiles/igkw_model_test.dir/igkw_model_test.cc.o"
  "CMakeFiles/igkw_model_test.dir/igkw_model_test.cc.o.d"
  "igkw_model_test"
  "igkw_model_test.pdb"
  "igkw_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igkw_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
