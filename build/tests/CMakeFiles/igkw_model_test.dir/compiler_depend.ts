# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for igkw_model_test.
