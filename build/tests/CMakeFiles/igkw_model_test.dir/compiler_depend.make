# Empty compiler generated dependencies file for igkw_model_test.
# This may be replaced when dependencies are built.
