file(REMOVE_RECURSE
  "CMakeFiles/kw_model_test.dir/kw_model_test.cc.o"
  "CMakeFiles/kw_model_test.dir/kw_model_test.cc.o.d"
  "kw_model_test"
  "kw_model_test.pdb"
  "kw_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kw_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
