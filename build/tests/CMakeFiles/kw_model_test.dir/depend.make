# Empty dependencies file for kw_model_test.
# This may be replaced when dependencies are built.
