file(REMOVE_RECURSE
  "CMakeFiles/oracle_sweep_test.dir/oracle_sweep_test.cc.o"
  "CMakeFiles/oracle_sweep_test.dir/oracle_sweep_test.cc.o.d"
  "oracle_sweep_test"
  "oracle_sweep_test.pdb"
  "oracle_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
