# Empty compiler generated dependencies file for disagg_test.
# This may be replaced when dependencies are built.
