file(REMOVE_RECURSE
  "CMakeFiles/disagg_test.dir/disagg_test.cc.o"
  "CMakeFiles/disagg_test.dir/disagg_test.cc.o.d"
  "disagg_test"
  "disagg_test.pdb"
  "disagg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disagg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
