file(REMOVE_RECURSE
  "CMakeFiles/lw_model_test.dir/lw_model_test.cc.o"
  "CMakeFiles/lw_model_test.dir/lw_model_test.cc.o.d"
  "lw_model_test"
  "lw_model_test.pdb"
  "lw_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
