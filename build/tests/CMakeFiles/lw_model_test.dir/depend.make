# Empty dependencies file for lw_model_test.
# This may be replaced when dependencies are built.
