file(REMOVE_RECURSE
  "CMakeFiles/gpuperf.dir/gpuperf_cli.cc.o"
  "CMakeFiles/gpuperf.dir/gpuperf_cli.cc.o.d"
  "gpuperf"
  "gpuperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
