# Empty compiler generated dependencies file for gpuperf.
# This may be replaced when dependencies are built.
