file(REMOVE_RECURSE
  "CMakeFiles/training_study.dir/training_study.cpp.o"
  "CMakeFiles/training_study.dir/training_study.cpp.o.d"
  "training_study"
  "training_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
