# Empty compiler generated dependencies file for bandwidth_dse.
# This may be replaced when dependencies are built.
