file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_dse.dir/bandwidth_dse.cpp.o"
  "CMakeFiles/bandwidth_dse.dir/bandwidth_dse.cpp.o.d"
  "bandwidth_dse"
  "bandwidth_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
