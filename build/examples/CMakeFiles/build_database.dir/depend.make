# Empty dependencies file for build_database.
# This may be replaced when dependencies are built.
