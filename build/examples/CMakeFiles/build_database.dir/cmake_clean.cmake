file(REMOVE_RECURSE
  "CMakeFiles/build_database.dir/build_database.cpp.o"
  "CMakeFiles/build_database.dir/build_database.cpp.o.d"
  "build_database"
  "build_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
