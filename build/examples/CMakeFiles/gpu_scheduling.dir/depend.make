# Empty dependencies file for gpu_scheduling.
# This may be replaced when dependencies are built.
