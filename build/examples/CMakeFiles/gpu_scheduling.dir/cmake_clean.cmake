file(REMOVE_RECURSE
  "CMakeFiles/gpu_scheduling.dir/gpu_scheduling.cpp.o"
  "CMakeFiles/gpu_scheduling.dir/gpu_scheduling.cpp.o.d"
  "gpu_scheduling"
  "gpu_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
