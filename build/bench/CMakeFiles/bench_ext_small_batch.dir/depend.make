# Empty dependencies file for bench_ext_small_batch.
# This may be replaced when dependencies are built.
