file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_small_batch.dir/bench_ext_small_batch.cc.o"
  "CMakeFiles/bench_ext_small_batch.dir/bench_ext_small_batch.cc.o.d"
  "bench_ext_small_batch"
  "bench_ext_small_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_small_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
