file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mig.dir/bench_ext_mig.cc.o"
  "CMakeFiles/bench_ext_mig.dir/bench_ext_mig.cc.o.d"
  "bench_ext_mig"
  "bench_ext_mig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
