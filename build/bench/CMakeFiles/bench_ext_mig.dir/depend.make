# Empty dependencies file for bench_ext_mig.
# This may be replaced when dependencies are built.
