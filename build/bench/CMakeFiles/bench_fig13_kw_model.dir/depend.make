# Empty dependencies file for bench_fig13_kw_model.
# This may be replaced when dependencies are built.
