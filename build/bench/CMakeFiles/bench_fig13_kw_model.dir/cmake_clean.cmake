file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_kw_model.dir/bench_fig13_kw_model.cc.o"
  "CMakeFiles/bench_fig13_kw_model.dir/bench_fig13_kw_model.cc.o.d"
  "bench_fig13_kw_model"
  "bench_fig13_kw_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kw_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
