file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_gpu_choice.dir/bench_fig18_gpu_choice.cc.o"
  "CMakeFiles/bench_fig18_gpu_choice.dir/bench_fig18_gpu_choice.cc.o.d"
  "bench_fig18_gpu_choice"
  "bench_fig18_gpu_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_gpu_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
