# Empty dependencies file for bench_fig18_gpu_choice.
# This may be replaced when dependencies are built.
