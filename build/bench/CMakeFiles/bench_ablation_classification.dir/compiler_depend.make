# Empty compiler generated dependencies file for bench_ablation_classification.
# This may be replaced when dependencies are built.
