file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_classification.dir/bench_ablation_classification.cc.o"
  "CMakeFiles/bench_ablation_classification.dir/bench_ablation_classification.cc.o.d"
  "bench_ablation_classification"
  "bench_ablation_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
