file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_e2e_flops.dir/bench_fig03_e2e_flops.cc.o"
  "CMakeFiles/bench_fig03_e2e_flops.dir/bench_fig03_e2e_flops.cc.o.d"
  "bench_fig03_e2e_flops"
  "bench_fig03_e2e_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_e2e_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
