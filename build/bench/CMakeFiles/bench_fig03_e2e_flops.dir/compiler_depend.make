# Empty compiler generated dependencies file for bench_fig03_e2e_flops.
# This may be replaced when dependencies are built.
