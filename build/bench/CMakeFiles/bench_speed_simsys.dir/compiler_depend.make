# Empty compiler generated dependencies file for bench_speed_simsys.
# This may be replaced when dependencies are built.
