file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_simsys.dir/bench_speed_simsys.cc.o"
  "CMakeFiles/bench_speed_simsys.dir/bench_speed_simsys.cc.o.d"
  "bench_speed_simsys"
  "bench_speed_simsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_simsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
