file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_batch_linear.dir/bench_fig05_batch_linear.cc.o"
  "CMakeFiles/bench_fig05_batch_linear.dir/bench_fig05_batch_linear.cc.o.d"
  "bench_fig05_batch_linear"
  "bench_fig05_batch_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_batch_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
