# Empty compiler generated dependencies file for bench_fig05_batch_linear.
# This may be replaced when dependencies are built.
