# Empty compiler generated dependencies file for bench_fig17_disagg.
# This may be replaced when dependencies are built.
