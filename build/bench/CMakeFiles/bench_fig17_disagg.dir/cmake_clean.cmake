file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_disagg.dir/bench_fig17_disagg.cc.o"
  "CMakeFiles/bench_fig17_disagg.dir/bench_fig17_disagg.cc.o.d"
  "bench_fig17_disagg"
  "bench_fig17_disagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_disagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
