file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gpus.dir/bench_table1_gpus.cc.o"
  "CMakeFiles/bench_table1_gpus.dir/bench_table1_gpus.cc.o.d"
  "bench_table1_gpus"
  "bench_table1_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
