# Empty dependencies file for bench_table2_pka.
# This may be replaced when dependencies are built.
