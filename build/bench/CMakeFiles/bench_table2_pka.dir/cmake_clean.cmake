file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pka.dir/bench_table2_pka.cc.o"
  "CMakeFiles/bench_table2_pka.dir/bench_table2_pka.cc.o.d"
  "bench_table2_pka"
  "bench_table2_pka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
