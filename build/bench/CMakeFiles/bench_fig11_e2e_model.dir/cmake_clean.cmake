file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_e2e_model.dir/bench_fig11_e2e_model.cc.o"
  "CMakeFiles/bench_fig11_e2e_model.dir/bench_fig11_e2e_model.cc.o.d"
  "bench_fig11_e2e_model"
  "bench_fig11_e2e_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_e2e_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
