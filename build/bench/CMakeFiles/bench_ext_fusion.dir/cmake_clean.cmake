file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fusion.dir/bench_ext_fusion.cc.o"
  "CMakeFiles/bench_ext_fusion.dir/bench_ext_fusion.cc.o.d"
  "bench_ext_fusion"
  "bench_ext_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
