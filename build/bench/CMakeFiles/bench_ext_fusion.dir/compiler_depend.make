# Empty compiler generated dependencies file for bench_ext_fusion.
# This may be replaced when dependencies are built.
