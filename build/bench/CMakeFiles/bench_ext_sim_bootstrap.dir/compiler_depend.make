# Empty compiler generated dependencies file for bench_ext_sim_bootstrap.
# This may be replaced when dependencies are built.
