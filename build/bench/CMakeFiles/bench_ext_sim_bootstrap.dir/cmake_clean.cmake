file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sim_bootstrap.dir/bench_ext_sim_bootstrap.cc.o"
  "CMakeFiles/bench_ext_sim_bootstrap.dir/bench_ext_sim_bootstrap.cc.o.d"
  "bench_ext_sim_bootstrap"
  "bench_ext_sim_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sim_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
