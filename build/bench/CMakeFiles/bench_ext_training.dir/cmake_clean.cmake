file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_training.dir/bench_ext_training.cc.o"
  "CMakeFiles/bench_ext_training.dir/bench_ext_training.cc.o.d"
  "bench_ext_training"
  "bench_ext_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
