file(REMOVE_RECURSE
  "../lib/libgpuperf_bench_common.a"
)
