# Empty dependencies file for gpuperf_bench_common.
# This may be replaced when dependencies are built.
