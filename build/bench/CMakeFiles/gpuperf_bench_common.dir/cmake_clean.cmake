file(REMOVE_RECURSE
  "../lib/libgpuperf_bench_common.a"
  "../lib/libgpuperf_bench_common.pdb"
  "CMakeFiles/gpuperf_bench_common.dir/exp_common.cc.o"
  "CMakeFiles/gpuperf_bench_common.dir/exp_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
