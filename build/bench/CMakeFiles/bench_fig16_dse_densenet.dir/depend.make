# Empty dependencies file for bench_fig16_dse_densenet.
# This may be replaced when dependencies are built.
