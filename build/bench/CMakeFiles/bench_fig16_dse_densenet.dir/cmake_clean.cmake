file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_dse_densenet.dir/bench_fig16_dse_densenet.cc.o"
  "CMakeFiles/bench_fig16_dse_densenet.dir/bench_fig16_dse_densenet.cc.o.d"
  "bench_fig16_dse_densenet"
  "bench_fig16_dse_densenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_dse_densenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
