# Empty dependencies file for bench_ablation_igkw_feature.
# This may be replaced when dependencies are built.
