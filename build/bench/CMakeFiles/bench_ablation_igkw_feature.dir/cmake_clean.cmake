file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_igkw_feature.dir/bench_ablation_igkw_feature.cc.o"
  "CMakeFiles/bench_ablation_igkw_feature.dir/bench_ablation_igkw_feature.cc.o.d"
  "bench_ablation_igkw_feature"
  "bench_ablation_igkw_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_igkw_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
