# Empty dependencies file for bench_fig06_tflops_saturation.
# This may be replaced when dependencies are built.
