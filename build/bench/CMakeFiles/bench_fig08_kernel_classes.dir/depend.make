# Empty dependencies file for bench_fig08_kernel_classes.
# This may be replaced when dependencies are built.
