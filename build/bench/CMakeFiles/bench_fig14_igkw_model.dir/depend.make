# Empty dependencies file for bench_fig14_igkw_model.
# This may be replaced when dependencies are built.
