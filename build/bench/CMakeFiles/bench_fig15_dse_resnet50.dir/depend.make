# Empty dependencies file for bench_fig15_dse_resnet50.
# This may be replaced when dependencies are built.
