# Empty dependencies file for bench_fig04_resnet_vgg.
# This may be replaced when dependencies are built.
