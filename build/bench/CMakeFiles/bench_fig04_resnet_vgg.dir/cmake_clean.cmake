file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_resnet_vgg.dir/bench_fig04_resnet_vgg.cc.o"
  "CMakeFiles/bench_fig04_resnet_vgg.dir/bench_fig04_resnet_vgg.cc.o.d"
  "bench_fig04_resnet_vgg"
  "bench_fig04_resnet_vgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_resnet_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
