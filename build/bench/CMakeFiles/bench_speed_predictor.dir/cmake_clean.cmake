file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_predictor.dir/bench_speed_predictor.cc.o"
  "CMakeFiles/bench_speed_predictor.dir/bench_speed_predictor.cc.o.d"
  "bench_speed_predictor"
  "bench_speed_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
