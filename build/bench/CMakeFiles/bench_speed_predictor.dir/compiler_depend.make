# Empty compiler generated dependencies file for bench_speed_predictor.
# This may be replaced when dependencies are built.
