// gpuperf_lint — project-invariant linter (see src/lint/lint.h for the
// rule catalog). Tier 0 of scripts/verify.sh and CI.
//
//   gpuperf_lint <file-or-dir>...   lint sources, report violations
//   gpuperf_lint --list-rules       print the rule ids, one per line
//
// Output: one `file:line: rule: message` line per violation on stdout.
// Exit 0 when clean, 1 on violations, 2 on usage or I/O errors.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : gpuperf::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: gpuperf_lint [--list-rules] <file-or-dir>...\n");
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: gpuperf_lint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  std::vector<gpuperf::lint::Violation> violations;
  std::string error;
  if (!gpuperf::lint::LintPaths(paths, &violations, &error)) {
    std::fprintf(stderr, "gpuperf_lint: %s\n", error.c_str());
    return 2;
  }
  for (const gpuperf::lint::Violation& violation : violations) {
    std::printf("%s\n", gpuperf::lint::FormatViolation(violation).c_str());
  }
  return violations.empty() ? 0 : 1;
}
