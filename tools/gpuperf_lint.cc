// gpuperf_lint — project-invariant linter (see src/lint/lint.h for the
// rule catalog, src/lint/program.h for the whole-program passes). Tier 0
// of scripts/verify.sh and CI.
//
//   gpuperf_lint [options] <file-or-dir>...
//
//   --list-rules            print the rule ids, one per line
//   --explain <rule>        print a rule's rationale and escape hatch
//   --layers=<file>         layer DAG for the layering pass
//                           (default: src/lint/layers.txt if it exists)
//   --no-layers             skip the layering pass entirely
//   --exclude=<component>   skip files with this directory component
//                           (repeatable; e.g. --exclude=lint_fixtures)
//   --baseline=<file>       suppress pinned debt; stale entries fail
//   --write-baseline=<file> write current violations as the new baseline
//   --format=text|sarif     report format (default text)
//   --sarif-out=<file>      also write a SARIF log to <file>
//   --timings               print per-pass wall-clock to stderr
//
// Text output: one `file:line: rule: message` line per violation on
// stdout, byte-identical for any path argument ordering. Exit 0 when
// clean, 1 on violations, 2 on usage or I/O errors.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/lint.h"
#include "lint/program.h"
#include "lint/sarif.h"

namespace {

constexpr char kUsage[] =
    "usage: gpuperf_lint [--list-rules] [--explain <rule>]\n"
    "                    [--layers=<file>|--no-layers]"
    " [--exclude=<component>]\n"
    "                    [--baseline=<file>|--write-baseline=<file>]\n"
    "                    [--format=text|sarif] [--sarif-out=<file>]"
    " [--timings]\n"
    "                    <file-or-dir>...\n";

bool ConsumeValue(const std::string& arg, const char* flag,
                  std::string* value) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Explain(const std::string& rule_id) {
  const gpuperf::lint::RuleInfo* info = gpuperf::lint::FindRule(rule_id);
  if (info == nullptr) {
    std::fprintf(stderr, "gpuperf_lint: unknown rule '%s' (see --list-rules)\n",
                 rule_id.c_str());
    return 2;
  }
  std::printf("%s — %s\n\nWhy: %s\n\nEscape hatch: %s\n", info->id,
              info->summary, info->rationale, info->escape);
  return 0;
}

bool FileExists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  gpuperf::lint::ProgramOptions options;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string format = "text";
  std::string sarif_out;
  bool no_layers = false;
  bool timings_requested = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list-rules") {
      for (const std::string& rule : gpuperf::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--explain") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gpuperf_lint: --explain needs a rule id\n");
        return 2;
      }
      return Explain(argv[i + 1]);
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    }
    if (arg == "--no-layers") {
      no_layers = true;
      continue;
    }
    if (arg == "--timings") {
      timings_requested = true;
      continue;
    }
    if (ConsumeValue(arg, "--layers", &options.layers_file)) continue;
    if (ConsumeValue(arg, "--exclude", &value)) {
      options.exclude_components.push_back(value);
      continue;
    }
    if (ConsumeValue(arg, "--baseline", &baseline_path)) continue;
    if (ConsumeValue(arg, "--write-baseline", &write_baseline_path)) {
      continue;
    }
    if (ConsumeValue(arg, "--format", &format)) {
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "gpuperf_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (ConsumeValue(arg, "--sarif-out", &sarif_out)) continue;
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "gpuperf_lint: unknown flag %s\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (!baseline_path.empty() && !write_baseline_path.empty()) {
    std::fprintf(stderr,
                 "gpuperf_lint: --baseline and --write-baseline are "
                 "mutually exclusive\n");
    return 2;
  }
  if (options.layers_file.empty() && !no_layers &&
      FileExists("src/lint/layers.txt")) {
    options.layers_file = "src/lint/layers.txt";
  }
  if (no_layers) options.layers_file.clear();

  std::vector<gpuperf::lint::Violation> violations;
  std::vector<gpuperf::lint::PassTiming> timings;
  std::string error;
  if (!gpuperf::lint::LintProgram(paths, options, &violations, &timings,
                                  &error)) {
    std::fprintf(stderr, "gpuperf_lint: %s\n", error.c_str());
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "gpuperf_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << gpuperf::lint::WriteBaseline(violations);
    std::fprintf(stderr, "gpuperf_lint: wrote baseline (%zu violations)\n",
                 violations.size());
    return 0;
  }

  if (!baseline_path.empty()) {
    gpuperf::lint::Baseline baseline;
    if (!gpuperf::lint::LoadBaseline(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "gpuperf_lint: %s\n", error.c_str());
      return 2;
    }
    violations =
        gpuperf::lint::ApplyBaseline(violations, baseline, baseline_path);
  }

  if (timings_requested) {
    for (const gpuperf::lint::PassTiming& timing : timings) {
      std::fprintf(stderr, "gpuperf_lint: pass %-18s %8.2f ms (%zu files)\n",
                   timing.pass.c_str(), timing.ms, timing.files);
    }
  }

  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "gpuperf_lint: cannot write %s\n",
                   sarif_out.c_str());
      return 2;
    }
    out << gpuperf::lint::ToSarif(violations);
  }
  if (format == "sarif") {
    std::printf("%s", gpuperf::lint::ToSarif(violations).c_str());
  } else {
    for (const gpuperf::lint::Violation& violation : violations) {
      std::printf("%s\n",
                  gpuperf::lint::FormatViolation(violation).c_str());
    }
  }
  return violations.empty() ? 0 : 1;
}
