// gpuperf — command-line front end for the library.
//
//   gpuperf gpus                          list the supported GPUs (Table 1)
//   gpuperf zoo [--family F]              list zoo networks
//   gpuperf show <network>                layer-by-layer network summary
//   gpuperf dataset --out DIR [options]   run a measurement campaign
//   gpuperf train --dataset DIR --out DIR train + save a KW model bundle
//   gpuperf eval --dataset DIR            train E2E/LW/KW and report errors
//   gpuperf predict --model DIR <network> <gpu> <batch>
//
// dataset options: --gpus A100,V100  --batch N  --stride N  --training
//                  --jobs N (profiling threads; 0 = all hardware threads)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "dnn/memory.h"
#include "gpuexec/profiler.h"
#include "gpuexec/roofline.h"
#include "models/e2e_model.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "models/model_io.h"
#include "zoo/zoo.h"

using namespace gpuperf;

namespace {

/** Minimal --flag[=value] parser: positionals plus a flag map. */
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (StartsWith(token, "--")) {
        std::string key = token.substr(2);
        std::string value = "1";
        const std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          value = argv[++i];
        }
        args.flags[key] = value;
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

int CmdGpus() {
  TextTable table;
  table.SetHeader({"GPU", "BW (GB/s)", "Memory (GB)", "TFLOPS", "SMs"});
  for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
    table.AddRow({gpu.name, Format("%.0f", gpu.bandwidth_gbps),
                  Format("%.0f", gpu.memory_gb),
                  Format("%.1f", gpu.fp32_tflops),
                  Format("%d", gpu.sm_count)});
  }
  table.Print();
  return 0;
}

int CmdZoo(const Args& args) {
  const std::string family = args.Get("family", "");
  TextTable table;
  table.SetHeader({"network", "family", "layers", "GFLOPs", "params"});
  int shown = 0;
  for (const dnn::Network& net : zoo::ImageClassificationZoo()) {
    if (!family.empty() && net.family() != family) continue;
    table.AddRow({net.name(), net.family(),
                  Format("%zu", net.layers().size()),
                  Format("%.2f",
                         static_cast<double>(dnn::NetworkFlops(net, 1)) / 1e9),
                  Engineering(static_cast<double>(net.ParameterCount()))});
    ++shown;
  }
  table.Print();
  std::printf("%d networks\n", shown);
  return 0;
}

int CmdShow(const Args& args) {
  if (args.positional.empty()) Fatal("usage: gpuperf show <network>");
  dnn::Network net = zoo::BuildByName(args.positional[0]);
  std::fputs(net.Summary().c_str(), stdout);
  return 0;
}

int CmdDataset(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) Fatal("usage: gpuperf dataset --out DIR [options]");
  dataset::BuildOptions options;
  const std::string gpus = args.Get("gpus", "");
  if (!gpus.empty()) options.gpu_names = Split(gpus, ',');
  options.batch = std::stoll(args.Get("batch", "512"));
  options.jobs = std::stoi(args.Get("jobs", "0"));
  if (args.Get("training", "0") == "1") {
    options.workload = gpuexec::Workload::kTraining;
  }
  const int stride = std::stoi(args.Get("stride", "1"));
  std::vector<dnn::Network> networks = zoo::SmallZoo(stride);
  std::printf("profiling %zu networks...\n", networks.size());
  dataset::Dataset data = dataset::BuildDataset(networks, options);
  std::filesystem::create_directories(out);
  data.SaveCsv(out);
  std::printf("wrote %zu network rows, %zu kernel rows to %s\n",
              data.network_rows().size(), data.kernel_rows().size(),
              out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  const std::string dataset_dir = args.Get("dataset", "");
  const std::string out = args.Get("out", "");
  if (dataset_dir.empty() || out.empty()) {
    Fatal("usage: gpuperf train --dataset DIR --out DIR");
  }
  dataset::Dataset data = dataset::Dataset::LoadCsv(dataset_dir);
  dataset::NetworkSplit split = dataset::SplitByNetwork(
      data, std::stod(args.Get("test-fraction", "0.15")),
      std::stoull(args.Get("seed", "42")));
  models::KwModel kw;
  kw.Train(data, split);
  std::filesystem::create_directories(out);
  models::ModelIo::SaveKw(kw, out);
  for (const std::string& gpu : kw.TrainedGpus()) {
    std::printf("%s: %d kernels -> %d models (calibration %.3f)\n",
                gpu.c_str(), kw.KernelCount(gpu), kw.ClusterCount(gpu),
                kw.CalibrationFor(gpu));
  }
  std::printf("model bundle written to %s\n", out.c_str());
  return 0;
}

int CmdEval(const Args& args) {
  const std::string dataset_dir = args.Get("dataset", "");
  if (dataset_dir.empty()) Fatal("usage: gpuperf eval --dataset DIR");
  dataset::Dataset data = dataset::Dataset::LoadCsv(dataset_dir);
  dataset::NetworkSplit split = dataset::SplitByNetwork(
      data, std::stod(args.Get("test-fraction", "0.15")),
      std::stoull(args.Get("seed", "42")));
  models::E2eModel e2e;
  models::LwModel lw;
  models::KwModel kw;
  e2e.Train(data, split);
  lw.Train(data, split);
  kw.Train(data, split);

  // Evaluate against the held-out e2e rows of the dataset itself.
  TextTable table;
  table.SetHeader({"GPU", "E2E error", "LW error", "KW error", "test nets"});
  for (const std::string& gpu_name : kw.TrainedGpus()) {
    const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(gpu_name);
    std::vector<double> e2e_pred, lw_pred, kw_pred, measured;
    for (const dataset::NetworkRow& row : data.network_rows()) {
      if (!split.IsTest(row.network_id)) continue;
      if (data.gpus().Get(row.gpu_id) != gpu_name) continue;
      dnn::Network net =
          zoo::BuildByName(data.networks().Get(row.network_id));
      e2e_pred.push_back(e2e.PredictUs(net, gpu, row.batch));
      lw_pred.push_back(lw.PredictUs(net, gpu, row.batch));
      kw_pred.push_back(kw.PredictUs(net, gpu, row.batch));
      measured.push_back(row.e2e_us);
    }
    if (measured.empty()) continue;
    table.AddRow({gpu_name, Format("%.1f%%", 100 * Mape(e2e_pred, measured)),
                  Format("%.1f%%", 100 * Mape(lw_pred, measured)),
                  Format("%.1f%%", 100 * Mape(kw_pred, measured)),
                  Format("%zu", measured.size())});
  }
  table.Print();
  return 0;
}

int CmdRoofline(const Args& args) {
  if (args.positional.size() < 2) {
    Fatal("usage: gpuperf roofline <network> <gpu> [batch]");
  }
  dnn::Network net = zoo::BuildByName(args.positional[0]);
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(args.positional[1]);
  const std::int64_t batch =
      args.positional.size() > 2 ? std::stoll(args.positional[2]) : 256;
  gpuexec::RooflineReport report =
      gpuexec::AnalyzeRoofline(net, gpu, batch);
  TextTable table;
  table.SetHeader({"layer", "type", "FLOP/byte", "bound", "attainable"});
  for (const gpuexec::LayerRoofline& layer : report.layers) {
    table.AddRow({net.layers()[layer.layer_index].name,
                  dnn::LayerKindName(layer.kind),
                  Format("%.1f", layer.operational_intensity),
                  layer.memory_bound ? "memory" : "compute",
                  Format("%.0f GF/s", layer.attainable_gflops)});
  }
  table.Print();
  std::printf("\nridge point of %s: %.1f FLOP/byte\n", gpu.name.c_str(),
              report.ridge_intensity);
  std::printf("%d memory-bound / %d compute-bound layers; %.0f%% of the "
              "roofline time is memory-bound\n",
              report.memory_bound_layers, report.compute_bound_layers,
              100 * report.memory_bound_time_share);
  return 0;
}

int CmdBatch(const Args& args) {
  if (args.positional.size() < 2) {
    Fatal("usage: gpuperf batch <network> <gpu>");
  }
  dnn::Network net = zoo::BuildByName(args.positional[0]);
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(args.positional[1]);
  const std::int64_t inference =
      dnn::LargestFittingBatch(net, gpu.memory_gb);
  std::printf("%s on %s (%.0f GB): largest inference batch %ld "
              "(footprint %s); BS-64 training footprint %s\n",
              net.name().c_str(), gpu.name.c_str(), gpu.memory_gb,
              (long)inference,
              Engineering(static_cast<double>(dnn::InferenceFootprintBytes(
                              net, std::max<std::int64_t>(1, inference))))
                  .c_str(),
              Engineering(static_cast<double>(
                              dnn::TrainingFootprintBytes(net, 64)))
                  .c_str());
  return 0;
}

int CmdPredict(const Args& args) {
  const std::string model_dir = args.Get("model", "");
  if (model_dir.empty() || args.positional.size() < 3) {
    Fatal("usage: gpuperf predict --model DIR <network> <gpu> <batch>");
  }
  models::KwModel kw = models::ModelIo::LoadKw(model_dir);
  dnn::Network net = zoo::BuildByName(args.positional[0]);
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(args.positional[1]);
  const std::int64_t batch = std::stoll(args.positional[2]);
  const double us = kw.PredictUs(net, gpu, batch);
  std::printf("%s @BS%ld on %s: %.3f ms (%.1f images/s)\n",
              net.name().c_str(), (long)batch, gpu.name.c_str(), us / 1e3,
              static_cast<double>(batch) / (us * 1e-6));
  return 0;
}

void Usage() {
  std::fputs(
      "usage: gpuperf <command> [options]\n"
      "  gpus                                  list supported GPUs\n"
      "  zoo [--family F]                      list zoo networks\n"
      "  show <network>                        network summary\n"
      "  dataset --out DIR [--gpus A,B] [--batch N] [--stride N]\n"
      "          [--training] [--jobs N]       run a measurement campaign\n"
      "  train --dataset DIR --out DIR         train + save a KW model\n"
      "  eval --dataset DIR                    train and report errors\n"
      "  predict --model DIR <net> <gpu> <bs>  predict execution time\n"
      "  roofline <network> <gpu> [batch]      per-layer roofline analysis\n"
      "  batch <network> <gpu>                 largest batch that fits\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  if (command == "gpus") return CmdGpus();
  if (command == "zoo") return CmdZoo(args);
  if (command == "show") return CmdShow(args);
  if (command == "dataset") return CmdDataset(args);
  if (command == "train") return CmdTrain(args);
  if (command == "eval") return CmdEval(args);
  if (command == "predict") return CmdPredict(args);
  if (command == "roofline") return CmdRoofline(args);
  if (command == "batch") return CmdBatch(args);
  Usage();
  return 1;
}
