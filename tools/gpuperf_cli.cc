// gpuperf — command-line front end for the library.
//
//   gpuperf gpus                          list the supported GPUs (Table 1)
//   gpuperf zoo [--family F]              list zoo networks
//   gpuperf show <network>                layer-by-layer network summary
//   gpuperf dataset --out DIR [options]   run a measurement campaign
//   gpuperf train --dataset DIR --out DIR train + save a KW model bundle
//   gpuperf eval --dataset DIR            train E2E/LW/KW and report errors
//   gpuperf predict --model DIR <network> <gpu> <batch>
//   gpuperf roofline <network> <gpu> [batch]
//   gpuperf batch <network> <gpu>
//   gpuperf serve-sim [options]           fault-tolerant serving simulation
//   gpuperf chaos [options]               chaos-scenario sweep + invariants
//   gpuperf bundle-check --candidate DIR  validate + canary a bundle
//   gpuperf drift-report [options]        self-healing lifecycle report
//   gpuperf timeline --in PATH [options]  render a flight-recorder timeline
//   gpuperf explain --model DIR --network N --gpu G --batch B
//                                         decompose a prediction
//
// Error-handling contract: anything a user can cause from the command
// line — a typo'd network, a corrupt bundle, a malformed flag value — is
// reported as a one-line actionable message on stderr with exit code 1,
// never an abort. Usage mistakes additionally print the subcommand's full
// flag list; `--help` prints it on stdout and exits 0.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ascii_plot.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "dnn/memory.h"
#include "gpuexec/oracle.h"
#include "gpuexec/profiler.h"
#include "gpuexec/roofline.h"
#include "models/e2e_model.h"
#include "models/explain.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "models/bundle_registry.h"
#include "models/model_io.h"
#include "models/refit.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "simsys/self_healing.h"
#include "simsys/serving.h"
#include "simsys/serving_matrix.h"
#include "zoo/zoo.h"

using namespace gpuperf;

namespace {

/** Minimal --flag[=value] parser: positionals plus a flag map. */
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (StartsWith(token, "--")) {
        std::string key = token.substr(2);
        std::string value = "1";
        const std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          value = argv[++i];
        }
        args.flags[key] = value;
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }

  /** The first flag not in `allowed`, or empty when all are known. */
  std::string UnknownFlag(const std::set<std::string>& allowed) const {
    for (const auto& [key, value] : flags) {
      (void)value;
      if (allowed.count(key) == 0) return key;
    }
    return "";
  }
};

// Per-subcommand usage text: first line is the synopsis, the rest the
// full flag list. Printed verbatim on any usage mistake.
constexpr char kShowUsage[] = "usage: gpuperf show <network>\n";
constexpr char kZooUsage[] =
    "usage: gpuperf zoo [--family F]\n"
    "  --family F     only list networks of family F (e.g. ResNet)\n";
constexpr char kDatasetUsage[] =
    "usage: gpuperf dataset --out DIR [options]\n"
    "  --out DIR      output directory for the dataset CSVs (required)\n"
    "  --gpus A,B     comma-separated GPU names (default: all seven)\n"
    "  --batch N      batch size to profile at (default 512)\n"
    "  --stride N     profile every N-th zoo network (default 1)\n"
    "  --training     profile the training workload instead of inference\n"
    "  --jobs N       profiling threads; 0 = all hardware threads\n";
constexpr char kTrainUsage[] =
    "usage: gpuperf train --dataset DIR --out DIR [options]\n"
    "  --dataset DIR        dataset directory from `gpuperf dataset`\n"
    "  --out DIR            output directory for the model bundle\n"
    "  --test-fraction F    held-out fraction in (0, 1) (default 0.15)\n"
    "  --seed N             network-split seed (default 42)\n";
constexpr char kEvalUsage[] =
    "usage: gpuperf eval --dataset DIR [options]\n"
    "  --dataset DIR        dataset directory from `gpuperf dataset`\n"
    "  --test-fraction F    held-out fraction in (0, 1) (default 0.15)\n"
    "  --seed N             network-split seed (default 42)\n";
constexpr char kPredictUsage[] =
    "usage: gpuperf predict --model DIR <network> <gpu> <batch>\n"
    "  --model DIR    model bundle directory from `gpuperf train`\n";
constexpr char kRooflineUsage[] =
    "usage: gpuperf roofline <network> <gpu> [batch]\n";
constexpr char kBatchUsage[] = "usage: gpuperf batch <network> <gpu>\n";
constexpr char kServeSimUsage[] =
    "usage: gpuperf serve-sim [options]\n"
    "  --model DIR    KW bundle for predicted-least-load dispatch; when\n"
    "                 omitted (or the bundle fails to load) the policy\n"
    "                 degrades to least-outstanding dispatch\n"
    "  --pool A,B     comma-separated GPU pool (default A40,TITAN RTX,V100)\n"
    "  --networks a,b job types (default resnet18,resnet50,densenet121,\n"
    "                 mobilenet_v2,vgg16_bn)\n"
    "  --batch N      per-request micro-batch size (default 16)\n"
    "  --rate R       Poisson arrival rate per second (default 60)\n"
    "  --duration S   simulated seconds (default 30)\n"
    "  --seed N       base simulation seed (default 1)\n"
    "  --policy P     round-robin | least-outstanding |\n"
    "                 predicted-least-load | all (default all)\n"
    "  --mtbf S       mean seconds between failures per GPU (0 = no\n"
    "                 faults; default 0)\n"
    "  --mttr S       mean seconds to repair a failed GPU (default 2)\n"
    "  --retries N    re-dispatches before a job is dropped (default 3)\n"
    "  --runs N       simulations per policy, seeds seed..seed+N-1\n"
    "                 (default 1)\n"
    "  --jobs N       simulation threads; 0 = all hardware threads\n"
    "  --queue-cap N  max outstanding jobs per GPU; arrivals beyond it are\n"
    "                 shed on admission (0 = unbounded; default 0)\n"
    "  --slo-ms MS    per-job latency SLO; jobs whose predicted completion\n"
    "                 already misses it are shed (0 = no SLO; default 0)\n"
    "  --breaker-failures N     consecutive failures that open a per-GPU\n"
    "                 circuit breaker (0 = breakers off; default 0)\n"
    "  --breaker-cooldown-ms MS open-state cooldown before half-open\n"
    "                 probing (default 1000)\n"
    "  --breaker-probes N       probe dispatches allowed half-open\n"
    "                 (default 1)\n"
    "  --hedge-factor F    issue a duplicate dispatch once a job's elapsed\n"
    "                 time exceeds F x its predicted time; the first\n"
    "                 completion wins (0 = no hedging; default 0)\n"
    "  --retry-budget F    retry tokens refilled per completion; an empty\n"
    "                 bucket suppresses the retry (0 = off; default 0)\n"
    "  --retry-burst N     retry token-bucket cap and initial balance\n"
    "                 (default 10)\n"
    "  --adaptive-detect Q the failure-detection timeout follows this\n"
    "                 quantile of observed service times (0 = fixed\n"
    "                 timeout; default 0)\n"
    "  --chaos-gray-mtbf S   mean seconds between gray-slowdown episodes\n"
    "                 per GPU (0 = none; default 0)\n"
    "  --chaos-gray-mttr S   mean episode length in seconds (default 5)\n"
    "  --chaos-gray-factor F service-time multiplier while gray (default 3)\n"
    "  --chaos-flap-mtbf S   mean seconds between flap bursts per GPU\n"
    "                 (0 = none; default 0)\n"
    "  --chaos-flap-count N  outage blips per burst (default 5)\n"
    "  --chaos-flap-period S blip start-to-start seconds (default 0.2)\n"
    "  --chaos-flap-down S   seconds each blip lasts (default 0.05)\n"
    "  --chaos-host-size N   GPUs per host domain (0 = level off)\n"
    "  --chaos-host-mtbf S   mean seconds between host-domain events\n"
    "                 (default 0)\n"
    "  --chaos-host-mttr S   mean event length in seconds (default 2)\n"
    "  --chaos-host-factor F 0 = host outage; > 1 = host-wide slowdown\n"
    "  --chaos-rack-size N   hosts per rack domain (0 = level off)\n"
    "  --chaos-rack-mtbf S   mean seconds between rack-domain events\n"
    "                 (default 0)\n"
    "  --chaos-rack-mttr S   mean event length in seconds (default 2)\n"
    "  --chaos-rack-factor F 0 = rack outage; > 1 = rack-wide slowdown\n"
    "  --drift-gpu NAME    inject one deterministic drift event on this\n"
    "                 pool GPU (service times drift by --drift-factor)\n"
    "  --drift-at S        sim-seconds when the event starts (default 0)\n"
    "  --drift-ramp S      linear ramp-in seconds (0 = step; default 0)\n"
    "  --drift-factor F    full-effect service-time multiplier, e.g. 1.1 =\n"
    "                 10% slower (default 1.1)\n"
    "  --drift-scope S     all | memory | compute: which side of the\n"
    "                 roofline the event perturbs (default all)\n"
    "  --drift-rate R      seed-driven drift events per GPU per second\n"
    "                 (mutually exclusive with --drift-gpu; default 0)\n"
    "  --drift-sigma F     log-normal factor spread of generated events\n"
    "                 (default 0.12)\n"
    "  --drift-seed N      drift generation seed (default 1)\n"
    "  --metrics-out PATH  write a gpuperf_* metrics snapshot after the\n"
    "                 grid (.prom = Prometheus text, else CSV)\n"
    "  --trace-out PATH    write a Chrome trace (chrome://tracing /\n"
    "                 ui.perfetto.dev) of every job's lifecycle\n"
    "  --timeline-out PATH write the flight-recorder timeline CSV (render\n"
    "                 it with `gpuperf timeline --in PATH`); with\n"
    "                 --trace-out the counter tracks also join the trace\n"
    "  --timeline-period-ms MS  flight-recorder window width in simulated\n"
    "                 milliseconds (default 100)\n"
    "  --observations-out PATH  write the (network, GPU) observed service\n"
    "                 times as CSV for `gpuperf explain --observations`\n"
    "  --help         print this flag list and exit 0\n";
constexpr char kDriftReportUsage[] =
    "usage: gpuperf drift-report --model DIR [options]\n"
    "  Runs the self-healing lifecycle over a serving pool: epochs of\n"
    "  simulated serving with drift injection, online drift detection,\n"
    "  incremental refit, and shadow -> canary -> promote / rollback\n"
    "  bundle promotion; prints a per-epoch report.\n"
    "  --model DIR      initial KW bundle to serve (required)\n"
    "  --work-dir DIR   where refit candidate bundles are written\n"
    "                   (default: <model>-heal)\n"
    "  --pool A,B       GPU pool (default A40,TITAN RTX,V100)\n"
    "  --networks a,b   job types (default resnet18,resnet50,mobilenet_v2)\n"
    "  --batch N        per-request micro-batch size (default 16)\n"
    "  --rate R         Poisson arrivals per second (default 80)\n"
    "  --epoch-seconds S  epoch length in simulated seconds (default 5)\n"
    "  --epochs N       number of serving epochs (default 10)\n"
    "  --seed N         base simulation seed (default 1)\n"
    "  --drift-gpu NAME   inject one drift event on this pool GPU\n"
    "  --drift-at S       sim-seconds when the event starts (default 0)\n"
    "  --drift-ramp S     linear ramp-in seconds (0 = step; default 0)\n"
    "  --drift-factor F   full-effect multiplier (default 1.1)\n"
    "  --drift-scope S    all | memory | compute (default all)\n"
    "  --drift-rate R     seed-driven events per GPU per second\n"
    "                     (mutually exclusive with --drift-gpu)\n"
    "  --drift-sigma F    log-normal factor spread (default 0.12)\n"
    "  --drift-seed N     drift generation seed (default 1)\n"
    "  --metrics-out PATH write a gpuperf_* metrics snapshot at the end\n"
    "  --timeline-out PATH  write the cross-epoch flight-recorder timeline\n"
    "                     CSV (one continuous monotone timeline; epochs\n"
    "                     re-anchor the window grid)\n"
    "  --help             print this flag list and exit 0\n";
constexpr char kChaosUsage[] =
    "usage: gpuperf chaos [options]\n"
    "  Sweeps seeded chaos scenarios against the gray-failure resilience\n"
    "  stack (hedged dispatch, retry budgets, adaptive detection, circuit\n"
    "  breakers) and checks per-cell invariants: arrivals accounting, an\n"
    "  availability floor, the retry-budget bound, and breaker re-close\n"
    "  after the fault heals. Scenarios: outage (uncorrelated binary\n"
    "  failures), gray (4x service slowdowns), domain (correlated\n"
    "  host-domain outages), flap (bursts of short outage blips).\n"
    "  Dispatch predictions are the oracle's true times, so hedges fire\n"
    "  exactly when chaos slows a job past the trigger. Any violation\n"
    "  exits 1 with a one-line located error after the table.\n"
    "  --pool A,B       GPU pool (default A40,TITAN RTX,V100,A100)\n"
    "  --networks a,b   job types (default resnet18,resnet50)\n"
    "  --batch N        per-request micro-batch size (default 16)\n"
    "  --rate R         Poisson arrivals per second (default 80)\n"
    "  --duration S     simulated seconds per cell; the scenario\n"
    "                   MTBF/MTTR presets scale with it (default 10)\n"
    "  --seed N         base seed; cell seeds are seed..seed+runs-1\n"
    "                   (default 1)\n"
    "  --runs N         seeds per scenario x policy (default 1)\n"
    "  --jobs N         simulation threads; 0 = all hardware threads (the\n"
    "                   table is bit-identical for every value)\n"
    "  --scenarios a,b  subset of outage,gray,domain,flap (default all)\n"
    "  --policy P       round-robin | least-outstanding |\n"
    "                   predicted-least-load | all (default all)\n"
    "  --retries N      re-dispatches before a job drops (default 3)\n"
    "  --hedge-factor F   hedge once elapsed > F x predicted (default 1.5)\n"
    "  --retry-budget F   retry tokens refilled per completion\n"
    "                   (default 0.5)\n"
    "  --retry-burst N    retry token-bucket cap (default 10)\n"
    "  --adaptive-detect Q  detection-timeout quantile of observed\n"
    "                   service times (default 0.99)\n"
    "  --breaker-failures N consecutive failures that open a breaker\n"
    "                   (default 3)\n"
    "  --breaker-cooldown-ms MS open-state cooldown (default 500)\n"
    "  --min-avail F    per-cell mean-availability floor in [0, 1]\n"
    "                   (default 0.5)\n"
    "  --metrics-out PATH  write a gpuperf_* metrics snapshot after the\n"
    "                   sweep (.prom = Prometheus text, else CSV)\n"
    "  --trace-out PATH    write a Chrome trace of every cell (scenarios\n"
    "                   share cell process slots)\n"
    "  --timeline-out PATH write the flight-recorder timeline CSV across\n"
    "                   every scenario's cells (scenarios share cell\n"
    "                   labels; rows stay in scenario order)\n"
    "  --help           print this flag list and exit 0\n";
constexpr char kBundleCheckUsage[] =
    "usage: gpuperf bundle-check --candidate DIR [options]\n"
    "  --candidate DIR  bundle to validate (required): integrity checks\n"
    "                   (manifest version, checksums, field validation),\n"
    "                   then a canary prediction gate\n"
    "  --baseline DIR   currently-serving bundle; canary predictions must\n"
    "                   stay within --tolerance of it (optional)\n"
    "  --networks a,b   canary probe networks (default resnet18,resnet50,\n"
    "                   mobilenet_v2)\n"
    "  --gpus A,B       canary probe GPUs (default: the candidate's\n"
    "                   trained GPUs)\n"
    "  --batch N        canary batch size (default 16)\n"
    "  --tolerance F    max relative drift vs the baseline, e.g. 0.5 = 50%\n"
    "                   (default 0.5)\n"
    "  --help           print this flag list and exit 0\n";
constexpr char kTimelineUsage[] =
    "usage: gpuperf timeline --in PATH [options]\n"
    "  Renders a flight-recorder timeline CSV (written by serve-sim,\n"
    "  chaos, or drift-report via --timeline-out). Without --metric it\n"
    "  prints one summary row per (source, metric); with --metric it\n"
    "  prints the metric's full time series, one column per field.\n"
    "  --in PATH      timeline CSV (required)\n"
    "  --metric M     exact metric name (e.g. gpuperf_serving_latency_ms)\n"
    "  --source S     only rows of this source (e.g. 'cell 0: ...')\n"
    "  --field F      series field for --ascii (default: delta for\n"
    "                 counters, value for gauges, p99 for sketches)\n"
    "  --ascii        plot the metric over sim time instead of a table\n"
    "  --width N      plot columns for --ascii (default 72)\n"
    "  --help         print this flag list and exit 0\n";
constexpr char kExplainUsage[] =
    "usage: gpuperf explain --model DIR --network N --gpu G --batch B "
    "[options]\n"
    "  Decomposes a KW prediction into per-layer, per-cluster, and\n"
    "  per-term contributions by walking the compiled prediction plan in\n"
    "  the evaluator's exact accumulation order: the layer contributions\n"
    "  sum bit-for-bit to the `gpuperf predict` value. With an\n"
    "  observations CSV it also attributes the observed-minus-predicted\n"
    "  residual across kernel clusters by prediction share.\n"
    "  --model DIR    model bundle directory from `gpuperf train`\n"
    "  --network N    zoo network name\n"
    "  --gpu G        GPU name (run `gpuperf gpus` for the list)\n"
    "  --batch B      batch size (positive integer)\n"
    "  --layer NAME   also print the per-term breakdown of this layer\n"
    "  --top K        rows in the per-layer table (default 10)\n"
    "  --observations PATH  CSV with network,gpu,batch,observed_us rows\n"
    "                 (serve-sim --observations-out writes one)\n"
    "  --help         print this flag list and exit 0\n";

/** A user mistake: one actionable line + the subcommand's flag list. */
int UsageError(const char* usage, const std::string& message) {
  std::fprintf(stderr, "gpuperf: %s\n%s", message.c_str(), usage);
  return 1;
}

/** True when --help was given; prints the flag list on stdout (exit 0). */
bool WantsHelp(const Args& args, const char* usage) {
  if (args.flags.count("help") == 0) return false;
  std::fputs(usage, stdout);
  return true;
}

/** A runtime user-facing failure (bad file, unknown name, ...). */
int UserError(const std::string& message) {
  std::fprintf(stderr, "gpuperf: %s\n", message.c_str());
  return 1;
}

int UserError(const Status& status) { return UserError(status.message()); }

int CmdGpus() {
  TextTable table;
  table.SetHeader({"GPU", "BW (GB/s)", "Memory (GB)", "TFLOPS", "SMs"});
  for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
    table.AddRow({gpu.name, Format("%.0f", gpu.bandwidth_gbps),
                  Format("%.0f", gpu.memory_gb),
                  Format("%.1f", gpu.fp32_tflops),
                  Format("%d", gpu.sm_count)});
  }
  table.Print();
  return 0;
}

int CmdZoo(const Args& args) {
  const std::string unknown = args.UnknownFlag({"family"});
  if (!unknown.empty()) {
    return UsageError(kZooUsage, "unknown flag --" + unknown);
  }
  const std::string family = args.Get("family", "");
  TextTable table;
  table.SetHeader({"network", "family", "layers", "GFLOPs", "params"});
  int shown = 0;
  for (const dnn::Network& net : zoo::ImageClassificationZoo()) {
    if (!family.empty() && net.family() != family) continue;
    table.AddRow({net.name(), net.family(),
                  Format("%zu", net.layers().size()),
                  Format("%.2f",
                         static_cast<double>(dnn::NetworkFlops(net, 1)) / 1e9),
                  Engineering(static_cast<double>(net.ParameterCount()))});
    ++shown;
  }
  table.Print();
  std::printf("%d networks\n", shown);
  return 0;
}

int CmdShow(const Args& args) {
  if (args.positional.empty()) {
    return UsageError(kShowUsage, "missing <network> argument");
  }
  StatusOr<dnn::Network> net = zoo::TryBuildByName(args.positional[0]);
  if (!net.ok()) return UserError(net.status());
  std::fputs(net->Summary().c_str(), stdout);
  return 0;
}

int CmdDataset(const Args& args) {
  const std::string unknown = args.UnknownFlag(
      {"out", "gpus", "batch", "stride", "training", "jobs"});
  if (!unknown.empty()) {
    return UsageError(kDatasetUsage, "unknown flag --" + unknown);
  }
  const std::string out = args.Get("out", "");
  if (out.empty()) return UsageError(kDatasetUsage, "--out DIR is required");
  dataset::BuildOptions options;
  const std::string gpus = args.Get("gpus", "");
  if (!gpus.empty()) {
    options.gpu_names = Split(gpus, ',');
    for (const std::string& name : options.gpu_names) {
      if (gpuexec::FindGpu(name) == nullptr) {
        return UserError("unknown GPU '" + name +
                         "' (run `gpuperf gpus` for the list)");
      }
    }
  }
  StatusOr<long long> batch = ParseInt64(args.Get("batch", "512"));
  if (!batch.ok() || *batch < 1) {
    return UsageError(kDatasetUsage, "--batch must be a positive integer, "
                                     "got '" + args.Get("batch", "512") + "'");
  }
  options.batch = *batch;
  StatusOr<int> jobs = ParseInt(args.Get("jobs", "0"));
  if (!jobs.ok() || *jobs < 0) {
    return UsageError(kDatasetUsage, "--jobs must be a non-negative integer, "
                                     "got '" + args.Get("jobs", "0") + "'");
  }
  options.jobs = *jobs;
  if (args.Get("training", "0") == "1") {
    options.workload = gpuexec::Workload::kTraining;
  }
  StatusOr<int> stride = ParseInt(args.Get("stride", "1"));
  if (!stride.ok() || *stride < 1) {
    return UsageError(kDatasetUsage, "--stride must be a positive integer, "
                                     "got '" + args.Get("stride", "1") + "'");
  }
  std::vector<dnn::Network> networks = zoo::SmallZoo(*stride);
  std::printf("profiling %zu networks...\n", networks.size());
  dataset::Dataset data = dataset::BuildDataset(networks, options);
  std::filesystem::create_directories(out);
  data.SaveCsv(out);
  std::printf("wrote %zu network rows, %zu kernel rows to %s\n",
              data.network_rows().size(), data.kernel_rows().size(),
              out.c_str());
  return 0;
}

/** Parses one finite non-negative double flag (usage error otherwise). */
int ParseNonNegativeFlag(const Args& args, const char* usage,
                         const char* flag, const char* fallback,
                         double* out) {
  StatusOr<double> value = ParseFiniteDouble(args.Get(flag, fallback));
  if (!value.ok() || *value < 0) {
    return UsageError(usage, std::string("--") + flag +
                                 " must be a non-negative number, got '" +
                                 args.Get(flag, fallback) + "'");
  }
  *out = *value;
  return 0;
}

/** Parses one finite strictly-positive double flag. */
int ParsePositiveFlag(const Args& args, const char* usage, const char* flag,
                      const char* fallback, double* out) {
  StatusOr<double> value = ParseFiniteDouble(args.Get(flag, fallback));
  if (!value.ok() || *value <= 0) {
    return UsageError(usage, std::string("--") + flag +
                                 " must be a positive number, got '" +
                                 args.Get(flag, fallback) + "'");
  }
  *out = *value;
  return 0;
}

/** Parses one integer flag bounded below by `min`. */
int ParseCountFlag(const Args& args, const char* usage, const char* flag,
                   const char* fallback, int min, int* out) {
  StatusOr<int> value = ParseInt(args.Get(flag, fallback));
  if (!value.ok() || *value < min) {
    return UsageError(usage, std::string("--") + flag + " must be an integer"
                                 " >= " + Format("%d", min) + ", got '" +
                                 args.Get(flag, fallback) + "'");
  }
  *out = *value;
  return 0;
}

/** Parses --policy into the list of dispatch policies to sweep. */
int ParsePolicyFlag(const Args& args, const char* usage,
                    std::vector<simsys::DispatchPolicy>* policies) {
  const std::string policy_name = args.Get("policy", "all");
  if (policy_name == "all") {
    *policies = {simsys::DispatchPolicy::kRoundRobin,
                 simsys::DispatchPolicy::kLeastOutstanding,
                 simsys::DispatchPolicy::kPredictedLeastLoad};
  } else if (policy_name == "round-robin") {
    *policies = {simsys::DispatchPolicy::kRoundRobin};
  } else if (policy_name == "least-outstanding") {
    *policies = {simsys::DispatchPolicy::kLeastOutstanding};
  } else if (policy_name == "predicted-least-load") {
    *policies = {simsys::DispatchPolicy::kPredictedLeastLoad};
  } else {
    return UsageError(usage,
                      "--policy must be round-robin, least-outstanding, "
                      "predicted-least-load, or all; got '" + policy_name +
                          "'");
  }
  return 0;
}

// The gray-failure resilience flags shared by serve-sim and chaos; the
// caller chooses the defaults (serve-sim: everything off; chaos: the
// full stack on).
struct ResilienceDefaults {
  const char* hedge_factor = "0";
  const char* retry_budget = "0";
  const char* retry_burst = "10";
  const char* adaptive_detect = "0";
};

int ParseResilienceFlags(const Args& args, const char* usage,
                         const ResilienceDefaults& defaults,
                         simsys::ServingConfig* config) {
  if (int rc = ParseNonNegativeFlag(args, usage, "hedge-factor",
                                    defaults.hedge_factor,
                                    &config->hedge_trigger_factor)) {
    return rc;
  }
  if (int rc = ParseNonNegativeFlag(args, usage, "retry-budget",
                                    defaults.retry_budget,
                                    &config->retry_budget)) {
    return rc;
  }
  if (int rc = ParsePositiveFlag(args, usage, "retry-burst",
                                 defaults.retry_burst,
                                 &config->retry_budget_burst)) {
    return rc;
  }
  if (int rc = ParseNonNegativeFlag(args, usage, "adaptive-detect",
                                    defaults.adaptive_detect,
                                    &config->adaptive_detect_quantile)) {
    return rc;
  }
  if (config->adaptive_detect_quantile > 1) {
    return UsageError(usage, "--adaptive-detect must be a quantile in "
                             "[0, 1], got '" +
                                 args.Get("adaptive-detect",
                                          defaults.adaptive_detect) + "'");
  }
  return 0;
}

/** The --chaos-* timeline flags (serve-sim only; chaos uses presets). */
int ParseChaosFlags(const Args& args, const char* usage,
                    simsys::ServingConfig* config) {
  ChaosPlanConfig& chaos = config->chaos;
  struct DoubleFlag {
    const char* flag;
    const char* fallback;
    bool positive;  // strictly positive vs non-negative
    double* out;
  };
  const DoubleFlag flags[] = {
      {"chaos-gray-mtbf", "0", false, &chaos.gray_mtbf_s},
      {"chaos-gray-mttr", "5", false, &chaos.gray_mttr_s},
      {"chaos-gray-factor", "3", true, &chaos.gray_factor},
      {"chaos-flap-mtbf", "0", false, &chaos.flap_mtbf_s},
      {"chaos-flap-period", "0.2", true, &chaos.flap_period_s},
      {"chaos-flap-down", "0.05", false, &chaos.flap_down_s},
      {"chaos-host-mtbf", "0", false, &chaos.host.mtbf_s},
      {"chaos-host-mttr", "2", false, &chaos.host.mttr_s},
      {"chaos-host-factor", "0", false, &chaos.host.factor},
      {"chaos-rack-mtbf", "0", false, &chaos.rack.mtbf_s},
      {"chaos-rack-mttr", "2", false, &chaos.rack.mttr_s},
      {"chaos-rack-factor", "0", false, &chaos.rack.factor},
  };
  for (const DoubleFlag& f : flags) {
    const int rc =
        f.positive
            ? ParsePositiveFlag(args, usage, f.flag, f.fallback, f.out)
            : ParseNonNegativeFlag(args, usage, f.flag, f.fallback, f.out);
    if (rc != 0) return rc;
  }
  if (int rc = ParseCountFlag(args, usage, "chaos-flap-count", "5", 1,
                              &chaos.flap_count)) {
    return rc;
  }
  int host_size = 0, rack_size = 0;
  if (int rc = ParseCountFlag(args, usage, "chaos-host-size", "0", 0,
                              &host_size)) {
    return rc;
  }
  if (int rc = ParseCountFlag(args, usage, "chaos-rack-size", "0", 0,
                              &rack_size)) {
    return rc;
  }
  chaos.host.size = static_cast<std::size_t>(host_size);
  chaos.rack.size = static_cast<std::size_t>(rack_size);
  return 0;
}

/** Parses the shared --test-fraction/--seed split flags. */
int ParseSplitFlags(const Args& args, const char* usage, double* fraction,
                    std::uint64_t* seed) {
  StatusOr<double> f =
      ParseFiniteDouble(args.Get("test-fraction", "0.15"));
  if (!f.ok() || *f <= 0 || *f >= 1) {
    return UsageError(usage, "--test-fraction must be in (0, 1), got '" +
                                 args.Get("test-fraction", "0.15") + "'");
  }
  *fraction = *f;
  StatusOr<long long> s = ParseInt64(args.Get("seed", "42"));
  if (!s.ok() || *s < 0) {
    return UsageError(usage, "--seed must be a non-negative integer, got '" +
                                 args.Get("seed", "42") + "'");
  }
  *seed = static_cast<std::uint64_t>(*s);
  return 0;
}

int CmdTrain(const Args& args) {
  const std::string unknown =
      args.UnknownFlag({"dataset", "out", "test-fraction", "seed"});
  if (!unknown.empty()) {
    return UsageError(kTrainUsage, "unknown flag --" + unknown);
  }
  const std::string dataset_dir = args.Get("dataset", "");
  const std::string out = args.Get("out", "");
  if (dataset_dir.empty() || out.empty()) {
    return UsageError(kTrainUsage, "--dataset DIR and --out DIR are required");
  }
  double fraction = 0;
  std::uint64_t seed = 0;
  if (int rc = ParseSplitFlags(args, kTrainUsage, &fraction, &seed)) return rc;
  StatusOr<dataset::Dataset> data = dataset::Dataset::TryLoadCsv(dataset_dir);
  if (!data.ok()) return UserError(data.status());
  dataset::NetworkSplit split = dataset::SplitByNetwork(*data, fraction, seed);
  models::KwModel kw;
  kw.Train(*data, split);
  std::filesystem::create_directories(out);
  if (Status saved = models::ModelIo::SaveKw(kw, out); !saved.ok()) {
    return UserError(saved);
  }
  for (const std::string& gpu : kw.TrainedGpus()) {
    std::printf("%s: %d kernels -> %d models (calibration %.3f)\n",
                gpu.c_str(), kw.KernelCount(gpu), kw.ClusterCount(gpu),
                kw.CalibrationFor(gpu));
  }
  std::printf("model bundle written to %s\n", out.c_str());
  return 0;
}

int CmdEval(const Args& args) {
  const std::string unknown =
      args.UnknownFlag({"dataset", "test-fraction", "seed"});
  if (!unknown.empty()) {
    return UsageError(kEvalUsage, "unknown flag --" + unknown);
  }
  const std::string dataset_dir = args.Get("dataset", "");
  if (dataset_dir.empty()) {
    return UsageError(kEvalUsage, "--dataset DIR is required");
  }
  double fraction = 0;
  std::uint64_t seed = 0;
  if (int rc = ParseSplitFlags(args, kEvalUsage, &fraction, &seed)) return rc;
  StatusOr<dataset::Dataset> data = dataset::Dataset::TryLoadCsv(dataset_dir);
  if (!data.ok()) return UserError(data.status());
  dataset::NetworkSplit split = dataset::SplitByNetwork(*data, fraction, seed);
  models::E2eModel e2e;
  models::LwModel lw;
  models::KwModel kw;
  e2e.Train(*data, split);
  lw.Train(*data, split);
  kw.Train(*data, split);

  // Evaluate against the held-out e2e rows of the dataset itself.
  TextTable table;
  table.SetHeader({"GPU", "E2E error", "LW error", "KW error", "test nets"});
  for (const std::string& gpu_name : kw.TrainedGpus()) {
    const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(gpu_name);
    std::vector<double> e2e_pred, lw_pred, kw_pred, measured;
    for (const dataset::NetworkRow& row : data->network_rows()) {
      if (!split.IsTest(row.network_id)) continue;
      if (data->gpus().Get(row.gpu_id) != gpu_name) continue;
      StatusOr<dnn::Network> net =
          zoo::TryBuildByName(data->networks().Get(row.network_id));
      if (!net.ok()) {
        Status annotated = net.status();
        return UserError(
            annotated.Annotate("dataset references unknown network"));
      }
      e2e_pred.push_back(e2e.PredictUs(*net, gpu, row.batch));
      lw_pred.push_back(lw.PredictUs(*net, gpu, row.batch));
      kw_pred.push_back(kw.PredictUs(*net, gpu, row.batch));
      measured.push_back(row.e2e_us);
    }
    if (measured.empty()) continue;
    table.AddRow({gpu_name, Format("%.1f%%", 100 * Mape(e2e_pred, measured)),
                  Format("%.1f%%", 100 * Mape(lw_pred, measured)),
                  Format("%.1f%%", 100 * Mape(kw_pred, measured)),
                  Format("%zu", measured.size())});
  }
  table.Print();
  return 0;
}

int CmdRoofline(const Args& args) {
  if (args.positional.size() < 2) {
    return UsageError(kRooflineUsage, "expected <network> and <gpu>");
  }
  StatusOr<dnn::Network> net = zoo::TryBuildByName(args.positional[0]);
  if (!net.ok()) return UserError(net.status());
  const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(args.positional[1]);
  if (gpu == nullptr) {
    return UserError("unknown GPU '" + args.positional[1] +
                     "' (run `gpuperf gpus` for the list)");
  }
  std::int64_t batch = 256;
  if (args.positional.size() > 2) {
    StatusOr<long long> parsed = ParseInt64(args.positional[2]);
    if (!parsed.ok() || *parsed < 1) {
      return UsageError(kRooflineUsage, "batch must be a positive integer, "
                                        "got '" + args.positional[2] + "'");
    }
    batch = *parsed;
  }
  gpuexec::RooflineReport report =
      gpuexec::AnalyzeRoofline(*net, *gpu, batch);
  TextTable table;
  table.SetHeader({"layer", "type", "FLOP/byte", "bound", "attainable"});
  for (const gpuexec::LayerRoofline& layer : report.layers) {
    table.AddRow({net->layers()[layer.layer_index].name,
                  dnn::LayerKindName(layer.kind),
                  Format("%.1f", layer.operational_intensity),
                  layer.memory_bound ? "memory" : "compute",
                  Format("%.0f GF/s", layer.attainable_gflops)});
  }
  table.Print();
  std::printf("\nridge point of %s: %.1f FLOP/byte\n", gpu->name.c_str(),
              report.ridge_intensity);
  std::printf("%d memory-bound / %d compute-bound layers; %.0f%% of the "
              "roofline time is memory-bound\n",
              report.memory_bound_layers, report.compute_bound_layers,
              100 * report.memory_bound_time_share);
  return 0;
}

int CmdBatch(const Args& args) {
  if (args.positional.size() < 2) {
    return UsageError(kBatchUsage, "expected <network> and <gpu>");
  }
  StatusOr<dnn::Network> net = zoo::TryBuildByName(args.positional[0]);
  if (!net.ok()) return UserError(net.status());
  const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(args.positional[1]);
  if (gpu == nullptr) {
    return UserError("unknown GPU '" + args.positional[1] +
                     "' (run `gpuperf gpus` for the list)");
  }
  const std::int64_t inference =
      dnn::LargestFittingBatch(*net, gpu->memory_gb);
  std::printf("%s on %s (%.0f GB): largest inference batch %ld "
              "(footprint %s); BS-64 training footprint %s\n",
              net->name().c_str(), gpu->name.c_str(), gpu->memory_gb,
              (long)inference,
              Engineering(static_cast<double>(dnn::InferenceFootprintBytes(
                              *net, std::max<std::int64_t>(1, inference))))
                  .c_str(),
              Engineering(static_cast<double>(
                              dnn::TrainingFootprintBytes(*net, 64)))
                  .c_str());
  return 0;
}

int CmdPredict(const Args& args) {
  const std::string unknown = args.UnknownFlag({"model"});
  if (!unknown.empty()) {
    return UsageError(kPredictUsage, "unknown flag --" + unknown);
  }
  const std::string model_dir = args.Get("model", "");
  if (model_dir.empty() || args.positional.size() < 3) {
    return UsageError(kPredictUsage,
                      "expected --model DIR plus <network> <gpu> <batch>");
  }
  StatusOr<models::KwModel> kw = models::ModelIo::LoadKw(model_dir);
  if (!kw.ok()) return UserError(kw.status());
  StatusOr<dnn::Network> net = zoo::TryBuildByName(args.positional[0]);
  if (!net.ok()) return UserError(net.status());
  const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(args.positional[1]);
  if (gpu == nullptr) {
    return UserError("unknown GPU '" + args.positional[1] +
                     "' (run `gpuperf gpus` for the list)");
  }
  StatusOr<long long> batch = ParseInt64(args.positional[2]);
  if (!batch.ok() || *batch < 1) {
    return UsageError(kPredictUsage, "batch must be a positive integer, "
                                     "got '" + args.positional[2] + "'");
  }
  if (!kw->CoverageFor(*net, gpu->name).gpu_trained) {
    std::string trained;
    for (const std::string& name : kw->TrainedGpus()) {
      if (!trained.empty()) trained += ", ";
      trained += name;
    }
    return UserError("model bundle is not trained for GPU '" + gpu->name +
                     "' (trained: " + trained + ")");
  }
  const double us = kw->PredictUs(*net, *gpu, *batch);
  std::printf("%s @BS%ld on %s: %.3f ms (%.1f images/s)\n",
              net->name().c_str(), (long)*batch, gpu->name.c_str(), us / 1e3,
              static_cast<double>(*batch) / (us * 1e-6));
  return 0;
}

/**
 * Parses the shared --drift-* flags into a schedule over `pool`.
 * Returns 0 and leaves `schedule` empty when no drift was requested,
 * 0 with a populated schedule on success, and a nonzero exit code
 * (usage error already printed) on a bad value.
 */
int ParseDriftFlags(const Args& args, const char* usage,
                    const std::vector<std::string>& pool, double horizon_s,
                    gpuexec::DriftSchedule* schedule) {
  const std::string drift_gpu = args.Get("drift-gpu", "");
  StatusOr<double> drift_rate =
      ParseFiniteDouble(args.Get("drift-rate", "0"));
  if (!drift_rate.ok() || *drift_rate < 0) {
    return UsageError(usage, "--drift-rate must be a non-negative number, "
                             "got '" + args.Get("drift-rate", "0") + "'");
  }
  if (!drift_gpu.empty() && *drift_rate > 0) {
    return UsageError(usage,
                      "--drift-gpu and --drift-rate are mutually exclusive");
  }
  StatusOr<double> drift_at = ParseFiniteDouble(args.Get("drift-at", "0"));
  if (!drift_at.ok() || *drift_at < 0) {
    return UsageError(usage, "--drift-at must be a non-negative number of "
                             "seconds, got '" + args.Get("drift-at", "0") +
                             "'");
  }
  StatusOr<double> drift_ramp =
      ParseFiniteDouble(args.Get("drift-ramp", "0"));
  if (!drift_ramp.ok() || *drift_ramp < 0) {
    return UsageError(usage, "--drift-ramp must be a non-negative number of "
                             "seconds, got '" + args.Get("drift-ramp", "0") +
                             "'");
  }
  StatusOr<double> drift_factor =
      ParseFiniteDouble(args.Get("drift-factor", "1.1"));
  if (!drift_factor.ok() || *drift_factor <= 0) {
    return UsageError(usage, "--drift-factor must be a positive number, "
                             "got '" + args.Get("drift-factor", "1.1") + "'");
  }
  const std::string scope_name = args.Get("drift-scope", "all");
  gpuexec::DriftScope scope = gpuexec::DriftScope::kAll;
  if (scope_name == "memory") {
    scope = gpuexec::DriftScope::kMemoryBound;
  } else if (scope_name == "compute") {
    scope = gpuexec::DriftScope::kComputeBound;
  } else if (scope_name != "all") {
    return UsageError(usage, "--drift-scope must be all, memory, or "
                             "compute; got '" + scope_name + "'");
  }
  StatusOr<double> drift_sigma =
      ParseFiniteDouble(args.Get("drift-sigma", "0.12"));
  if (!drift_sigma.ok() || *drift_sigma <= 0) {
    return UsageError(usage, "--drift-sigma must be a positive number, "
                             "got '" + args.Get("drift-sigma", "0.12") + "'");
  }
  StatusOr<long long> drift_seed = ParseInt64(args.Get("drift-seed", "1"));
  if (!drift_seed.ok() || *drift_seed < 0) {
    return UsageError(usage, "--drift-seed must be a non-negative integer, "
                             "got '" + args.Get("drift-seed", "1") + "'");
  }
  // Values validated even when no event was requested — a malformed
  // flag is a user mistake whether or not it would have been used.
  if (drift_gpu.empty() && *drift_rate == 0) return 0;

  if (!drift_gpu.empty()) {
    std::size_t resource = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i] == drift_gpu) resource = i;
    }
    if (resource == pool.size()) {
      return UsageError(usage, "--drift-gpu '" + drift_gpu +
                                   "' is not in the pool");
    }
    gpuexec::DriftEvent event;
    event.resource = resource;
    event.at_us = *drift_at * 1e6;
    event.ramp_us = *drift_ramp * 1e6;
    event.factor = *drift_factor;
    event.scope = scope;
    *schedule = gpuexec::DriftSchedule(pool.size(), {event});
    return 0;
  }

  gpuexec::DriftScheduleConfig config;
  config.rate_per_s = *drift_rate;
  config.factor_sigma = *drift_sigma;
  config.ramp_s = *drift_ramp;
  config.seed = static_cast<std::uint64_t>(*drift_seed);
  *schedule = gpuexec::DriftSchedule(pool.size(), horizon_s * 1e6, config);
  return 0;
}

int CmdServeSim(const Args& args) {
  if (WantsHelp(args, kServeSimUsage)) return 0;
  const std::string unknown = args.UnknownFlag(
      {"model", "pool", "networks", "batch", "rate", "duration", "seed",
       "policy", "mtbf", "mttr", "retries", "runs", "jobs", "queue-cap",
       "slo-ms", "breaker-failures", "breaker-cooldown-ms",
       "breaker-probes", "hedge-factor", "retry-budget", "retry-burst",
       "adaptive-detect", "chaos-gray-mtbf", "chaos-gray-mttr",
       "chaos-gray-factor", "chaos-flap-mtbf", "chaos-flap-count",
       "chaos-flap-period", "chaos-flap-down", "chaos-host-size",
       "chaos-host-mtbf", "chaos-host-mttr", "chaos-host-factor",
       "chaos-rack-size", "chaos-rack-mtbf", "chaos-rack-mttr",
       "chaos-rack-factor", "metrics-out", "trace-out", "timeline-out",
       "timeline-period-ms", "observations-out", "drift-gpu",
       "drift-at", "drift-ramp", "drift-factor", "drift-scope",
       "drift-rate", "drift-sigma", "drift-seed"});
  if (!unknown.empty()) {
    return UsageError(kServeSimUsage, "unknown flag --" + unknown);
  }

  // --- Pool and job-mix flags.
  std::vector<std::string> pool =
      Split(args.Get("pool", "A40,TITAN RTX,V100"), ',');
  std::vector<const gpuexec::GpuSpec*> gpus;
  for (const std::string& name : pool) {
    const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(name);
    if (gpu == nullptr) {
      return UserError("unknown GPU '" + name +
                       "' (run `gpuperf gpus` for the list)");
    }
    gpus.push_back(gpu);
  }
  const std::vector<std::string> network_names = Split(
      args.Get("networks",
               "resnet18,resnet50,densenet121,mobilenet_v2,vgg16_bn"),
      ',');
  std::vector<dnn::Network> networks;
  for (const std::string& name : network_names) {
    StatusOr<dnn::Network> net = zoo::TryBuildByName(name);
    if (!net.ok()) return UserError(net.status());
    networks.push_back(std::move(net).value());
  }

  // --- Numeric flags.
  StatusOr<long long> batch = ParseInt64(args.Get("batch", "16"));
  if (!batch.ok() || *batch < 1) {
    return UsageError(kServeSimUsage, "--batch must be a positive integer, "
                                      "got '" + args.Get("batch", "16") + "'");
  }
  StatusOr<double> rate = ParseFiniteDouble(args.Get("rate", "60"));
  if (!rate.ok() || *rate <= 0) {
    return UsageError(kServeSimUsage, "--rate must be a positive number, "
                                      "got '" + args.Get("rate", "60") + "'");
  }
  StatusOr<double> duration = ParseFiniteDouble(args.Get("duration", "30"));
  if (!duration.ok() || *duration <= 0) {
    return UsageError(kServeSimUsage,
                      "--duration must be a positive number, got '" +
                          args.Get("duration", "30") + "'");
  }
  StatusOr<long long> seed = ParseInt64(args.Get("seed", "1"));
  if (!seed.ok() || *seed < 0) {
    return UsageError(kServeSimUsage,
                      "--seed must be a non-negative integer, got '" +
                          args.Get("seed", "1") + "'");
  }
  StatusOr<double> mtbf = ParseFiniteDouble(args.Get("mtbf", "0"));
  if (!mtbf.ok() || *mtbf < 0) {
    return UsageError(kServeSimUsage,
                      "--mtbf must be a non-negative number of seconds "
                      "(0 disables faults), got '" + args.Get("mtbf", "0") +
                          "'");
  }
  StatusOr<double> mttr = ParseFiniteDouble(args.Get("mttr", "2"));
  if (!mttr.ok() || *mttr <= 0) {
    return UsageError(kServeSimUsage,
                      "--mttr must be a positive number of seconds, got '" +
                          args.Get("mttr", "2") + "'");
  }
  StatusOr<int> retries = ParseInt(args.Get("retries", "3"));
  if (!retries.ok() || *retries < 0) {
    return UsageError(kServeSimUsage,
                      "--retries must be a non-negative integer, got '" +
                          args.Get("retries", "3") + "'");
  }
  StatusOr<int> runs = ParseInt(args.Get("runs", "1"));
  if (!runs.ok() || *runs < 1) {
    return UsageError(kServeSimUsage,
                      "--runs must be a positive integer, got '" +
                          args.Get("runs", "1") + "'");
  }
  StatusOr<int> jobs = ParseInt(args.Get("jobs", "0"));
  if (!jobs.ok() || *jobs < 0) {
    return UsageError(kServeSimUsage,
                      "--jobs must be a non-negative integer, got '" +
                          args.Get("jobs", "0") + "'");
  }
  StatusOr<int> queue_cap = ParseInt(args.Get("queue-cap", "0"));
  if (!queue_cap.ok() || *queue_cap < 0) {
    return UsageError(kServeSimUsage,
                      "--queue-cap must be a non-negative integer "
                      "(0 = unbounded), got '" + args.Get("queue-cap", "0") +
                          "'");
  }
  StatusOr<double> slo_ms = ParseFiniteDouble(args.Get("slo-ms", "0"));
  if (!slo_ms.ok() || *slo_ms < 0) {
    return UsageError(kServeSimUsage,
                      "--slo-ms must be a non-negative number "
                      "(0 = no SLO), got '" + args.Get("slo-ms", "0") + "'");
  }
  StatusOr<int> breaker_failures =
      ParseInt(args.Get("breaker-failures", "0"));
  if (!breaker_failures.ok() || *breaker_failures < 0) {
    return UsageError(kServeSimUsage,
                      "--breaker-failures must be a non-negative integer "
                      "(0 = breakers off), got '" +
                          args.Get("breaker-failures", "0") + "'");
  }
  StatusOr<double> breaker_cooldown =
      ParseFiniteDouble(args.Get("breaker-cooldown-ms", "1000"));
  if (!breaker_cooldown.ok() || *breaker_cooldown < 0) {
    return UsageError(kServeSimUsage,
                      "--breaker-cooldown-ms must be a non-negative number, "
                      "got '" + args.Get("breaker-cooldown-ms", "1000") +
                          "'");
  }
  StatusOr<int> breaker_probes = ParseInt(args.Get("breaker-probes", "1"));
  if (!breaker_probes.ok() || *breaker_probes < 1) {
    return UsageError(kServeSimUsage,
                      "--breaker-probes must be a positive integer, got '" +
                          args.Get("breaker-probes", "1") + "'");
  }

  std::vector<simsys::DispatchPolicy> policies;
  if (int rc = ParsePolicyFlag(args, kServeSimUsage, &policies)) return rc;

  // --- Service-time matrices: truth from the hardware oracle, predictions
  // from the bundle (when given, loadable, and canary-clean). The bundle
  // goes through the registry's promote gates — integrity validation plus
  // finite canary predictions on the job networks — so a corrupt or
  // insane bundle degrades dispatch instead of failing the simulation.
  models::BundleRegistry registry;
  const std::string model_dir = args.Get("model", "");
  if (!model_dir.empty()) {
    models::CanaryOptions canary;
    canary.probe_networks = networks;
    canary.batch = *batch;
    const Status promoted = registry.TryPromote(model_dir, canary);
    if (!promoted.ok()) {
      std::fprintf(stderr,
                   "gpuperf: warning: %s; dispatch degrades to "
                   "least-outstanding\n",
                   promoted.message().c_str());
    }
  }
  const std::shared_ptr<const models::KwModel> kw = registry.Snapshot();
  gpuexec::HardwareOracle oracle;
  gpuexec::Profiler profiler(oracle);
  std::vector<std::vector<double>> truth, predicted;
  for (const dnn::Network& network : networks) {
    std::vector<double> t;
    for (const gpuexec::GpuSpec* gpu : gpus) {
      t.push_back(profiler.MeasureE2eUs(network, *gpu, *batch));
    }
    truth.push_back(std::move(t));
  }
  if (kw != nullptr) {
    // One batched PredictMany sweep over compiled plans fills the whole
    // matrix; uncovered (network, GPU) cells come back NaN, so those
    // decisions degrade while the rest keep using the model.
    simsys::ServingMatrixBuffer matrix_buffer;
    simsys::FillPredictedServingMatrix(*kw, networks, gpus, *batch,
                                       matrix_buffer, predicted);
  }
  const std::vector<double> mix(networks.size(), 1.0);

  // --- The simulation grid (policy x run); SimulateServingGrid fills
  // pre-sized slots in parallel so the output is identical for every
  // --jobs value.
  std::vector<simsys::ServingGridCell> cells;
  for (simsys::DispatchPolicy policy : policies) {
    for (int run = 0; run < *runs; ++run) {
      cells.push_back(simsys::ServingGridCell{
          policy, static_cast<std::uint64_t>(*seed) + run});
    }
  }
  simsys::ServingConfig base_config;
  base_config.arrival_rate_per_s = *rate;
  base_config.duration_s = *duration;
  base_config.faults.mtbf_s = *mtbf;
  base_config.faults.mttr_s = *mttr;
  base_config.retry.max_retries = *retries;
  base_config.queue_cap = *queue_cap;
  base_config.slo_ms = *slo_ms;
  base_config.breaker.failure_threshold = *breaker_failures;
  base_config.breaker.cooldown_ms = *breaker_cooldown;
  base_config.breaker.half_open_probes = *breaker_probes;
  if (int rc = ParseResilienceFlags(args, kServeSimUsage,
                                    ResilienceDefaults{}, &base_config)) {
    return rc;
  }
  if (int rc = ParseChaosFlags(args, kServeSimUsage, &base_config)) {
    return rc;
  }
  gpuexec::DriftSchedule drift;
  if (int rc = ParseDriftFlags(args, kServeSimUsage, pool, *duration, &drift)) {
    return rc;
  }
  if (!drift.empty()) base_config.drift = &drift;

  const std::string metrics_out = args.Get("metrics-out", "");
  const std::string trace_out = args.Get("trace-out", "");
  const std::string timeline_out = args.Get("timeline-out", "");
  const std::string observations_out = args.Get("observations-out", "");
  double timeline_period_ms = 0;
  if (int rc = ParsePositiveFlag(args, kServeSimUsage, "timeline-period-ms",
                                 "100", &timeline_period_ms)) {
    return rc;
  }
  base_config.recorder_config.sample_period_us =
      static_cast<long long>(timeline_period_ms * 1e3);
  obs::ChromeTraceWriter trace_writer;
  obs::FlightTimeline timeline;
  const std::vector<StatusOr<simsys::ServingResult>> grid =
      simsys::SimulateServingGrid(truth, predicted, mix, base_config, cells,
                                  *jobs,
                                  trace_out.empty() ? nullptr : &trace_writer,
                                  timeline_out.empty() ? nullptr : &timeline);

  TextTable table;
  table.SetHeader({"policy", "seed", "p50 (ms)", "p99 (ms)", "completed",
                   "dropped", "shed", "miss", "SLO", "retries", "trips",
                   "degraded", "avail"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!grid[i].ok()) return UserError(grid[i].status());
    const simsys::ServingResult& r = *grid[i];
    double avail = 0;
    for (double a : r.gpu_availability) avail += a;
    avail /= static_cast<double>(r.gpu_availability.size());
    table.AddRow({simsys::DispatchPolicyName(cells[i].policy),
                  Format("%llu", (unsigned long long)cells[i].seed),
                  Format("%.1f", r.p50_ms), Format("%.1f", r.p99_ms),
                  Format("%d", r.completed), Format("%d", r.dropped),
                  Format("%d", r.shed_on_admission),
                  Format("%d", r.deadline_misses),
                  Format("%.1f%%", 100 * r.slo_attainment),
                  Format("%d", r.retries), Format("%d", r.breaker_opens),
                  Format("%.0f%%", 100 * r.degraded_dispatch_fraction),
                  Format("%.1f%%", 100 * avail)});
  }
  table.Print();
  if (predicted.empty()) {
    std::printf("\n(no model bundle: predicted-least-load served every "
                "decision via its least-outstanding fallback)\n");
  }
  if (!trace_out.empty()) {
    const Status written = trace_writer.WriteFile(trace_out);
    if (!written.ok()) return UserError(written);
  }
  if (!timeline_out.empty()) {
    const Status written = timeline.WriteCsv(timeline_out);
    if (!written.ok()) return UserError(written);
  }
  if (!observations_out.empty()) {
    // One row per (network, GPU): the oracle service time every cell
    // used as truth, plus the model's prediction when a bundle loaded.
    CsvWriter writer(observations_out);
    writer.WriteRow({"network", "gpu", "batch", "observed_us",
                     "predicted_us"});
    for (std::size_t n = 0; n < networks.size(); ++n) {
      for (std::size_t g = 0; g < gpus.size(); ++g) {
        writer.WriteRow({networks[n].name(), gpus[g]->name,
                         Format("%lld", (long long)*batch),
                         Format("%.9g", truth[n][g]),
                         predicted.empty() ? ""
                                           : Format("%.9g", predicted[n][g])});
      }
    }
  }
  if (!metrics_out.empty()) {
    const Status written =
        obs::MetricsRegistry::Global().WriteSnapshot(metrics_out);
    if (!written.ok()) return UserError(written);
  }
  return 0;
}

// --- gpuperf chaos: scenario sweep + invariant checking -----------------

/** One chaos scenario preset; its knobs scale with the simulated
 *  duration so every preset produces multiple fault episodes per cell. */
struct ChaosScenario {
  const char* name;
  void (*apply)(double duration_s, simsys::ServingConfig* config);
};

const ChaosScenario kChaosScenarios[] = {
    {"outage",
     [](double d, simsys::ServingConfig* c) {
       c->faults.mtbf_s = d / 3;
       c->faults.mttr_s = d / 10;
     }},
    {"gray",
     [](double d, simsys::ServingConfig* c) {
       c->chaos.gray_mtbf_s = d / 3;
       c->chaos.gray_mttr_s = d / 5;
       c->chaos.gray_factor = 4;
     }},
    {"domain",
     [](double d, simsys::ServingConfig* c) {
       c->chaos.host.size = 2;
       c->chaos.host.mtbf_s = d;
       c->chaos.host.mttr_s = d / 10;
       c->chaos.host.factor = 0;
     }},
    {"flap",
     [](double d, simsys::ServingConfig* c) {
       c->chaos.flap_mtbf_s = d / 2;
       c->chaos.flap_count = 5;
       c->chaos.flap_period_s = 0.2;
       c->chaos.flap_down_s = 0.05;
     }},
};

/**
 * Checks one cell's resilience invariants; returns "" when all hold,
 * else a one-line description of the first violation. `config` must be
 * the exact per-cell config the simulator saw (policy and seeds
 * applied), because the breaker check reconstructs the cell's
 * deterministic outage timeline from it.
 */
std::string CheckChaosCell(const simsys::ServingConfig& config,
                           std::size_t pool_size,
                           const simsys::ServingResult& r,
                           double min_avail) {
  if (r.hedges_won > r.hedges_issued) {
    return Format("hedges_won %d > hedges_issued %d", r.hedges_won,
                  r.hedges_issued);
  }
  // Availability floor: resilience must keep the pool serving even
  // while the scenario injects faults.
  double avail = 0;
  for (double a : r.gpu_availability) avail += a;
  avail /= static_cast<double>(r.gpu_availability.size());
  if (avail < min_avail) {
    return Format("mean availability %.3f below the --min-avail floor %.3f",
                  avail, min_avail);
  }
  // Retry-budget bound: the token bucket structurally caps retries at
  // burst + budget x completions, so a mass failure cannot ignite a
  // retry storm.
  if (config.retry_budget > 0) {
    const double bound = config.retry_budget_burst +
                         config.retry_budget * r.completed + 1e-9;
    if (r.retries > bound) {
      return Format("retries %d exceed the budget bound %.1f "
                    "(burst %.0f + %.2f x %d completions)",
                    r.retries, bound, config.retry_budget_burst,
                    config.retry_budget, r.completed);
    }
  }
  // Breaker re-close: a breaker may still be open at the horizon only
  // on a GPU whose deterministic outage timeline has an outage near the
  // end (failure detection, the cooldown, and a half-open probe all
  // take time). Breakers open exclusively on outage-caused failures, so
  // a stuck-open breaker on an outage-free tail means re-close broke.
  if (config.breaker.failure_threshold > 0 && r.breakers_open_at_end > 0) {
    const double horizon_us = config.duration_s * 1e6;
    const double window_us = 2 * config.breaker.cooldown_ms * 1e3 + 2e6;
    const FaultPlan base_plan(pool_size, horizon_us, config.faults);
    ChaosPlan chaos;
    const FaultPlan* outages = &base_plan;
    if (ChaosConfigEnabled(config.chaos)) {
      chaos = ChaosPlan(pool_size, horizon_us, config.chaos, &base_plan);
      outages = &chaos.outage_plan();
    }
    int excused = 0;
    for (std::size_t g = 0; g < pool_size; ++g) {
      if (outages->FirstOutageIn(g, std::max(0.0, horizon_us - window_us),
                                 horizon_us) != nullptr) {
        ++excused;
      }
    }
    if (r.breakers_open_at_end > excused) {
      return Format("%d breaker(s) still open at the horizon but only %d "
                    "GPU(s) had an outage in the final %.1f s — breakers "
                    "failed to re-close after their fault healed",
                    r.breakers_open_at_end, excused, window_us / 1e6);
    }
  }
  return "";
}

int CmdChaos(const Args& args) {
  if (WantsHelp(args, kChaosUsage)) return 0;
  const std::string unknown = args.UnknownFlag(
      {"pool", "networks", "batch", "rate", "duration", "seed", "runs",
       "jobs", "scenarios", "policy", "retries", "hedge-factor",
       "retry-budget", "retry-burst", "adaptive-detect",
       "breaker-failures", "breaker-cooldown-ms", "min-avail",
       "metrics-out", "trace-out", "timeline-out"});
  if (!unknown.empty()) {
    return UsageError(kChaosUsage, "unknown flag --" + unknown);
  }

  std::vector<std::string> pool =
      Split(args.Get("pool", "A40,TITAN RTX,V100,A100"), ',');
  std::vector<const gpuexec::GpuSpec*> gpus;
  for (const std::string& name : pool) {
    const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(name);
    if (gpu == nullptr) {
      return UserError("unknown GPU '" + name +
                       "' (run `gpuperf gpus` for the list)");
    }
    gpus.push_back(gpu);
  }
  std::vector<dnn::Network> networks;
  for (const std::string& name :
       Split(args.Get("networks", "resnet18,resnet50"), ',')) {
    StatusOr<dnn::Network> net = zoo::TryBuildByName(name);
    if (!net.ok()) return UserError(net.status());
    networks.push_back(std::move(net).value());
  }

  StatusOr<long long> batch = ParseInt64(args.Get("batch", "16"));
  if (!batch.ok() || *batch < 1) {
    return UsageError(kChaosUsage, "--batch must be a positive integer, "
                                   "got '" + args.Get("batch", "16") + "'");
  }
  double rate = 0, duration = 0, min_avail = 0, breaker_cooldown = 0;
  int seed = 0, runs = 0, jobs = 0, retries = 0, breaker_failures = 0;
  if (int rc = ParsePositiveFlag(args, kChaosUsage, "rate", "80", &rate)) {
    return rc;
  }
  if (int rc = ParsePositiveFlag(args, kChaosUsage, "duration", "10",
                                 &duration)) {
    return rc;
  }
  if (int rc = ParseCountFlag(args, kChaosUsage, "seed", "1", 0, &seed)) {
    return rc;
  }
  if (int rc = ParseCountFlag(args, kChaosUsage, "runs", "1", 1, &runs)) {
    return rc;
  }
  if (int rc = ParseCountFlag(args, kChaosUsage, "jobs", "0", 0, &jobs)) {
    return rc;
  }
  if (int rc = ParseCountFlag(args, kChaosUsage, "retries", "3", 0,
                              &retries)) {
    return rc;
  }
  if (int rc = ParseCountFlag(args, kChaosUsage, "breaker-failures", "3", 0,
                              &breaker_failures)) {
    return rc;
  }
  if (int rc = ParseNonNegativeFlag(args, kChaosUsage,
                                    "breaker-cooldown-ms", "500",
                                    &breaker_cooldown)) {
    return rc;
  }
  if (int rc = ParseNonNegativeFlag(args, kChaosUsage, "min-avail", "0.5",
                                    &min_avail)) {
    return rc;
  }
  if (min_avail > 1) {
    return UsageError(kChaosUsage, "--min-avail must be in [0, 1], got '" +
                                       args.Get("min-avail", "0.5") + "'");
  }
  std::vector<simsys::DispatchPolicy> policies;
  if (int rc = ParsePolicyFlag(args, kChaosUsage, &policies)) return rc;
  std::vector<const ChaosScenario*> scenarios;
  for (const std::string& name :
       Split(args.Get("scenarios", "outage,gray,domain,flap"), ',')) {
    const ChaosScenario* found = nullptr;
    for (const ChaosScenario& scenario : kChaosScenarios) {
      if (name == scenario.name) found = &scenario;
    }
    if (found == nullptr) {
      return UsageError(kChaosUsage,
                        "--scenarios must be a comma-separated subset of "
                        "outage,gray,domain,flap; got '" + name + "'");
    }
    scenarios.push_back(found);
  }

  // The resilience stack under test, shared by every scenario. The
  // deep semantic checks (e.g. gray_factor > 1) live in the simulator's
  // ValidateInputs and surface as one-line errors, never aborts.
  simsys::ServingConfig resilient;
  resilient.arrival_rate_per_s = rate;
  resilient.duration_s = duration;
  resilient.retry.max_retries = retries;
  resilient.breaker.failure_threshold = breaker_failures;
  resilient.breaker.cooldown_ms = breaker_cooldown;
  const ResilienceDefaults chaos_defaults = {"1.5", "0.5", "10", "0.99"};
  if (int rc = ParseResilienceFlags(args, kChaosUsage, chaos_defaults,
                                    &resilient)) {
    return rc;
  }

  // Truth from the hardware oracle; predictions are the same matrix —
  // the oracle as its own predictor — so a hedge fires exactly when a
  // chaos slowdown pushes a job past hedge_trigger_factor x truth.
  gpuexec::HardwareOracle oracle;
  gpuexec::Profiler profiler(oracle);
  std::vector<std::vector<double>> truth;
  for (const dnn::Network& network : networks) {
    std::vector<double> t;
    for (const gpuexec::GpuSpec* gpu : gpus) {
      t.push_back(profiler.MeasureE2eUs(network, *gpu, *batch));
    }
    truth.push_back(std::move(t));
  }
  const std::vector<std::vector<double>>& predicted = truth;
  const std::vector<double> mix(networks.size(), 1.0);

  std::vector<simsys::ServingGridCell> cells;
  for (simsys::DispatchPolicy policy : policies) {
    for (int run = 0; run < runs; ++run) {
      cells.push_back(simsys::ServingGridCell{
          policy, static_cast<std::uint64_t>(seed) + run});
    }
  }

  const std::string metrics_out = args.Get("metrics-out", "");
  const std::string trace_out = args.Get("trace-out", "");
  const std::string timeline_out = args.Get("timeline-out", "");
  obs::ChromeTraceWriter trace_writer;
  obs::FlightTimeline timeline;
  TextTable table;
  table.SetHeader({"scenario", "policy", "seed", "p50 (ms)", "p99 (ms)",
                   "done", "drop", "shed", "retry", "suppr", "hedge", "won",
                   "trips", "open", "avail", "check"});
  std::string violation;  // first invariant violation, already located
  for (const ChaosScenario* scenario : scenarios) {
    simsys::ServingConfig base_config = resilient;
    scenario->apply(duration, &base_config);
    const simsys::ServingCounters before = simsys::SnapshotServingCounters();
    const std::vector<StatusOr<simsys::ServingResult>> grid =
        simsys::SimulateServingGrid(
            truth, predicted, mix, base_config, cells, jobs,
            trace_out.empty() ? nullptr : &trace_writer,
            timeline_out.empty() ? nullptr : &timeline);
    long long sum_completed = 0, sum_dropped = 0, sum_shed = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!grid[i].ok()) return UserError(grid[i].status());
      const simsys::ServingResult& r = *grid[i];
      sum_completed += r.completed;
      sum_dropped += r.dropped;
      sum_shed += r.shed_on_admission;
      simsys::ServingConfig cell_config = base_config;
      cell_config.policy = cells[i].policy;
      cell_config.seed = cells[i].seed;
      cell_config.faults.seed = cells[i].seed;
      cell_config.chaos.seed = cells[i].seed;
      const std::string failed =
          CheckChaosCell(cell_config, pool.size(), r, min_avail);
      double avail = 0;
      for (double a : r.gpu_availability) avail += a;
      avail /= static_cast<double>(r.gpu_availability.size());
      table.AddRow({scenario->name,
                    simsys::DispatchPolicyName(cells[i].policy),
                    Format("%llu", (unsigned long long)cells[i].seed),
                    Format("%.1f", r.p50_ms), Format("%.1f", r.p99_ms),
                    Format("%d", r.completed), Format("%d", r.dropped),
                    Format("%d", r.shed_on_admission),
                    Format("%d", r.retries),
                    Format("%d", r.retries_suppressed),
                    Format("%d", r.hedges_issued),
                    Format("%d", r.hedges_won),
                    Format("%d", r.breaker_opens),
                    Format("%d", r.breakers_open_at_end),
                    Format("%.1f%%", 100 * avail),
                    failed.empty() ? "OK" : "FAIL"});
      if (!failed.empty() && violation.empty()) {
        violation = Format(
            "chaos invariant violated: scenario=%s policy=%s seed=%llu: %s",
            scenario->name,
            simsys::DispatchPolicyName(cells[i].policy).c_str(),
            (unsigned long long)cells[i].seed, failed.c_str());
      }
    }
    // Accounting identity, cross-checked against the process-wide
    // serving counters: every arrival of this scenario's grid completed,
    // dropped, or was shed — nothing vanished.
    const simsys::ServingCounters after = simsys::SnapshotServingCounters();
    const long long arrived =
        static_cast<long long>(after.jobs_arrived - before.jobs_arrived);
    if (arrived != sum_completed + sum_dropped + sum_shed &&
        violation.empty()) {
      violation = Format(
          "chaos invariant violated: scenario=%s: %lld arrivals != "
          "%lld completed + %lld dropped + %lld shed",
          scenario->name, arrived, sum_completed, sum_dropped, sum_shed);
    }
  }
  table.Print();
  if (!trace_out.empty()) {
    const Status written = trace_writer.WriteFile(trace_out);
    if (!written.ok()) return UserError(written);
  }
  if (!timeline_out.empty()) {
    const Status written = timeline.WriteCsv(timeline_out);
    if (!written.ok()) return UserError(written);
  }
  if (!metrics_out.empty()) {
    const Status written =
        obs::MetricsRegistry::Global().WriteSnapshot(metrics_out);
    if (!written.ok()) return UserError(written);
  }
  if (!violation.empty()) return UserError(violation);
  std::printf("chaos: all invariants held across %zu scenario(s) x %zu "
              "cell(s)\n",
              scenarios.size(), cells.size());
  return 0;
}

int CmdBundleCheck(const Args& args) {
  if (WantsHelp(args, kBundleCheckUsage)) return 0;
  const std::string unknown = args.UnknownFlag(
      {"candidate", "baseline", "networks", "gpus", "batch", "tolerance"});
  if (!unknown.empty()) {
    return UsageError(kBundleCheckUsage, "unknown flag --" + unknown);
  }
  const std::string candidate = args.Get("candidate", "");
  if (candidate.empty()) {
    return UsageError(kBundleCheckUsage, "--candidate DIR is required");
  }
  StatusOr<long long> batch = ParseInt64(args.Get("batch", "16"));
  if (!batch.ok() || *batch < 1) {
    return UsageError(kBundleCheckUsage,
                      "--batch must be a positive integer, got '" +
                          args.Get("batch", "16") + "'");
  }
  StatusOr<double> tolerance = ParseFiniteDouble(args.Get("tolerance", "0.5"));
  if (!tolerance.ok() || *tolerance < 0) {
    return UsageError(kBundleCheckUsage,
                      "--tolerance must be a non-negative number, got '" +
                          args.Get("tolerance", "0.5") + "'");
  }

  models::CanaryOptions canary;
  canary.batch = *batch;
  canary.tolerance = *tolerance;
  for (const std::string& name :
       Split(args.Get("networks", "resnet18,resnet50,mobilenet_v2"), ',')) {
    StatusOr<dnn::Network> net = zoo::TryBuildByName(name);
    if (!net.ok()) return UserError(net.status());
    canary.probe_networks.push_back(std::move(net).value());
  }
  const std::string gpu_list = args.Get("gpus", "");
  if (!gpu_list.empty()) canary.gpus = Split(gpu_list, ',');

  // The baseline (when given) becomes the serving generation the
  // candidate's canary drift is measured against — exactly the hot-reload
  // sequence a serving process would run.
  models::BundleRegistry registry;
  const std::string baseline = args.Get("baseline", "");
  if (!baseline.empty()) {
    models::CanaryOptions integrity_only;
    const Status loaded = registry.TryPromote(baseline, integrity_only);
    if (!loaded.ok()) {
      return UserError(
          Status(loaded).Annotate("--baseline failed its own validation"));
    }
  }
  const Status promoted = registry.TryPromote(candidate, canary);
  if (!promoted.ok()) return UserError(promoted);
  const models::BundleRegistryCounters counters = registry.counters();
  std::printf("bundle-check: PROMOTED '%s' (generation %llu, "
              "%zu probe network(s) @BS%lld, tolerance %.0f%%)\n",
              candidate.c_str(), (unsigned long long)counters.generation,
              canary.probe_networks.size(), (long long)*batch,
              100 * *tolerance);
  return 0;
}

int CmdDriftReport(const Args& args) {
  if (WantsHelp(args, kDriftReportUsage)) return 0;
  const std::string unknown = args.UnknownFlag(
      {"model", "work-dir", "pool", "networks", "batch", "rate",
       "epoch-seconds", "epochs", "seed", "drift-gpu", "drift-at",
       "drift-ramp", "drift-factor", "drift-scope", "drift-rate",
       "drift-sigma", "drift-seed", "metrics-out", "timeline-out"});
  if (!unknown.empty()) {
    return UsageError(kDriftReportUsage, "unknown flag --" + unknown);
  }
  const std::string model_dir = args.Get("model", "");
  if (model_dir.empty()) {
    return UsageError(kDriftReportUsage, "--model DIR is required");
  }

  std::vector<std::string> pool =
      Split(args.Get("pool", "A40,TITAN RTX,V100"), ',');
  std::vector<const gpuexec::GpuSpec*> gpus;
  for (const std::string& name : pool) {
    const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(name);
    if (gpu == nullptr) {
      return UserError("unknown GPU '" + name +
                       "' (run `gpuperf gpus` for the list)");
    }
    gpus.push_back(gpu);
  }
  std::vector<dnn::Network> networks;
  for (const std::string& name :
       Split(args.Get("networks", "resnet18,resnet50,mobilenet_v2"), ',')) {
    StatusOr<dnn::Network> net = zoo::TryBuildByName(name);
    if (!net.ok()) return UserError(net.status());
    networks.push_back(std::move(net).value());
  }

  StatusOr<long long> batch = ParseInt64(args.Get("batch", "16"));
  if (!batch.ok() || *batch < 1) {
    return UsageError(kDriftReportUsage,
                      "--batch must be a positive integer, got '" +
                          args.Get("batch", "16") + "'");
  }
  StatusOr<double> rate = ParseFiniteDouble(args.Get("rate", "80"));
  if (!rate.ok() || *rate <= 0) {
    return UsageError(kDriftReportUsage,
                      "--rate must be a positive number, got '" +
                          args.Get("rate", "80") + "'");
  }
  StatusOr<double> epoch_s = ParseFiniteDouble(args.Get("epoch-seconds", "5"));
  if (!epoch_s.ok() || *epoch_s <= 0) {
    return UsageError(kDriftReportUsage,
                      "--epoch-seconds must be a positive number, got '" +
                          args.Get("epoch-seconds", "5") + "'");
  }
  StatusOr<int> epochs = ParseInt(args.Get("epochs", "10"));
  if (!epochs.ok() || *epochs < 1) {
    return UsageError(kDriftReportUsage,
                      "--epochs must be a positive integer, got '" +
                          args.Get("epochs", "10") + "'");
  }
  StatusOr<long long> seed = ParseInt64(args.Get("seed", "1"));
  if (!seed.ok() || *seed < 0) {
    return UsageError(kDriftReportUsage,
                      "--seed must be a non-negative integer, got '" +
                          args.Get("seed", "1") + "'");
  }

  gpuexec::DriftSchedule drift;
  if (int rc = ParseDriftFlags(args, kDriftReportUsage, pool,
                               *epoch_s * *epochs, &drift)) {
    return rc;
  }

  // Seed the registry with the initial bundle through the same promote
  // gate a serving process uses; a bundle that cannot serve is a user
  // error here (drift-report is about healing a live model).
  models::BundleRegistry registry;
  models::CanaryOptions canary;
  canary.probe_networks = networks;
  canary.batch = *batch;
  const Status promoted = registry.TryPromote(model_dir, canary);
  if (!promoted.ok()) return UserError(promoted);

  gpuexec::HardwareOracle oracle;
  gpuexec::Profiler profiler(oracle);
  std::vector<std::vector<double>> truth;
  for (const dnn::Network& network : networks) {
    std::vector<double> t;
    for (const gpuexec::GpuSpec* gpu : gpus) {
      t.push_back(profiler.MeasureE2eUs(network, *gpu, *batch));
    }
    truth.push_back(std::move(t));
  }
  const std::vector<double> mix(networks.size(), 1.0);

  models::LifecycleOptions lifecycle;
  lifecycle.work_dir = args.Get("work-dir", model_dir + "-heal");
  models::LifecycleController controller(&registry, model_dir, canary,
                                         lifecycle);

  simsys::SelfHealingConfig config;
  config.serving.arrival_rate_per_s = *rate;
  config.serving.duration_s = *epoch_s;
  config.serving.seed = static_cast<std::uint64_t>(*seed);
  config.serving.policy = simsys::DispatchPolicy::kPredictedLeastLoad;
  if (!drift.empty()) config.serving.drift = &drift;
  config.epochs = *epochs;
  config.batch = *batch;
  // One recorder spans every epoch: the lifecycle copies the serving
  // config per epoch advancing time_origin_us, and the recorder
  // re-anchors at each epoch's origin, so the timeline is one
  // continuous monotone document across the whole lifecycle.
  const std::string timeline_out = args.Get("timeline-out", "");
  obs::FlightRecorder recorder;
  if (!timeline_out.empty()) config.serving.recorder = &recorder;

  StatusOr<simsys::SelfHealingResult> result = simsys::RunSelfHealingServing(
      networks, gpus, truth, mix, &registry, &controller, config);
  if (!result.ok()) return UserError(result.status());

  TextTable table;
  std::vector<std::string> header = {"epoch", "state", "completed"};
  for (const std::string& name : pool) header.push_back(name + " |lnR|");
  table.SetHeader(header);
  for (std::size_t e = 0; e < result->epochs.size(); ++e) {
    const simsys::SelfHealingEpoch& epoch = result->epochs[e];
    std::vector<std::string> row = {
        Format("%zu", e), models::LifecycleStateName(epoch.state),
        Format("%d", epoch.completed)};
    for (std::size_t g = 0; g < pool.size(); ++g) {
      row.push_back(Format("%.4f", epoch.mean_abs_log_ratio[g]));
    }
    table.AddRow(row);
  }
  table.Print();

  // Parseable summary (scripts/drift_smoke.sh consumes these lines):
  // per-GPU peak vs final epoch residual, then the lifecycle verdict.
  for (std::size_t g = 0; g < pool.size(); ++g) {
    double peak = 0;
    for (const simsys::SelfHealingEpoch& epoch : result->epochs) {
      peak = std::max(peak, epoch.mean_abs_log_ratio[g]);
    }
    const double final_residual =
        result->epochs.back().mean_abs_log_ratio[g];
    std::printf("drift-report: gpu=%s peak=%.4f final=%.4f\n",
                pool[g].c_str(), peak, final_residual);
  }
  std::printf("drift-report: final_state=%s refits=%llu promotions=%llu "
              "rollbacks=%llu shadow_rejections=%llu "
              "canary_rejections=%llu\n",
              models::LifecycleStateName(result->final_state),
              (unsigned long long)result->counters.refits,
              (unsigned long long)result->counters.promotions,
              (unsigned long long)result->counters.rollbacks,
              (unsigned long long)result->counters.shadow_rejections,
              (unsigned long long)result->counters.canary_rejections);

  if (!timeline_out.empty()) {
    obs::FlightTimeline timeline;
    timeline.Append(recorder, "self-healing");
    const Status written = timeline.WriteCsv(timeline_out);
    if (!written.ok()) return UserError(written);
  }
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!metrics_out.empty()) {
    const Status written =
        obs::MetricsRegistry::Global().WriteSnapshot(metrics_out);
    if (!written.ok()) return UserError(written);
  }
  return 0;
}

// --- gpuperf timeline: render a flight-recorder timeline CSV ------------

/** The field summarized/plotted by default for each sample kind. */
std::string DefaultTimelineField(const std::string& kind) {
  if (kind == "counter") return "delta";
  if (kind == "gauge") return "value";
  return "p99";
}

int CmdTimeline(const Args& args) {
  if (WantsHelp(args, kTimelineUsage)) return 0;
  const std::string unknown = args.UnknownFlag(
      {"in", "metric", "source", "field", "ascii", "width"});
  if (!unknown.empty()) {
    return UsageError(kTimelineUsage, "unknown flag --" + unknown);
  }
  const std::string in = args.Get("in", "");
  if (in.empty()) return UsageError(kTimelineUsage, "--in PATH is required");
  int width = 0;
  if (int rc = ParseCountFlag(args, kTimelineUsage, "width", "72", 16,
                              &width)) {
    return rc;
  }
  StatusOr<CsvTable> parsed = TryReadCsv(in);
  if (!parsed.ok()) return UserError(parsed.status());
  const CsvTable& csv = *parsed;
  std::size_t columns[6];
  const char* names[6] = {"t_us", "source", "metric", "kind", "field",
                          "value"};
  for (int i = 0; i < 6; ++i) {
    StatusOr<std::size_t> column = csv.FindColumn(names[i]);
    if (!column.ok()) {
      Status annotated = column.status();
      return UserError(annotated.Annotate("not a flight-recorder timeline"));
    }
    columns[i] = *column;
  }
  const std::size_t c_t = columns[0], c_source = columns[1],
                    c_metric = columns[2], c_kind = columns[3],
                    c_field = columns[4], c_value = columns[5];
  const std::string metric = args.Get("metric", "");
  const std::string source = args.Get("source", "");

  if (metric.empty()) {
    // Summary mode: one row per (source, metric) over its default field.
    struct Summary {
      std::string kind;
      std::size_t windows = 0;
      double min = 0, max = 0, last = 0;
    };
    std::map<std::pair<std::string, std::string>, Summary> groups;
    for (std::size_t i = 0; i < csv.rows.size(); ++i) {
      const std::vector<std::string>& row = csv.rows[i];
      if (!source.empty() && row[c_source] != source) continue;
      if (row[c_field] != DefaultTimelineField(row[c_kind])) continue;
      StatusOr<double> value = ParseFiniteDouble(row[c_value]);
      if (!value.ok()) {
        return UserError(csv.RowLocation(i) + ": non-numeric value '" +
                         row[c_value] + "'");
      }
      Summary& s = groups[{row[c_source], row[c_metric]}];
      if (s.windows == 0) {
        s.min = s.max = *value;
      } else {
        s.min = std::min(s.min, *value);
        s.max = std::max(s.max, *value);
      }
      s.kind = row[c_kind];
      s.last = *value;
      ++s.windows;
    }
    if (groups.empty()) {
      return UserError("no timeline rows" +
                       (source.empty() ? std::string()
                                       : " for source '" + source + "'") +
                       " in " + in);
    }
    TextTable table;
    table.SetHeader({"source", "metric", "kind", "field", "windows", "min",
                     "max", "last"});
    for (const auto& [key, s] : groups) {
      table.AddRow({key.first, key.second, s.kind,
                    DefaultTimelineField(s.kind), Format("%zu", s.windows),
                    Format("%g", s.min), Format("%g", s.max),
                    Format("%g", s.last)});
    }
    table.Print();
    return 0;
  }

  // Series mode: every (t_us, source) sample of one metric.
  std::string kind;
  std::vector<std::string> fields;  // first-appearance order
  struct SeriesRow {
    std::string t_us;
    std::string source;
    std::map<std::string, std::string> values;
  };
  std::vector<SeriesRow> series;
  for (const std::vector<std::string>& row : csv.rows) {
    if (row[c_metric] != metric) continue;
    if (!source.empty() && row[c_source] != source) continue;
    kind = row[c_kind];
    bool seen = false;
    for (const std::string& field : fields) seen |= field == row[c_field];
    if (!seen) fields.push_back(row[c_field]);
    if (series.empty() || series.back().t_us != row[c_t] ||
        series.back().source != row[c_source]) {
      series.push_back(SeriesRow{row[c_t], row[c_source], {}});
    }
    series.back().values[row[c_field]] = row[c_value];
  }
  if (series.empty()) {
    return UserError("metric '" + metric + "' not found in " + in +
                     " (run `gpuperf timeline --in " + in +
                     "` for the list)");
  }

  if (args.Get("ascii", "0") == "1") {
    const std::string field =
        args.Get("field", DefaultTimelineField(kind));
    // One plot series per source, sim time in seconds on the x axis.
    std::map<std::string, PlotSeries> by_source;
    for (const SeriesRow& row : series) {
      auto it = row.values.find(field);
      if (it == row.values.end()) {
        return UserError("metric '" + metric + "' has no field '" + field +
                         "'");
      }
      StatusOr<double> t = ParseFiniteDouble(row.t_us);
      StatusOr<double> value = ParseFiniteDouble(it->second);
      if (!t.ok() || !value.ok()) {
        return UserError("non-numeric timeline row for metric '" + metric +
                         "'");
      }
      PlotSeries& plot = by_source[row.source];
      plot.label = row.source;
      plot.x.push_back(*t / 1e6);
      plot.y.push_back(*value);
    }
    std::vector<PlotSeries> plots;
    for (auto& [name, plot] : by_source) {
      (void)name;
      plots.push_back(std::move(plot));
    }
    PlotOptions options;
    options.width = width;
    options.height = 12;
    options.x_label = "sim time (s)";
    options.y_label = field;
    options.title = metric;
    std::fputs(AsciiPlot(plots, options).c_str(), stdout);
    return 0;
  }

  TextTable table;
  std::vector<std::string> header = {"t_s", "source"};
  for (const std::string& field : fields) header.push_back(field);
  table.SetHeader(header);
  for (const SeriesRow& row : series) {
    StatusOr<double> t = ParseFiniteDouble(row.t_us);
    std::vector<std::string> cells = {
        t.ok() ? Format("%.3f", *t / 1e6) : row.t_us, row.source};
    for (const std::string& field : fields) {
      auto it = row.values.find(field);
      cells.push_back(it == row.values.end() ? "" : it->second);
    }
    table.AddRow(cells);
  }
  table.Print();
  return 0;
}

// --- gpuperf explain: prediction-error attribution ----------------------

/** Cluster ids are small ints; -1 marks layer-wise fallback terms. */
std::string ClusterName(int cluster_id) {
  return cluster_id < 0 ? "lw-fallback" : Format("cluster %d", cluster_id);
}

int CmdExplain(const Args& args) {
  if (WantsHelp(args, kExplainUsage)) return 0;
  const std::string unknown = args.UnknownFlag(
      {"model", "network", "gpu", "batch", "layer", "top", "observations"});
  if (!unknown.empty()) {
    return UsageError(kExplainUsage, "unknown flag --" + unknown);
  }
  const std::string model_dir = args.Get("model", "");
  const std::string network_name = args.Get("network", "");
  const std::string gpu_name = args.Get("gpu", "");
  if (model_dir.empty() || network_name.empty() || gpu_name.empty() ||
      args.flags.count("batch") == 0) {
    return UsageError(kExplainUsage,
                      "--model, --network, --gpu, and --batch are required");
  }
  StatusOr<long long> batch = ParseInt64(args.Get("batch", ""));
  if (!batch.ok() || *batch < 1) {
    return UsageError(kExplainUsage, "--batch must be a positive integer, "
                                     "got '" + args.Get("batch", "") + "'");
  }
  int top = 0;
  if (int rc = ParseCountFlag(args, kExplainUsage, "top", "10", 1, &top)) {
    return rc;
  }
  StatusOr<models::KwModel> kw = models::ModelIo::LoadKw(model_dir);
  if (!kw.ok()) return UserError(kw.status());
  StatusOr<dnn::Network> net = zoo::TryBuildByName(network_name);
  if (!net.ok()) return UserError(net.status());
  const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(gpu_name);
  if (gpu == nullptr) {
    return UserError("unknown GPU '" + gpu_name +
                     "' (run `gpuperf gpus` for the list)");
  }
  if (!kw->CoverageFor(*net, gpu->name).gpu_trained) {
    std::string trained;
    for (const std::string& name : kw->TrainedGpus()) {
      if (!trained.empty()) trained += ", ";
      trained += name;
    }
    return UserError("model bundle is not trained for GPU '" + gpu->name +
                     "' (trained: " + trained + ")");
  }

  const models::PredictionPlan* plan = kw->PlanFor(*net, *gpu);
  const models::PredictionBreakdown breakdown =
      models::ExplainPlan(*plan, *batch);
  std::printf("%s @BS%lld on %s: predicted %.3f ms "
              "(%zu layers, %zu terms, %zu clusters)\n\n",
              net->name().c_str(), (long long)*batch, gpu->name.c_str(),
              breakdown.total_us / 1e3, breakdown.layers.size(),
              breakdown.terms.size(), breakdown.clusters.size());

  // Top-K layers by contribution; ties break on plan order so the
  // table is deterministic.
  std::vector<const models::LayerContribution*> ranked;
  for (const models::LayerContribution& layer : breakdown.layers) {
    ranked.push_back(&layer);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const models::LayerContribution* a,
               const models::LayerContribution* b) {
              if (a->us != b->us) return a->us > b->us;
              return a->index < b->index;
            });
  TextTable layers;
  layers.SetHeader({"layer", "name", "ms", "share", "cumulative"});
  double cumulative = 0;
  for (std::size_t i = 0;
       i < ranked.size() && i < static_cast<std::size_t>(top); ++i) {
    cumulative += ranked[i]->share;
    layers.AddRow({Format("%zu", ranked[i]->index),
                   ranked[i]->label.empty() ? "(unnamed)" : ranked[i]->label,
                   Format("%.4f", ranked[i]->us / 1e3),
                   Format("%.1f%%", 100 * ranked[i]->share),
                   Format("%.1f%%", 100 * cumulative)});
  }
  layers.Print();
  if (ranked.size() > static_cast<std::size_t>(top)) {
    std::printf("(%zu more layers; raise --top to see them)\n",
                ranked.size() - static_cast<std::size_t>(top));
  }

  std::printf("\n");
  TextTable clusters;
  clusters.SetHeader({"cluster", "terms", "ms", "share"});
  for (const models::ClusterContribution& cc : breakdown.clusters) {
    clusters.AddRow({ClusterName(cc.cluster_id),
                     Format("%llu", (unsigned long long)cc.terms),
                     Format("%.4f", cc.us / 1e3),
                     Format("%.1f%%", 100 * cc.share)});
  }
  clusters.Print();

  const std::string layer_name = args.Get("layer", "");
  if (!layer_name.empty()) {
    TextTable terms;
    terms.SetHeader({"layer", "term", "cluster", "raw ms", "scaled ms",
                     "share"});
    bool found = false;
    for (std::size_t t = 0; t < breakdown.terms.size(); ++t) {
      const models::TermContribution& tc = breakdown.terms[t];
      if (tc.layer_label != layer_name) continue;
      found = true;
      terms.AddRow({Format("%zu", tc.layer), Format("%zu", t),
                    ClusterName(tc.cluster_id),
                    Format("%.4f", tc.raw_us / 1e3),
                    Format("%.4f", tc.scaled_us / 1e3),
                    Format("%.1f%%",
                           100 * (breakdown.total_us != 0
                                      ? tc.scaled_us / breakdown.total_us
                                      : 0.0))});
    }
    if (!found) {
      return UserError("network '" + net->name() + "' has no layer named '" +
                       layer_name + "' (run `gpuperf show " + net->name() +
                       "`)");
    }
    std::printf("\n");
    terms.Print();
  }

  const std::string observations = args.Get("observations", "");
  if (!observations.empty()) {
    StatusOr<CsvTable> parsed = TryReadCsv(observations);
    if (!parsed.ok()) return UserError(parsed.status());
    const CsvTable& csv = *parsed;
    StatusOr<std::size_t> c_network = csv.FindColumn("network");
    StatusOr<std::size_t> c_gpu = csv.FindColumn("gpu");
    StatusOr<std::size_t> c_batch = csv.FindColumn("batch");
    StatusOr<std::size_t> c_observed = csv.FindColumn("observed_us");
    if (!c_network.ok()) return UserError(c_network.status());
    if (!c_gpu.ok()) return UserError(c_gpu.status());
    if (!c_batch.ok()) return UserError(c_batch.status());
    if (!c_observed.ok()) return UserError(c_observed.status());
    double observed_sum = 0;
    std::size_t matched = 0;
    for (std::size_t i = 0; i < csv.rows.size(); ++i) {
      const std::vector<std::string>& row = csv.rows[i];
      if (row[*c_network] != net->name() || row[*c_gpu] != gpu->name ||
          row[*c_batch] != Format("%lld", (long long)*batch)) {
        continue;
      }
      StatusOr<double> observed = ParseFiniteDouble(row[*c_observed]);
      if (!observed.ok()) {
        return UserError(csv.RowLocation(i) + ": non-numeric observed_us '" +
                         row[*c_observed] + "'");
      }
      observed_sum += *observed;
      ++matched;
    }
    if (matched == 0) {
      return UserError(Format("no observation rows for %s on %s @BS%lld in ",
                              net->name().c_str(), gpu->name.c_str(),
                              (long long)*batch) +
                       observations);
    }
    const double observed_us = observed_sum / static_cast<double>(matched);
    const double residual_us = observed_us - breakdown.total_us;
    std::printf("\nobserved %.3f ms (%zu row(s)), predicted %.3f ms, "
                "residual %+.3f ms (%+.1f%%)\n",
                observed_us / 1e3, matched, breakdown.total_us / 1e3,
                residual_us / 1e3,
                breakdown.total_us != 0
                    ? 100 * residual_us / breakdown.total_us
                    : 0.0);
    const std::vector<models::ResidualAttribution> attributed =
        models::AttributeResiduals(breakdown, observed_us);
    // Largest |residual slice| first; ties break on cluster id.
    std::vector<const models::ResidualAttribution*> order;
    for (const models::ResidualAttribution& ra : attributed) {
      order.push_back(&ra);
    }
    std::sort(order.begin(), order.end(),
              [](const models::ResidualAttribution* a,
                 const models::ResidualAttribution* b) {
                const double am = std::abs(a->residual_us);
                const double bm = std::abs(b->residual_us);
                if (am != bm) return am > bm;
                return a->cluster_id < b->cluster_id;
              });
    TextTable attribution;
    attribution.SetHeader({"cluster", "share", "residual ms"});
    for (std::size_t i = 0;
         i < order.size() && i < static_cast<std::size_t>(top); ++i) {
      attribution.AddRow({ClusterName(order[i]->cluster_id),
                          Format("%.1f%%", 100 * order[i]->share),
                          Format("%+.4f", order[i]->residual_us / 1e3)});
    }
    attribution.Print();
  }
  return 0;
}

void Usage() {
  std::fputs(
      "usage: gpuperf <command> [options]\n"
      "  gpus                                  list supported GPUs\n"
      "  zoo [--family F]                      list zoo networks\n"
      "  show <network>                        network summary\n"
      "  dataset --out DIR [--gpus A,B] [--batch N] [--stride N]\n"
      "          [--training] [--jobs N]       run a measurement campaign\n"
      "  train --dataset DIR --out DIR         train + save a KW model\n"
      "  eval --dataset DIR                    train and report errors\n"
      "  predict --model DIR <net> <gpu> <bs>  predict execution time\n"
      "  roofline <network> <gpu> [batch]      per-layer roofline analysis\n"
      "  batch <network> <gpu>                 largest batch that fits\n"
      "  serve-sim [--model DIR] [--mtbf S] [--mttr S] [--retries N]\n"
      "            [--queue-cap N] [--slo-ms MS] [--breaker-failures N]\n"
      "            [--jobs N] [...]            fault-tolerant serving sim\n"
      "  chaos [--scenarios a,b] [--policy P] [--min-avail F]\n"
      "            [...]                       chaos sweep + invariant check\n"
      "  bundle-check --candidate DIR [--baseline DIR] [--tolerance F]\n"
      "            [...]                       validate + canary a bundle\n"
      "  drift-report --model DIR [--drift-gpu NAME] [--epochs N]\n"
      "            [...]                       self-healing lifecycle report\n"
      "  timeline --in PATH [--metric M] [--ascii]\n"
      "            [...]                       render a timeline CSV\n"
      "  explain --model DIR --network N --gpu G --batch B\n"
      "            [--observations CSV] [...]  decompose a prediction\n"
      "run `gpuperf <command> --help` semantics: any usage mistake prints\n"
      "the command's full flag list\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallProcessMetrics();
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  if (command == "gpus") return CmdGpus();
  if (command == "zoo") return CmdZoo(args);
  if (command == "show") return CmdShow(args);
  if (command == "dataset") return CmdDataset(args);
  if (command == "train") return CmdTrain(args);
  if (command == "eval") return CmdEval(args);
  if (command == "predict") return CmdPredict(args);
  if (command == "roofline") return CmdRoofline(args);
  if (command == "batch") return CmdBatch(args);
  if (command == "serve-sim") return CmdServeSim(args);
  if (command == "chaos") return CmdChaos(args);
  if (command == "bundle-check") return CmdBundleCheck(args);
  if (command == "drift-report") return CmdDriftReport(args);
  if (command == "timeline") return CmdTimeline(args);
  if (command == "explain") return CmdExplain(args);
  std::fprintf(stderr, "gpuperf: unknown command '%s'\n", command.c_str());
  Usage();
  return 1;
}
