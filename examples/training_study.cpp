// Walkthrough of the training-side extensions in one place: profile
// training steps, train a training-mode KW model, and use it to size a
// distributed-training deployment (data-parallel fabric and pipeline
// configuration) — all from network structure and Table 1 specs.
//
// Usage: training_study [network] [micro_batch]
//   e.g. training_study resnet50 16
//        training_study bert_base 8

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "dnn/memory.h"
#include "models/kw_model.h"
#include "simsys/data_parallel.h"
#include "simsys/pipeline_parallel.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "resnet50";
  const std::int64_t micro = argc > 2 ? std::atoll(argv[2]) : 16;

  // 1. Two campaigns on A100: forward-only and full training steps.
  std::printf("building inference + training campaigns (A100, BS %ld)...\n",
              (long)micro);
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = micro;
  dataset::Dataset fwd_data = dataset::BuildDataset(zoo::SmallZoo(8), options);
  options.workload = gpuexec::Workload::kTraining;
  dataset::Dataset step_data =
      dataset::BuildDataset(zoo::SmallZoo(8), options);
  models::KwModel fwd_model, step_model;
  fwd_model.Train(fwd_data, dataset::SplitByNetwork(fwd_data, 0.15, 1));
  step_model.Train(step_data, dataset::SplitByNetwork(step_data, 0.15, 1));

  // 2. Per-layer forward/backward/gradient profile of the target network.
  dnn::Network network = zoo::BuildByName(name);
  std::vector<double> forward_us, backward_us;
  std::vector<std::int64_t> gradient_bytes, activation_bytes;
  double fwd_total = 0, bwd_total = 0;
  for (const dnn::Layer& layer : network.layers()) {
    const double fwd = fwd_model.PredictLayerUs(layer, "A100", micro);
    const double step = step_model.PredictLayerUs(layer, "A100", micro);
    forward_us.push_back(fwd);
    backward_us.push_back(std::max(0.0, step - fwd));
    gradient_bytes.push_back(dnn::LayerWeightBytes(layer));
    activation_bytes.push_back(dnn::LayerOutputBytes(layer, micro));
    fwd_total += forward_us.back();
    bwd_total += backward_us.back();
  }
  std::printf("\n%s: predicted forward %.2f ms, backward %.2f ms per "
              "micro-batch; training footprint %s (fits a 40 GB A100 up "
              "to BS %ld)\n\n",
              name.c_str(), fwd_total / 1e3, bwd_total / 1e3,
              Engineering(static_cast<double>(
                              dnn::TrainingFootprintBytes(network, micro)))
                  .c_str(),
              (long)dnn::LargestFittingBatch(network, 40.0));

  // 3. Data parallelism: which fabric keeps scaling efficient?
  std::printf("data-parallel weak scaling (gradient-bucket overlap):\n");
  TextTable dp;
  dp.SetHeader({"GPUs", "4 GB/s", "16 GB/s", "64 GB/s", "300 GB/s"});
  for (int gpus : {2, 4, 8}) {
    std::vector<std::string> row{Format("%d", gpus)};
    for (double fabric : {4.0, 16.0, 64.0, 300.0}) {
      simsys::DataParallelConfig config;
      config.num_gpus = gpus;
      config.link_bandwidth_gbps = fabric;
      simsys::DataParallelResult result = simsys::SimulateDataParallelStep(
          forward_us, backward_us, gradient_bytes, config);
      row.push_back(Format("%.0f%%", 100 * result.scaling_efficiency));
    }
    dp.AddRow(row);
  }
  dp.Print();

  // 4. Pipeline parallelism: stages x micro-batches.
  std::printf("\npipeline-parallel bubble (300 GB/s stage links):\n");
  TextTable pp;
  pp.SetHeader({"stages", "M=4", "M=16", "M=64"});
  for (int stages : {2, 4}) {
    std::vector<std::string> row{Format("%d", stages)};
    for (int m : {4, 16, 64}) {
      simsys::PipelineConfig config;
      config.num_stages = stages;
      config.micro_batches = m;
      config.link_bandwidth_gbps = 300;
      simsys::PipelineResult result = simsys::SimulatePipeline(
          forward_us, backward_us, activation_bytes, config);
      row.push_back(Format("%.0f%%", 100 * result.bubble_fraction));
    }
    pp.AddRow(row);
  }
  pp.Print();
  std::printf("\n(every number above comes from the trained models and the "
              "event-driven simulators — no training run was executed)\n");
  return 0;
}
