// Builds and exports the open DNN performance database (the paper's
// first contribution) plus a distributable trained KW model bundle:
//
//   <out>/database/networks.csv    one row per (GPU, network, batch)
//   <out>/database/kernels.csv     one row per kernel execution
//   <out>/model/kernel_models.csv  trained per-kernel regressions
//   <out>/model/mapping_table.csv  layer -> kernel lookup table
//   <out>/model/calibration.csv    per-GPU e2e calibration factors
//   <out>/model/layer_fallback.csv layer-wise fallback fits
//
// A consumer can then predict without any measurement infrastructure:
// load the model bundle, construct a network, call PredictUs.
//
// Usage: build_database [out_dir] [zoo_stride] [jobs] [metrics_out]
//   zoo_stride 1 reproduces the full 646-network campaign (~1 min);
//   the default 8 builds a 1/8 campaign in seconds.
//   jobs sets the profiling thread count (default 0 = all hardware
//   threads); the produced database is identical for every job count.
//   metrics_out, when given, writes a gpuperf_* metrics snapshot of the
//   campaign (lowering-cache hits/misses, thread-pool queue depth;
//   .prom = Prometheus text, else CSV).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "common/status.h"
#include "dataset/builder.h"
#include "models/kw_model.h"
#include "models/model_io.h"
#include "obs/metrics_registry.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main(int argc, char** argv) {
  obs::InstallProcessMetrics();
  const std::string out = argc > 1 ? argv[1] : "gpuperf_release";
  const int stride = argc > 2 ? std::atoi(argv[2]) : 8;
  const int jobs = argc > 3 ? std::atoi(argv[3]) : 0;
  const std::string metrics_out = argc > 4 ? argv[4] : "";

  std::vector<dnn::Network> networks = zoo::SmallZoo(stride);
  std::printf("profiling %zu networks on all %zu GPUs at BS 512...\n",
              networks.size(), gpuexec::AllGpus().size());
  dataset::BuildOptions options;  // all GPUs, BS 512, 30 measured batches
  options.jobs = jobs;
  dataset::Dataset data = dataset::BuildDataset(networks, options);

  std::filesystem::create_directories(out + "/database");
  data.SaveCsv(out + "/database");
  std::printf("database: %zu network rows, %zu kernel rows -> %s/database\n",
              data.network_rows().size(), data.kernel_rows().size(),
              out.c_str());

  models::KwModel kw;
  kw.Train(data, dataset::SplitByNetwork(data, 0.15, 42));
  std::filesystem::create_directories(out + "/model");
  if (Status saved = models::ModelIo::SaveKw(kw, out + "/model");
      !saved.ok()) {
    std::fprintf(stderr, "saving the bundle failed: %s\n",
                 saved.message().c_str());
    return 1;
  }
  std::printf("model: %d kernels -> %d regressions on A100 -> %s/model\n",
              kw.KernelCount("A100"), kw.ClusterCount("A100"), out.c_str());

  // Round-trip smoke test: a consumer-side prediction. The bundle was
  // just written, so a load failure here is a real bug — report and fail.
  StatusOr<models::KwModel> loaded = models::ModelIo::LoadKw(out + "/model");
  if (!loaded.ok()) {
    std::fprintf(stderr, "reloading the bundle failed: %s\n",
                 loaded.status().message().c_str());
    return 1;
  }
  models::KwModel consumer = std::move(loaded).value();
  dnn::Network resnet50 = zoo::BuildByName("resnet50");
  std::printf("consumer-side prediction: resnet50 @BS256 on A100 = %.1f ms\n",
              consumer.PredictUs(resnet50, gpuexec::GpuByName("A100"), 256) /
                  1e3);

  if (!metrics_out.empty()) {
    const Status written =
        obs::MetricsRegistry::Global().WriteSnapshot(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.message().c_str());
      return 1;
    }
    std::printf("metrics snapshot -> %s\n", metrics_out.c_str());
  }
  return 0;
}
