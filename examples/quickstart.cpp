// Quickstart: build a dataset on the synthetic A100, train the four
// performance models, and predict a held-out network's execution time.
//
// This walks the full Figure 10 workflow in about a minute:
//   zoo -> profiler (hardware oracle) -> dataset -> train -> predict.

#include <cstdio>

#include "common/stats.h"
#include "common/string_util.h"
#include "dataset/builder.h"
#include "dataset/dataset.h"
#include "dnn/flops.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/profiler.h"
#include "models/e2e_model.h"
#include "models/igkw_model.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  // 1. Collect a (small, for speed) model zoo.
  std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/8);
  std::printf("zoo: %zu networks\n", networks.size());

  // 2. Measure them on A100, A40, GTX 1080 Ti, and TITAN RTX.
  dataset::BuildOptions options;
  options.gpu_names = {"A100", "A40", "GTX 1080 Ti", "TITAN RTX"};
  dataset::Dataset data = dataset::BuildDataset(networks, options);
  std::printf("dataset: %zu network rows, %zu kernel rows, %d kernels\n",
              data.network_rows().size(), data.kernel_rows().size(),
              data.kernels().size());

  // 3. Split 85/15 by network and train the models.
  dataset::NetworkSplit split = dataset::SplitByNetwork(data, 0.15, 42);
  models::E2eModel e2e;
  e2e.Train(data, split);
  models::LwModel lw;
  lw.Train(data, split);
  models::KwModel kw;
  kw.Train(data, split);
  models::IgkwModel igkw;
  igkw.Train(data, split, {"A100", "A40", "GTX 1080 Ti"});
  std::printf("KW on A100: %d kernels -> %d regression models\n",
              kw.KernelCount("A100"), kw.ClusterCount("A100"));

  // 4. Evaluate on the held-out networks.
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  gpuexec::HardwareOracle oracle(options.oracle);
  gpuexec::Profiler profiler(oracle);

  std::vector<double> e2e_pred, lw_pred, kw_pred, igkw_pred, measured_a100,
      measured_titan;
  for (const dnn::Network& network : networks) {
    const int id = data.networks().Find(network.name());
    if (!split.IsTest(id)) continue;
    const double on_a100 = profiler.MeasureE2eUs(network, a100, 512);
    const double on_titan = profiler.MeasureE2eUs(network, titan, 512);
    measured_a100.push_back(on_a100);
    measured_titan.push_back(on_titan);
    e2e_pred.push_back(e2e.PredictUs(network, a100, 512));
    lw_pred.push_back(lw.PredictUs(network, a100, 512));
    kw_pred.push_back(kw.PredictUs(network, a100, 512));
    igkw_pred.push_back(igkw.PredictUs(network, titan, 512));
  }
  std::printf("test networks: %zu\n", measured_a100.size());
  std::printf("E2E  error on A100:      %5.1f%%\n",
              100 * Mape(e2e_pred, measured_a100));
  std::printf("LW   error on A100:      %5.1f%%\n",
              100 * Mape(lw_pred, measured_a100));
  std::printf("KW   error on A100:      %5.1f%%\n",
              100 * Mape(kw_pred, measured_a100));
  std::printf("IGKW error on TITAN RTX: %5.1f%%  (TITAN not in training set)\n",
              100 * Mape(igkw_pred, measured_titan));

  // 5. Predict a brand-new network that is not in the zoo at all.
  dnn::Network custom = zoo::BuildByName("resnet86");
  std::printf("resnet86 (unseen): predicted %s ms on A100, measured %s ms\n",
              Pretty(kw.PredictUs(custom, a100, 512) / 1000.0).c_str(),
              Pretty(profiler.MeasureE2eUs(custom, a100, 512) / 1000.0)
                  .c_str());
  return 0;
}
