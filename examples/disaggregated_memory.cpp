// Case study 2 as a library walkthrough: size the network link of a
// memory-disaggregated GPU system.
//
// The GPU keeps only activations locally; layer weights stream from a
// network-attached memory pool through a prefetcher. Layer compute times
// come from the KW performance model, the link and prefetcher from the
// event-driven simulator — so a full design sweep finishes in seconds.
//
// Usage: disaggregated_memory [network] [prefetch_window]
//   e.g. disaggregated_memory densenet121 8

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "models/kw_model.h"
#include "simsys/disagg.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "resnet50";
  const int window = argc > 2 ? std::atoi(argv[2]) : 8;

  // 1. Train the KW model at the serving batch size (1: latency-critical).
  std::printf("building BS=1 serving campaign on A100...\n");
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = 1;
  dataset::Dataset data = dataset::BuildDataset(zoo::SmallZoo(4), options);
  models::KwModel kw;
  kw.Train(data, dataset::SplitByNetwork(data, 0.15, 1));

  // 2. Per-layer compute times and weight footprints.
  dnn::Network network = zoo::BuildByName(network_name);
  std::vector<double> compute_us;
  std::vector<std::int64_t> weight_bytes;
  double compute_total = 0;
  std::int64_t weight_total = 0;
  for (const dnn::Layer& layer : network.layers()) {
    compute_us.push_back(kw.PredictLayerUs(layer, "A100", 1));
    weight_bytes.push_back(dnn::LayerWeightBytes(layer));
    compute_total += compute_us.back();
    weight_total += weight_bytes.back();
  }
  std::printf("%s: %.2f ms predicted compute, %s of weights to stream\n\n",
              network_name.c_str(), compute_total / 1e3,
              Engineering(static_cast<double>(weight_total)).c_str());

  // 3. Sweep the link bandwidth.
  TextTable table;
  table.SetHeader({"link (GB/s)", "latency (ms)", "GPU stall", "speedup",
                   "verdict"});
  simsys::DisaggConfig config;
  config.prefetch_window = window;
  config.link_bandwidth_gbps = 16;
  const double baseline =
      simsys::SimulateDisaggregated(compute_us, weight_bytes, config)
          .total_time_us;
  for (double bw : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0}) {
    config.link_bandwidth_gbps = bw;
    simsys::DisaggResult result =
        simsys::SimulateDisaggregated(compute_us, weight_bytes, config);
    const double stall_share = result.stall_us / result.total_time_us;
    table.AddRow({Format("%.0f", bw),
                  Format("%.2f", result.total_time_us / 1e3),
                  Format("%.0f%%", 100 * stall_share),
                  Format("%.2fx", baseline / result.total_time_us),
                  stall_share < 0.05 ? "GPU fully fed"
                                     : (stall_share < 0.3 ? "mild stalls"
                                                          : "link-bound")});
  }
  table.Print();
  std::printf("\n(prefetch window: %d layers ahead; rerun with a different "
              "window to see the pipelining effect)\n",
              window);
  return 0;
}
