// Case study 3 as a library walkthrough: a machine-learning-as-a-service
// vendor schedules a queue of inference jobs across a heterogeneous GPU
// pool using predicted times. Because a KW prediction costs microseconds,
// brute-force search over all assignments is affordable.
//
// Usage: gpu_scheduling [batch]
//   e.g. gpu_scheduling 256

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "gpuexec/profiler.h"
#include "models/kw_model.h"
#include "sched/scheduler.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main(int argc, char** argv) {
  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 256;
  const char* kQueue[] = {"resnet44",    "resnet50",    "resnet62",
                          "resnet77",    "densenet121", "densenet161",
                          "densenet169", "densenet201", "shufflenet_v1"};
  const char* kPool[] = {"A40", "TITAN RTX", "V100"};

  // 1. Train the KW model on a campaign covering the pool.
  std::printf("building campaign on %zu GPUs...\n", std::size(kPool));
  dataset::BuildOptions options;
  options.gpu_names.assign(std::begin(kPool), std::end(kPool));
  dataset::Dataset data = dataset::BuildDataset(zoo::SmallZoo(4), options);
  models::KwModel kw;
  kw.Train(data, dataset::SplitByNetwork(data, 0.15, 1));

  // 2. Predicted and (for validation) measured runtimes per job per GPU.
  gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  gpuexec::Profiler profiler(oracle);
  std::vector<std::vector<double>> predicted, measured;
  TextTable per_job;
  std::vector<std::string> header{"job"};
  for (const char* gpu : kPool) header.push_back(Format("%s (ms)", gpu));
  header.push_back("fastest");
  per_job.SetHeader(header);
  for (const char* name : kQueue) {
    dnn::Network network = zoo::BuildByName(name);
    std::vector<double> job_pred, job_meas;
    std::vector<std::string> row{name};
    for (const char* gpu_name : kPool) {
      const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(gpu_name);
      job_pred.push_back(kw.PredictUs(network, gpu, batch));
      job_meas.push_back(profiler.MeasureE2eUs(network, gpu, batch));
      row.push_back(Format("%.0f", job_pred.back() / 1e3));
    }
    row.push_back(kPool[sched::FastestGpuPerJob({job_pred})[0]]);
    per_job.AddRow(row);
    predicted.push_back(std::move(job_pred));
    measured.push_back(std::move(job_meas));
  }
  per_job.Print();

  // 3. Brute-force the queue assignment with predicted times and execute
  //    it against measured times.
  sched::Schedule plan = sched::BruteForceSchedule(predicted);
  sched::Schedule oracle_plan = sched::BruteForceSchedule(measured);
  std::printf("\nplanned schedule:\n");
  for (std::size_t gpu = 0; gpu < std::size(kPool); ++gpu) {
    std::string lane = Format("  %-10s|", kPool[gpu]);
    for (std::size_t job = 0; job < std::size(kQueue); ++job) {
      if (plan.assignment[job] == static_cast<int>(gpu)) {
        lane += Format(" %s |", kQueue[job]);
      }
    }
    std::printf("%s\n", lane.c_str());
  }
  const double planned = sched::Makespan(measured, plan.assignment);
  std::printf("\nmakespan executing the plan: %.1f ms; perfect-knowledge "
              "optimum: %.1f ms (gap %.2f%%)\n",
              planned / 1e3, oracle_plan.makespan_us / 1e3,
              100 * (planned - oracle_plan.makespan_us) /
                  oracle_plan.makespan_us);
  return 0;
}
