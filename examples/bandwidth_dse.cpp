// Case study 1 as a library walkthrough: explore the memory-bandwidth
// design space of a hypothetical GPU for a specific network.
//
// An accelerator vendor asks: "if we keep TITAN RTX's cores and clocks
// but change the memory system, what bandwidth should we buy for this
// customer's model?" The IGKW model answers without any hardware: it was
// trained on three *other* GPUs and predicts from Table 1 specs alone.
//
// Usage: bandwidth_dse [network] [batch]
//   e.g. bandwidth_dse resnet50 512
//        bandwidth_dse densenet169 256

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "dataset/builder.h"
#include "models/igkw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main(int argc, char** argv) {
  const std::string network_name = argc > 1 ? argv[1] : "resnet50";
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 512;

  // 1. Measurement campaign on the three training GPUs (TITAN RTX is
  //    deliberately absent — the DSE target must be an unseen device).
  std::printf("building training campaign (A100, A40, GTX 1080 Ti)...\n");
  dataset::BuildOptions options;
  options.gpu_names = {"A100", "A40", "GTX 1080 Ti"};
  dataset::Dataset data = dataset::BuildDataset(zoo::SmallZoo(4), options);
  dataset::NetworkSplit split = dataset::SplitByNetwork(data, 0.15, 1);

  // 2. Train the Inter-GPU Kernel-Wise model.
  models::IgkwModel igkw;
  igkw.Train(data, split, options.gpu_names);

  // 3. Sweep bandwidth on the hypothetical part.
  dnn::Network network = zoo::BuildByName(network_name);
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  PlotSeries series{"predicted time", {}, {}};
  std::printf("\n%-18s %-20s %s\n", "bandwidth (GB/s)", "predicted (ms)",
              "marginal gain per +100 GB/s");
  double previous = 0;
  double knee = 0;
  for (int bw = 200; bw <= 1400; bw += 100) {
    const double ms =
        igkw.PredictUs(network, titan.WithBandwidth(bw), batch) / 1e3;
    series.x.push_back(bw);
    series.y.push_back(ms);
    const double gain =
        previous > 0 ? (previous - ms) / previous : 0.0;
    std::printf("%-18d %-20.1f %s\n", bw, ms,
                previous > 0 ? Format("%.1f%%", 100 * gain).c_str() : "-");
    if (previous > 0 && gain < 0.05 && knee == 0) knee = bw - 100;
    previous = ms;
  }

  PlotOptions plot;
  plot.title = Format("%s on a TITAN-RTX-class GPU with modified bandwidth",
                      network_name.c_str());
  plot.x_label = "bandwidth (GB/s)";
  plot.y_label = "predicted time (ms)";
  std::fputs(AsciiPlot({series}, plot).c_str(), stdout);

  if (knee > 0) {
    std::printf("recommendation: returns diminish beyond ~%.0f GB/s; the "
                "stock TITAN RTX ships 672 GB/s.\n",
                knee);
  }
  return 0;
}
